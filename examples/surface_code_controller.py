"""Surface-code control walkthrough (the paper's Fig 17).

Builds distance-3 and distance-5 surface-code patches, schedules one
syndrome-extraction cycle, and shows (a) how concurrent QEC is -- which
is why it pins memory bandwidth at peak -- and (b) how many logical
qubits a single controller supports with and without COMPAQT.

Run:  python examples/surface_code_controller.py
"""

from repro.analysis import print_table
from repro.core import logical_qubits_supported
from repro.qec import (
    peak_concurrent_fraction,
    rotated_surface_code,
    syndrome_schedule,
    unrotated_surface_code,
)


def main() -> None:
    patches = [
        rotated_surface_code(3),
        unrotated_surface_code(3),
        unrotated_surface_code(5),
    ]
    rows = []
    for patch in patches:
        schedule = syndrome_schedule(patch)
        rows.append(
            [
                patch.name,
                patch.n_qubits,
                schedule.peak_concurrent_gates,
                f"{peak_concurrent_fraction(patch) * 100:.0f}%",
                f"{schedule.peak_bandwidth_bytes() / 1e9:.0f} GB/s",
                f"{schedule.average_bandwidth_bytes() / 1e9:.0f} GB/s",
            ]
        )
    print_table(
        "Syndrome-cycle concurrency (Figs 5c, 17a)",
        ["patch", "qubits", "peak gates", "qubits driven", "peak BW", "avg BW"],
        rows,
        note="QEC keeps average bandwidth near peak -- no idle headroom",
    )

    rows = []
    for label, ws in [("uncompressed", 0), ("WS=8", 8), ("WS=16", 16)]:
        rows.append(
            [
                label,
                logical_qubits_supported(17, ws),
                logical_qubits_supported(25, ws),
            ]
        )
    print_table(
        "Logical qubits per controller (Fig 17b)",
        ["design", "surface-17 patches", "surface-25 patches"],
        rows,
        note="~5x more logical qubits at WS=16, matching the paper",
    )


if __name__ == "__main__":
    main()
