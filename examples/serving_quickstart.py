"""Serving quickstart: pack a device library into a CQS1 sharded store
and serve decoded pulses through the concurrent LRU front end.

Run:  python examples/serving_quickstart.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import CompaqtCompiler, ibm_device
from repro.analysis import print_table
from repro.compression.pipeline import decompress_waveform
from repro.store import PulseServer, save_store, synthetic_trace


def main() -> None:
    # Compile Guadalupe's library once (the calibration-cycle step).
    device = ibm_device("guadalupe")
    compiler = CompaqtCompiler(window_size=16, codec="int-DCT-W")
    compiled = compiler.compile_library(device.pulse_library())
    print(
        f"{device}: compiled {len(compiled)} waveforms, "
        f"R(var)={compiled.overall_ratio_variable:.2f}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        # Pack as a sharded store: a manifest plus hash-routed CQL1
        # shard files with a byte-offset index per pulse.  On the
        # command line: `repro pack guadalupe --shards 4`.
        store = save_store(compiled, Path(tmp) / "guadalupe.cqs", n_shards=4)
        print(
            f"packed -> {store.n_shards} shards, "
            f"{store.total_shard_bytes / 1e3:.1f} KB compressed on disk"
        )

        # Serve a skewed request trace (what gate issue looks like:
        # a few hot calibrated pulses, a long cold tail).
        trace = synthetic_trace(store.keys(), n_requests=2000, seed=11)
        with PulseServer(store, cache_capacity=24, max_workers=4) as server:
            start = time.perf_counter()
            for begin in range(0, len(trace), 32):
                server.fetch_batch(trace[begin : begin + 32])
            elapsed = time.perf_counter() - start
            stats = server.stats()

            # Every served pulse is bit-identical to the scalar decoder.
            gate, qubits = trace[0]
            served = server.fetch(gate, qubits)
            reference = decompress_waveform(store.read_record(gate, qubits))
            assert np.array_equal(served.samples, reference.samples)

        cache = stats.cache
        print_table(
            "pulse serving (cache 24 of "
            f"{len(store)} pulses, {store.n_shards} shards)",
            ["requests", "pulses/s", "hit rate", "evictions", "shard fills"],
            [
                [
                    stats.requests,
                    f"{len(trace) / elapsed:.0f}",
                    f"{cache.hit_rate:.0%}",
                    cache.evictions,
                    stats.shard_fills,
                ]
            ],
        )
        print(
            "served samples verified bit-identical to the scalar "
            "decompress_channel path"
        )


if __name__ == "__main__":
    main()
