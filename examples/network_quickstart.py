"""Network serving quickstart: put a CQN1 socket in front of a store.

Compile a device library, pack it into a sharded store, host it behind
the asyncio network tier, and fetch pulses back over a real TCP socket
with the blocking client -- verifying that every byte served over the
wire is bit-identical to the local decode path, then pushing a short
closed-loop load run through it for latency percentiles.

Run:  python examples/network_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import print_table
from repro.api import (
    PulseClient,
    PulseServer,
    compile_library,
    save_store,
    serve_in_thread,
    synthetic_trace,
)
from repro.serve_net import run_closed_loop


def main() -> None:
    # Calibration-cycle step: compile and pack (the façade one-liners;
    # on the command line, `repro pack guadalupe --shards 4`).
    compiled = compile_library("guadalupe", window_size=16, codec="int-DCT-W")
    with tempfile.TemporaryDirectory() as tmp:
        store = save_store(compiled, Path(tmp) / "guadalupe.cqs", n_shards=4)

        # workers=2 routes cold-miss decodes through a pool of decode
        # *processes* (shared-memory result handoff); warm cache hits
        # never touch it.  CLI twin of the flag: `--workers 2`.
        with PulseServer(
            store, cache_capacity=len(store), workers=2
        ) as serving:
            # CLI twin: `repro serve-net guadalupe.cqs --port 7401`.
            with serve_in_thread(serving, max_inflight=16) as handle:
                host, port = handle.address
                print(f"serving {len(store)} pulses on {host}:{port} (CQN1)")

                with PulseClient(host, port) as client:
                    print(f"ping: {client.ping() * 1e3:.2f} ms")

                    # One decoded pulse over the wire, checked
                    # bit-for-bit against the in-process serving layer.
                    gate, qubits = client.keys()[0]
                    over_wire = client.fetch(gate, qubits)
                    local = serving.fetch(gate, qubits)
                    assert np.array_equal(over_wire.samples, local.samples)
                    print(f"{gate}{qubits}: {over_wire.samples.size} samples, "
                          "wire == local decode, bit-identical")

                    # Raw CQW1 record bytes skip the decode entirely.
                    (record,) = client.fetch_records([(gate, qubits)])
                    assert record == store.read_record_bytes(gate, qubits)

                # Closed-loop load: 4 connections replaying a Zipf
                # trace in lockstep (`repro loadgen HOST:PORT ...`).
                trace = synthetic_trace(store.keys(), n_requests=2000, seed=11)
                report = run_closed_loop(
                    (host, port), trace, batch_size=32, connections=4
                )
                latency = report.latency_ms
                print_table(
                    "closed-loop load (4 connections, batch 32)",
                    ["requests", "pulses/s", "p50 ms", "p99 ms", "overloads"],
                    [[
                        report.requests_ok,
                        f"{report.pulses_per_s:,.0f}",
                        f"{latency['p50']:.2f}",
                        f"{latency['p99']:.2f}",
                        report.overloads,
                    ]],
                )

                stats = handle.stats()
                print(
                    f"server counters: {stats.requests} requests, "
                    f"{stats.pulses_served} pulses, "
                    f"{stats.coalesced_keys} coalesced, "
                    f"{stats.overloads} overloads"
                )
                pool = serving.stats().pool
                print(
                    f"decode pool: {pool['workers']} workers, "
                    f"{pool['jobs_ok']} jobs, {pool['shm_jobs']} via "
                    f"shared memory, {pool['worker_deaths']} deaths"
                )


if __name__ == "__main__":
    main()
