"""RFSoC scalability walkthrough (the paper's Figs 2, 5 and Table V).

Shows why waveform-memory bandwidth, not capacity, caps the number of
qubits an RFSoC can drive, and how COMPAQT's decompression engine lifts
the cap by ~5x.

Run:  python examples/rfsoc_scalability.py
"""

from repro.analysis import (
    IBM_PARAMS,
    bandwidth_per_qubit,
    memory_capacity_per_qubit,
    print_table,
)
from repro.core import RfsocModel, qubit_gain, qubits_supported


def main() -> None:
    model = RfsocModel()
    per_qubit_capacity = memory_capacity_per_qubit(IBM_PARAMS, include_couplers=True)
    print(
        f"RFSoC: {model.capacity_bytes / 1e6:.2f} MB on-chip memory, "
        f"{model.internal_bandwidth_bytes / 1e9:.0f} GB/s internal bandwidth"
    )
    print(
        f"per qubit: {per_qubit_capacity / 1e3:.1f} KB of waveforms, "
        f"{bandwidth_per_qubit(IBM_PARAMS) / 1e9:.1f} GB/s per stream"
    )

    by_capacity = model.max_qubits_capacity(per_qubit_capacity)
    by_bandwidth = model.max_qubits_bandwidth()
    print_table(
        "Fig 5(d): what limits an uncompressed RFSoC controller",
        ["constraint", "qubits supported"],
        [
            ["capacity only", by_capacity],
            ["bandwidth (the real wall)", by_bandwidth],
            ["drop", f"{by_capacity / by_bandwidth:.1f}x"],
        ],
    )

    print_table(
        "Table V / Section V-C: COMPAQT on a QICK-class controller",
        ["design", "BRAM gain", "concurrent qubits"],
        [
            ["uncompressed", "1.00x", qubits_supported(0)],
            ["int-DCT-W WS=8", f"{qubit_gain(8):.2f}x", qubits_supported(8)],
            ["int-DCT-W WS=16", f"{qubit_gain(16):.2f}x", qubits_supported(16)],
        ],
        note="gains hold whenever the DAC/fabric clock ratio is a multiple of WS",
    )


if __name__ == "__main__":
    main()
