"""Recalibration loop: drift-driven live updates through the writable store.

A control stack's pulse library goes stale as the electronics drift.
This example runs the full production loop against one store directory:

1. a :class:`~repro.core.DriftModel` wanders the calibrated envelopes
   step by step,
2. :func:`~repro.core.recalibration_updates` picks the pulses whose
   drift exceeds the MSE budget,
3. a :class:`~repro.store.StoreWriter` recompiles and commits exactly
   those pulses as a new store generation (atomic manifest publish),
4. a live :class:`~repro.store.PulseServer` keeps serving throughout
   and adopts each generation with
   :meth:`~repro.store.PulseServer.refresh` -- readers never block on
   the writer, they just switch snapshots,
5. a final compaction folds the superseded record versions away, and
   :func:`~repro.store.verify_store` scrubs the result.

Run:  python examples/recalibration_loop.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CompaqtCompiler, ibm_device
from repro.analysis import print_table
from repro.core import DriftModel, recalibration_updates
from repro.store import PulseServer, StoreWriter, open_store, save_store, verify_store


def main() -> None:
    # Calibration cycle zero: compile and pack the whole library.
    device = ibm_device("bogota")
    compiler = CompaqtCompiler(window_size=16, codec="int-DCT-W")
    library = {(w.gate, tuple(w.qubits)): w for w in device.pulse_library()}
    compiled = compiler.compile_library(device.pulse_library())

    model = DriftModel(seed=11, amplitude_sigma=0.004, phase_sigma=0.002)
    mse_budget = 1e-7

    with tempfile.TemporaryDirectory() as tmp:
        store = save_store(compiled, Path(tmp) / "bogota.cqs", n_shards=4)
        rows = []
        with PulseServer(open_store(store.path), cache_capacity=64) as server:
            # Readers are live from here on; every fetch below serves a
            # consistent snapshot of *some* committed generation.
            writer = StoreWriter(store.path)
            for step in range(1, 6):
                stale = recalibration_updates(
                    library.values(), model, step, mse_budget=mse_budget
                )
                if not stale:
                    rows.append([step, 0, server.store.generation, "-"])
                    continue
                for drifted in stale:
                    result = compiler.compile_waveform(drifted)
                    writer.put(drifted.gate, drifted.qubits, result)
                    library[(drifted.gate, tuple(drifted.qubits))] = drifted
                committed = writer.commit()

                # The server notices the new generation and swaps its
                # snapshot; cache entries for recompiled keys are
                # invalidated by (key, version), the rest stay warm.
                adopted = server.refresh()
                probe = stale[0]
                served = server.fetch(probe.gate, probe.qubits)
                drift_mse = float(
                    np.mean(np.abs(served.samples - probe.samples) ** 2)
                )
                rows.append(
                    [
                        step,
                        len(stale),
                        committed.generation,
                        f"adopted={adopted} probe_mse={drift_mse:.2e}",
                    ]
                )

            # Fold away superseded record versions and tombstones.
            compacted = writer.compact()
            writer.close()
            server.refresh()
            assert server.store.generation == compacted.generation

        print_table(
            f"recalibration loop on {device.name} "
            f"({len(library)} pulses, budget mse>{mse_budget:g})",
            ["step", "recompiled", "generation", "serving"],
            rows,
        )

        report = verify_store(store.path)
        assert report.ok, report
        print(
            f"post-compaction scrub: generation {report.generation}, "
            f"{report.n_records} records, all shards clean"
        )


if __name__ == "__main__":
    main()
