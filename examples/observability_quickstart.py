"""Observability quickstart: metrics, traces, and a live scrape endpoint.

Serve a compiled store over CQN1 with tracing at full sampling, drive a
short load run, then read the telemetry back three ways: the merged
metrics registry over the wire (``PulseClient.metrics()``), the
Prometheus text exposition over plain HTTP (what ``repro serve-net
--metrics-port`` exposes), and the bounded ring of recent request
traces rendered as span trees (``PulseClient.traces()`` /
``repro traces HOST:PORT``).

Run:  python examples/observability_quickstart.py
"""

import tempfile
import urllib.request
from pathlib import Path

from repro.analysis import print_table
from repro.api import (
    PulseClient,
    PulseServer,
    compile_library,
    save_store,
    serve_in_thread,
    synthetic_trace,
)
from repro.obs import (
    Tracer,
    format_trace_tree,
    merge_trace_spans,
    start_metrics_server,
)
from repro.serve_net import run_closed_loop


def main() -> None:
    compiled = compile_library("bogota", window_size=16, codec="int-DCT-W")
    with tempfile.TemporaryDirectory() as tmp:
        store = save_store(compiled, Path(tmp) / "bogota.cqs", n_shards=2)

        # trace_sample_rate=1.0 traces every request -- fine for a demo
        # or an incident; production wants the default 1% (see the
        # README's overhead guidance).  CLI twin:
        # `repro serve-net bogota.cqs --trace-sample-rate 1.0`.
        with PulseServer(store, cache_capacity=len(store), workers=0) as serving:
            with serve_in_thread(serving, trace_sample_rate=1.0) as handle:
                host, port = handle.address

                # A traced client stitches its half of each request
                # onto the server's spans via the FETCH_TRACED frame.
                client_tracer = Tracer(sample_rate=1.0)
                with PulseClient(host, port, tracer=client_tracer) as client:
                    # One cold traced fetch: the client and server halves
                    # share a trace id, so their spans stitch into one
                    # tree (client.fetch -> server.admission -> fill).
                    client.fetch(*client.keys()[0])
                    client_half = client_tracer.recent(limit=1)[0]
                    server_half = next(
                        t
                        for t in client.traces(limit=8)
                        if t["trace_id"] == client_half["trace_id"]
                    )
                    stitched = {
                        "trace_id": client_half["trace_id"],
                        "spans": merge_trace_spans(client_half, server_half),
                    }
                    print(format_trace_tree(stitched))

                    trace = synthetic_trace(store.keys(), n_requests=200, seed=5)
                    report = run_closed_loop(
                        (host, port), trace, batch_size=16, connections=2
                    )

                    # 1. The merged registry over the wire.
                    snapshot = client.metrics()
                    counters = snapshot["counters"]
                    print_table(
                        "registry counters (over CQN1)",
                        ["net.fetches", "cache.hits", "cache.misses", "server.requests"],
                        [[
                            counters.get("net.fetches", 0),
                            counters.get("cache.hits", 0),
                            counters.get("cache.misses", 0),
                            counters.get("server.requests", 0),
                        ]],
                    )
                    latency = snapshot["histograms"]["net.request_seconds"]
                    print(
                        f"server latency histogram: {latency['count']} requests, "
                        f"min {latency['min'] * 1e3:.2f} ms, "
                        f"max {latency['max'] * 1e3:.2f} ms"
                    )

                    # 2. The Prometheus endpoint (what --metrics-port runs).
                    with start_metrics_server(
                        handle.server.metrics_snapshot, host="127.0.0.1", port=0
                    ) as http:
                        http_host, http_port = http.address
                        url = f"http://{http_host}:{http_port}/metrics"
                        with urllib.request.urlopen(url, timeout=5) as response:
                            text = response.read().decode("utf-8")
                        series = [
                            line
                            for line in text.splitlines()
                            if line and not line.startswith("#")
                        ]
                        print(f"scraped {url}: {len(series)} series, e.g.")
                        for line in series[:4]:
                            print(f"  {line}")

                    # 3. The server's ring of recent traces, newest last
                    # (`repro traces HOST:PORT` renders the same view).
                    for trace_dict in client.traces(limit=1):
                        print()
                        print(format_trace_tree(trace_dict))

                print(
                    f"\nload run: {report.requests_ok} requests ok, "
                    f"{report.pulses_per_s:,.0f} pulses/s, "
                    f"p99 {report.latency_ms['p99']:.2f} ms"
                )


if __name__ == "__main__":
    main()
