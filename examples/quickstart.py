"""Quickstart: compress one waveform and stream it through the
decompression pipeline.

Run:  python examples/quickstart.py
"""


from repro import compress_waveform, ibm_device
from repro.analysis import print_table
from repro.microarch import DecompressionPipeline


def main() -> None:
    # A synthetic IBM Guadalupe with per-qubit calibrated pulses.
    device = ibm_device("guadalupe")
    library = device.pulse_library()
    print(f"{device}: {len(library)} waveforms, "
          f"{device.memory_per_qubit_bytes() / 1e3:.1f} KB/qubit")

    rows = []
    for gate, qubits in [("sx", (0,)), ("x", (3,)), ("cx", (0, 1)), ("measure", (5,))]:
        waveform = library.waveform(gate, qubits)
        result = compress_waveform(waveform, window_size=16, codec="int-DCT-W")
        rows.append(
            [
                waveform.name,
                waveform.n_samples,
                f"{result.compression_ratio_variable:.2f}x",
                f"{result.mse:.2e}",
                result.compressed.worst_case_window_words,
            ]
        )
    print_table(
        "int-DCT-W compression (WS=16)",
        ["pulse", "samples", "R", "MSE", "worst window words"],
        rows,
    )

    # Stream the CR pulse cycle by cycle through the hardware model.
    compressed = compress_waveform(library.waveform("cx", (0, 1))).compressed
    report = DecompressionPipeline(clock_ratio=16).stream(compressed)
    print(
        f"\nstreamed {report.n_samples} samples in {report.fabric_cycles} fabric "
        f"cycles; {report.bram_reads} BRAM reads -> bandwidth gain "
        f"{report.bandwidth_gain:.2f}x, DAC sustained: {report.sustains_dac}"
    )


if __name__ == "__main__":
    main()
