"""End-to-end circuit execution on the COMPAQT controller (Fig 6).

Transpiles a GHZ circuit to a device, schedules it, assembles the
sequencer's per-channel instruction streams, and executes them against
the compressed waveform memory -- producing the exact per-channel DAC
sample streams plus the memory-traffic savings.

Run:  python examples/controller_execution.py
"""

import numpy as np

from repro.analysis import print_table
from repro.circuits import ghz_circuit, schedule_circuit, transpile
from repro.core.controller import QubitController
from repro.devices import ibm_device
from repro.microarch import ControllerExecutor, assemble_schedule


def main() -> None:
    controller = QubitController(ibm_device("bogota"))
    circuit = transpile(ghz_circuit(4), controller.device.topology)
    schedule = schedule_circuit(circuit, device=controller.device)
    program = assemble_schedule(schedule, name=circuit.name)
    print(
        f"{circuit.name}: {len(circuit)} instructions -> {program.n_channels} "
        f"channels, {program.n_instructions} sequencer instructions "
        f"({program.instruction_buffer_bytes()} B instruction buffer), "
        f"makespan {program.makespan} samples "
        f"({program.makespan / 4.54e9 * 1e9:.0f} ns)"
    )

    trace = ControllerExecutor(controller).run(program)
    rows = []
    for channel in sorted(trace.i_streams):
        stream = trace.i_streams[channel]
        rows.append(
            [
                f"q{channel} drive",
                stream.size,
                int(np.count_nonzero(stream)),
                f"{trace.channel_utilization(channel) * 100:.0f}%",
            ]
        )
    print_table(
        "Per-channel DAC streams",
        ["channel", "samples", "non-idle", "utilization"],
        rows,
    )
    print(
        f"\nmemory traffic: {trace.bram_reads} compressed reads vs "
        f"{trace.baseline_reads} uncompressed -> "
        f"{trace.bandwidth_gain:.2f}x bandwidth gain across the whole circuit"
    )


if __name__ == "__main__":
    main()
