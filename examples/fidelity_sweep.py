"""Fidelity impact of compression (the paper's Figs 9, 15).

Compiles a device library with COMPAQT, derives per-gate coherent error
unitaries from the decompressed pulses, and measures: (1) two-qubit
randomized benchmarking with and without compression, and (2) TVD
fidelity of a small application circuit.

Run:  python examples/fidelity_sweep.py
"""

from repro.analysis import print_table
from repro.circuits import qft_circuit, transpile
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.quantum import (
    IBM_LIKE_NOISE,
    RBConfig,
    StatevectorSimulator,
    compression_error_map,
    gate_error_unitary,
    rb_errors_from_gate_errors,
    run_two_qubit_rb,
    tvd_fidelity,
)


def main() -> None:
    device = ibm_device("guadalupe")
    library = device.pulse_library()
    compiled = CompaqtCompiler(window_size=16).compile_library(library)
    print(
        f"{device.name}: compressed {len(compiled)} waveforms "
        f"(overall R = {compiled.overall_ratio_variable:.2f}x, "
        f"max MSE = {compiled.max_mse:.1e})"
    )

    # --- two-qubit RB with and without compression ---------------------
    config = RBConfig(lengths=(1, 10, 25, 50, 75, 100), n_sequences=8, seed=11)
    baseline = run_two_qubit_rb(config)
    errors = rb_errors_from_gate_errors(
        gate_error_unitary(library.waveform("sx", (0,)), compiled.waveform("sx", (0,)), "sx"),
        gate_error_unitary(library.waveform("sx", (1,)), compiled.waveform("sx", (1,)), "sx"),
        gate_error_unitary(library.waveform("cx", (0, 1)), compiled.waveform("cx", (0, 1)), "cx"),
    )
    compressed = run_two_qubit_rb(config, errors)
    print_table(
        "Two-qubit RB (Fig 9)",
        ["design", "RB fidelity", "EPC"],
        [
            ["baseline", f"{baseline.fidelity:.4f}", f"{baseline.epc:.3e}"],
            ["int-DCT-W WS=16", f"{compressed.fidelity:.4f}", f"{compressed.epc:.3e}"],
        ],
    )

    # --- application fidelity -------------------------------------------
    circuit = transpile(qft_circuit(4), device.topology)
    ideal = StatevectorSimulator().ideal_distribution(circuit)
    shots = 4096
    noisy = StatevectorSimulator(noise=IBM_LIKE_NOISE, seed=5)
    f_base = tvd_fidelity(ideal, noisy.distribution(circuit, shots))
    erred = StatevectorSimulator(
        noise=IBM_LIKE_NOISE,
        gate_errors=compression_error_map(device, compiled),
        seed=5,
    )
    f_comp = tvd_fidelity(ideal, erred.distribution(circuit, shots))
    print_table(
        "qft-4 on Guadalupe (Fig 15 style)",
        ["design", "TVD fidelity", "normalized"],
        [
            ["baseline", f"{f_base:.3f}", "1.000"],
            ["int-DCT-W WS=16", f"{f_comp:.3f}", f"{f_comp / f_base:.3f}"],
        ],
        note="compression is fidelity-neutral: normalized ~ 1.0",
    )


if __name__ == "__main__":
    main()
