"""Adaptive decompression for flat-top pulses (the paper's Figs 13, 19).

Flat-top (GaussianSquare) waveforms dominate two-qubit gates and
readout.  Their plateau becomes a single repeat codeword that bypasses
both the memory and the IDCT engine, cutting cryo-controller power ~4x.

Run:  python examples/adaptive_flattop.py
"""

from repro.analysis import print_table
from repro.compression import compress_waveform
from repro.core import adaptive_compress
from repro.microarch import CryoControllerPower, DecompressionPipeline
from repro.pulses import Waveform, gaussian_square


def main() -> None:
    # The paper's Fig 19 case: a ~100 ns flat-top waveform.
    n = 448  # samples at 4.54 GS/s
    waveform = Waveform(
        "flat_top_100ns",
        gaussian_square(n, 0.4, 16.0, n - 128),
        dt=1 / 4.54e9,
        gate="cx",
        qubits=(0, 1),
    )
    plain = compress_waveform(waveform, window_size=16)
    adaptive = adaptive_compress(waveform, window_size=16)
    print_table(
        "Compression of a 100 ns flat-top",
        ["scheme", "stored words/chan", "R", "MSE", "IDCT bypass"],
        [
            [
                "int-DCT-W WS=16",
                plain.compressed.stored_words("uniform"),
                f"{plain.compression_ratio:.1f}x",
                f"{plain.mse:.1e}",
                "0%",
            ],
            [
                "adaptive (Fig 13)",
                adaptive.stored_words,
                f"{adaptive.compression_ratio:.1f}x",
                f"{adaptive.mse:.1e}",
                f"{adaptive.bypass_fraction * 100:.0f}%",
            ],
        ],
    )

    report = DecompressionPipeline(16).stream_adaptive(adaptive)
    print(
        f"\nstreamed {report.n_samples} samples with {report.bram_reads} memory "
        f"reads ({report.bypass_samples} samples straight from the repeat register)"
    )

    model = CryoControllerPower()
    duty = 1.0 - adaptive.bypass_fraction
    scenarios = [
        ("uncompressed", model.uncompressed()),
        ("COMPAQT WS=16", model.compaqt(16 / 3, 16)),
        ("adaptive WS=16", model.compaqt(16 / 3, 16, memory_duty=duty, idct_duty=duty)),
    ]
    baseline_total = scenarios[0][1].total_mw
    print_table(
        "Cryo controller power (Figs 18, 19)",
        ["design", "DAC mW", "memory mW", "IDCT mW", "total mW", "reduction"],
        [
            [
                name,
                f"{p.dac_mw:.1f}",
                f"{p.memory_mw:.2f}",
                f"{p.idct_mw:.2f}",
                f"{p.total_mw:.2f}",
                f"{baseline_total / p.total_mw:.1f}x",
            ]
            for name, p in scenarios
        ],
    )


if __name__ == "__main__":
    main()
