"""Command-line interface: inspect devices, codecs, reports, perf.

Usage::

    python -m repro devices
    python -m repro codecs
    python -m repro report --device guadalupe --window-size 16
    python -m repro report --device bogota --variant delta
    python -m repro scalability --window-size 16
    python -m repro bench --quick --variants int-DCT-W,delta
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis import render_table
from repro.compression.codecs import get_codec, list_codecs
from repro.core import CompaqtCompiler, qubit_gain, qubits_supported
from repro.devices import IBM_DEVICE_NAMES, ibm_device

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPAQT reproduction: compressed waveform memory tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("devices", help="list available synthetic devices")

    subparsers.add_parser(
        "codecs", help="list registered codecs and their capability flags"
    )

    report = subparsers.add_parser(
        "report", help="compression report for one device's pulse library"
    )
    report.add_argument("--device", default="guadalupe", help="IBM device name")
    report.add_argument(
        "--window-size", type=int, default=16, choices=(8, 16, 32)
    )
    report.add_argument(
        "--variant",
        default="int-DCT-W",
        choices=list_codecs(),
    )
    report.add_argument(
        "--threshold", type=float, default=128, help="coefficient threshold"
    )
    report.add_argument(
        "--fidelity-aware",
        action="store_true",
        help="tune the threshold per pulse (Algorithm 1)",
    )
    report.add_argument(
        "--target-mse", type=float, default=1e-6, help="Algorithm 1 epsilon"
    )

    scal = subparsers.add_parser(
        "scalability", help="qubits supported per QICK-class controller"
    )
    scal.add_argument("--window-size", type=int, default=16, choices=(8, 16, 32))
    scal.add_argument("--clock-ratio", type=int, default=16)

    bench = subparsers.add_parser(
        "bench",
        help="scalar-vs-batched codec benchmark (JSON + table)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small device set and a single repeat (the CI smoke profile)",
    )
    bench.add_argument(
        "--decode",
        action="store_true",
        help="decode-side profile: skip the scalar compile timing and "
        "measure batched playback and the wire format only",
    )
    bench.add_argument(
        "--devices",
        default=None,
        help="comma-separated device specs (IBM name, google-RxC, "
        "fluxonium-N); defaults to the full catalog, or the quick set "
        "with --quick",
    )
    bench.add_argument(
        "--variants",
        default=None,
        help="comma-separated codec names (see `repro codecs`); defaults "
        "to every registered codec",
    )
    bench.add_argument(
        "--window-size", type=int, default=16, choices=(8, 16, 32)
    )
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument(
        "--output",
        default=None,
        help="JSON output path (default BENCH_compression.json)",
    )

    pack = subparsers.add_parser(
        "pack",
        help="compile a device library and write its wire-format bitstream",
    )
    pack.add_argument(
        "device", help="device spec (IBM name, google-RxC, fluxonium-N)"
    )
    pack.add_argument(
        "--window-size", type=int, default=16, choices=(8, 16, 32)
    )
    pack.add_argument(
        "--variant",
        default="int-DCT-W",
        choices=list_codecs(),
    )
    pack.add_argument(
        "--threshold", type=float, default=128, help="coefficient threshold"
    )
    pack.add_argument(
        "--output",
        default=None,
        help="bitstream output path (default <device>.cqt)",
    )
    return parser


def _cmd_devices() -> str:
    rows = []
    for name in IBM_DEVICE_NAMES:
        device = ibm_device(name)
        rows.append(
            [
                device.name,
                device.n_qubits,
                len(device.topology.edges),
                len(device.pulse_library()),
                f"{device.memory_per_qubit_bytes() / 1e3:.1f} KB",
            ]
        )
    return render_table(
        "Synthetic IBM devices",
        ["device", "qubits", "couplings", "waveforms", "memory/qubit"],
        rows,
    )


def _cmd_codecs() -> str:
    rows = []
    for name in list_codecs():
        codec = get_codec(name)
        sizes = codec.supported_window_sizes
        rows.append(
            [
                codec.wire_id,
                codec.name,
                "yes" if codec.windowed else "full-frame",
                "yes" if codec.batchable else "no",
                "yes" if codec.exact_rational_rows else "no",
                "yes" if codec.lossless else "no",
                "any" if sizes is None else "/".join(str(s) for s in sizes),
            ]
        )
    return render_table(
        "Registered codecs",
        [
            "id",
            "codec",
            "windowed",
            "batchable",
            "exact rows",
            "lossless",
            "windows",
        ],
        rows,
        note="register new codecs via repro.compression.codecs.register_codec",
    )


def _cmd_report(args: argparse.Namespace) -> str:
    device = ibm_device(args.device)
    compiler = CompaqtCompiler(
        window_size=args.window_size,
        variant=args.variant,
        threshold=args.threshold,
        fidelity_aware=args.fidelity_aware,
        target_mse=args.target_mse,
    )
    compiled = compiler.compile_library(device.pulse_library())
    rows = []
    for gate in ("x", "sx", "cx", "measure"):
        stats = compiled.gate_stats(gate)
        rows.append(
            [
                gate,
                stats.count,
                f"{stats.min_ratio:.2f}",
                f"{stats.mean_ratio:.2f}",
                f"{stats.max_ratio:.2f}",
                f"{stats.mean_mse:.1e}",
            ]
        )
    rows.append(
        [
            "overall",
            len(compiled),
            "-",
            f"{compiled.overall_ratio_variable:.2f}",
            "-",
            f"{compiled.mean_mse:.1e}",
        ]
    )
    return render_table(
        f"{device.name}: {args.variant} WS={args.window_size}"
        + (" (fidelity-aware)" if args.fidelity_aware else ""),
        ["gate", "count", "min R", "mean R", "max R", "mean MSE"],
        rows,
        note=f"worst window: {compiled.worst_case_window_words} words",
    )


def _cmd_scalability(args: argparse.Namespace) -> str:
    rows = [["uncompressed", "1.00x", qubits_supported(0, args.clock_ratio)]]
    for ws in (8, 16):
        rows.append(
            [
                f"int-DCT-W WS={ws}",
                f"{qubit_gain(ws, args.clock_ratio):.2f}x",
                qubits_supported(ws, args.clock_ratio),
            ]
        )
    return render_table(
        f"Concurrent qubits (DAC/fabric clock ratio {args.clock_ratio}x)",
        ["design", "gain", "qubits"],
        rows,
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_OUTPUT,
        FULL_DEVICE_SPECS,
        QUICK_DEVICE_SPECS,
        render_bench_table,
        run_compression_bench,
        write_bench_json,
    )

    if args.devices:
        specs = tuple(s.strip() for s in args.devices.split(",") if s.strip())
        if not specs:
            print(f"error: --devices {args.devices!r} names no devices")
            return 2
    else:
        specs = QUICK_DEVICE_SPECS if args.quick else FULL_DEVICE_SPECS
    if args.variants is not None:
        variants = tuple(
            dict.fromkeys(
                v.strip() for v in args.variants.split(",") if v.strip()
            )
        )
        if not variants:
            print(f"error: --variants {args.variants!r} names no codecs")
            return 2
        unknown = [v for v in variants if v not in list_codecs()]
        if unknown:
            print(
                f"error: unknown codecs {unknown}; registered: "
                f"{', '.join(list_codecs())}"
            )
            return 2
    else:
        variants = list_codecs()
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    payload = run_compression_bench(
        device_specs=specs,
        variants=variants,
        window_size=args.window_size,
        repeats=repeats,
        warmup=args.warmup,
        mode="decode" if args.decode else "all",
    )
    path = write_bench_json(payload, args.output or DEFAULT_OUTPUT)
    print(render_bench_table(payload))
    print(f"   wrote: {path}")
    summary = payload["summary"]
    failures = []
    if not summary["all_parity_ok"]:
        failures.append("batched compression mismatches the scalar reference")
    if not summary["all_decode_parity_ok"]:
        failures.append("batched decode mismatches the scalar reference")
    if not summary["all_roundtrip_ok"]:
        failures.append("bitstream round-trip is not lossless")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.perf import resolve_device

    device = resolve_device(args.device)
    compiler = CompaqtCompiler(
        window_size=args.window_size,
        variant=args.variant,
        threshold=args.threshold,
    )
    compiled = compiler.compile_library(device.pulse_library())
    path = compiler.save_library(
        compiled, args.output or f"{device.name}.cqt"
    )
    blob = path.read_bytes()
    loaded = compiler.load_library(path)
    if len(loaded) != len(compiled) or loaded.to_bytes() != blob:
        print("ERROR: packed bitstream failed its round-trip check")
        return 1
    uncompressed = sum(
        r.compressed.original_samples * 4 for _k, r in compiled
    )  # 16-bit I + 16-bit Q per sample
    print(
        render_table(
            f"{device.name}: packed {args.variant} WS={args.window_size}",
            ["waveforms", "wire bytes", "raw bytes", "wire ratio", "R(var)"],
            [
                [
                    len(compiled),
                    len(blob),
                    uncompressed,
                    f"{uncompressed / len(blob):.2f}",
                    f"{compiled.overall_ratio_variable:.2f}",
                ]
            ],
            note=f"wrote: {path} (round-trip verified)",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        print(_cmd_devices())
    elif args.command == "codecs":
        print(_cmd_codecs())
    elif args.command == "report":
        print(_cmd_report(args))
    elif args.command == "scalability":
        print(_cmd_scalability(args))
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "pack":
        return _cmd_pack(args)
    return 0
