"""Command-line interface: inspect devices, codecs, reports, perf.

Usage::

    python -m repro devices
    python -m repro codecs
    python -m repro report --device guadalupe --window-size 16
    python -m repro report --device bogota --codec delta
    python -m repro scalability --window-size 16
    python -m repro bench --quick --codecs int-DCT-W,delta
    python -m repro bench --serving --quick
    python -m repro bench --network --quick
    python -m repro bench --network --scaling --workers 1,2,4 --check
    python -m repro pack guadalupe --shards 4 --codec int-DCT-W
    python -m repro serve guadalupe.cqs --requests trace.json
    python -m repro serve-net guadalupe.cqs --port 7711 --workers 2
    python -m repro serve-net guadalupe.cqs --metrics-port 9200 --trace-sample-rate 0.01
    python -m repro loadgen 127.0.0.1:7711 --synthetic 4096 --open --rate 500
    python -m repro loadgen 127.0.0.1:7711 --open --rate 2000 --retries 3
    python -m repro metrics 127.0.0.1:7711
    python -m repro traces 127.0.0.1:7711 --limit 4
    python -m repro chaos --quick
    python -m repro chaos --devices bogota,guadalupe --seed 7 --ops 400
    python -m repro chaos --quick --trace-sample-rate 1.0

The ``--variant``/``--variants`` spellings remain accepted everywhere
as deprecated aliases of ``--codec``/``--codecs``.
"""

from __future__ import annotations

import argparse
import warnings
from typing import List, Optional

from repro.analysis import render_table
from repro.compression.codecs import get_codec, list_codecs
from repro.core import CompaqtCompiler, qubit_gain, qubits_supported
from repro.devices import IBM_DEVICE_NAMES, ibm_device

__all__ = ["main", "build_parser"]


class _DeprecatedAlias(argparse.Action):
    """A flag kept only as a deprecated spelling of another flag.

    The CLI twin of :func:`repro.compression.codecs.resolve_codec_arg`:
    using the old spelling still works, stores into the canonical
    destination, and emits one :class:`DeprecationWarning` naming the
    replacement.
    """

    def __init__(self, *args, preferred: str, **kwargs):
        self.preferred = preferred
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            f"{option_string} is deprecated; pass {self.preferred} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPAQT reproduction: compressed waveform memory tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("devices", help="list available synthetic devices")

    subparsers.add_parser(
        "codecs", help="list registered codecs and their capability flags"
    )

    report = subparsers.add_parser(
        "report", help="compression report for one device's pulse library"
    )
    report.add_argument("--device", default="guadalupe", help="IBM device name")
    report.add_argument(
        "--window-size", type=int, default=16, choices=(8, 16, 32)
    )
    report.add_argument(
        "--codec",
        default="int-DCT-W",
        choices=list_codecs(),
        help="codec name (see `repro codecs`)",
    )
    report.add_argument(
        "--variant",
        dest="codec",
        choices=list_codecs(),
        action=_DeprecatedAlias,
        preferred="--codec",
        help="deprecated alias of --codec",
    )
    report.add_argument(
        "--threshold", type=float, default=128, help="coefficient threshold"
    )
    report.add_argument(
        "--fidelity-aware",
        action="store_true",
        help="tune the threshold per pulse (Algorithm 1)",
    )
    report.add_argument(
        "--target-mse", type=float, default=1e-6, help="Algorithm 1 epsilon"
    )

    scal = subparsers.add_parser(
        "scalability", help="qubits supported per QICK-class controller"
    )
    scal.add_argument("--window-size", type=int, default=16, choices=(8, 16, 32))
    scal.add_argument("--clock-ratio", type=int, default=16)

    bench = subparsers.add_parser(
        "bench",
        help="scalar-vs-batched codec benchmark (JSON + table)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small device set and a single repeat (the CI smoke profile)",
    )
    bench.add_argument(
        "--decode",
        action="store_true",
        help="decode-side profile: skip the scalar compile timing and "
        "measure batched playback and the wire format only",
    )
    bench.add_argument(
        "--serving",
        action="store_true",
        help="serving profile: sharded-store fetch_batch throughput vs "
        "the naive per-pulse decode loop (writes BENCH_serving.json)",
    )
    bench.add_argument(
        "--network",
        action="store_true",
        help="network profile: CQN1 socket throughput, tail latency and "
        "overload behaviour (writes BENCH_network.json)",
    )
    bench.add_argument(
        "--scaling",
        action="store_true",
        help="with --network: also run the decode-scaling study "
        "(threads vs the multi-process pool at 1/2/4/8 workers, cold "
        "and warm) and gate on per-core pool efficiency",
    )
    bench.add_argument(
        "--workers",
        default=None,
        help="with --scaling: comma-separated pool worker counts "
        "(default 1,2,4,8)",
    )
    bench.add_argument(
        "--start-method",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="with --scaling: multiprocessing start method for the "
        "decode pool (default: the platform's)",
    )
    bench.add_argument(
        "--shm-limit",
        type=int,
        default=None,
        help="with --scaling: per-worker shared-memory slab bytes "
        "(default 8 MiB; undersized slabs fall back to pipe transport)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="evaluate the gates but do not rewrite the default JSON "
        "artifact (no dirty CI trees); an explicit --output still writes",
    )
    bench.add_argument(
        "--seed", type=int, default=7, help="serving-trace RNG seed"
    )
    bench.add_argument(
        "--devices",
        default=None,
        help="comma-separated device specs (IBM name, google-RxC, "
        "fluxonium-N); defaults to the full catalog, or the quick set "
        "with --quick",
    )
    bench.add_argument(
        "--codecs",
        default=None,
        help="comma-separated codec names (see `repro codecs`); defaults "
        "to every registered codec",
    )
    bench.add_argument(
        "--variants",
        dest="codecs",
        action=_DeprecatedAlias,
        preferred="--codecs",
        help="deprecated alias of --codecs",
    )
    bench.add_argument(
        "--window-size", type=int, default=16, choices=(8, 16, 32)
    )
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument(
        "--output",
        default=None,
        help="JSON output path (default BENCH_compression.json)",
    )

    pack = subparsers.add_parser(
        "pack",
        help="compile a device library and write its wire-format bitstream",
    )
    pack.add_argument(
        "device", help="device spec (IBM name, google-RxC, fluxonium-N)"
    )
    pack.add_argument(
        "--window-size", type=int, default=16, choices=(8, 16, 32)
    )
    pack.add_argument(
        "--codec",
        default="int-DCT-W",
        choices=list_codecs(),
        help="codec to pack with, validated against the registry "
        "(see `repro codecs`)",
    )
    pack.add_argument(
        "--variant",
        dest="codec",
        choices=list_codecs(),
        action=_DeprecatedAlias,
        preferred="--codec",
        help="deprecated alias of --codec",
    )
    pack.add_argument(
        "--threshold", type=float, default=128, help="coefficient threshold"
    )
    pack.add_argument(
        "--shards",
        type=int,
        default=0,
        help="write a CQS1 sharded store directory with this many shard "
        "files instead of a single CQL1 container (0 = single file)",
    )
    pack.add_argument(
        "--output",
        default=None,
        help="output path (default <device>.cqt, or <device>.cqs with --shards)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve decoded pulses from a CQS1 store through the LRU cache",
    )
    serve.add_argument(
        "store", help="CQS1 store directory (see `repro pack --shards`)"
    )
    serve.add_argument(
        "--requests",
        default=None,
        help="JSON request trace; omitted: a synthetic Zipf trace over "
        "the store's keys",
    )
    serve.add_argument(
        "--synthetic",
        type=int,
        default=1024,
        help="synthetic trace length when --requests is omitted",
    )
    serve.add_argument("--seed", type=int, default=0, help="synthetic trace seed")
    serve.add_argument(
        "--cache-size", type=int, default=64, help="decoded LRU capacity (pulses)"
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="threads for cross-shard fills"
    )
    serve.add_argument(
        "--batch-size", type=int, default=32, help="fetch_batch request size"
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identity check against the scalar decoder",
    )
    serve.add_argument(
        "--prewarm",
        action="store_true",
        help="fill the cache through the fused whole-shard decoder "
        "before replaying the trace",
    )

    serve_net = subparsers.add_parser(
        "serve-net",
        help="serve a CQS1 store over TCP with the CQN1 binary protocol",
    )
    serve_net.add_argument(
        "store", help="CQS1 store directory (see `repro pack --shards`)"
    )
    serve_net.add_argument("--host", default="127.0.0.1")
    serve_net.add_argument(
        "--port", type=int, default=0, help="listen port (0 = OS-assigned)"
    )
    serve_net.add_argument(
        "--workers",
        type=int,
        default=0,
        help="decode worker *processes* for cold-miss fills (0 = decode "
        "in-process; see the worker-pool notes in the README)",
    )
    serve_net.add_argument(
        "--fill-threads",
        type=int,
        default=4,
        help="threads for the store's cross-shard parallel fills",
    )
    serve_net.add_argument(
        "--shm-limit",
        type=int,
        default=None,
        help="per-worker shared-memory slab bytes for pool results "
        "(default 8 MiB)",
    )
    serve_net.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="decoded LRU capacity in pulses (0 = the whole library)",
    )
    serve_net.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="admission-control bound: fetches beyond this get an "
        "explicit overload reply instead of queueing",
    )
    serve_net.add_argument(
        "--prewarm",
        action="store_true",
        help="fill the cache before accepting connections",
    )
    serve_net.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve_net.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve Prometheus-style text metrics over HTTP on "
        "this port (GET /metrics; /metrics.json for the raw snapshot)",
    )
    serve_net.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        help="fraction of fetches that record a server-side trace "
        "(default 0.01; client-traced fetches always record)",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a CQN1 server and report throughput and p50/p95/p99",
    )
    loadgen.add_argument("address", help="server address, host:port")
    loadgen.add_argument(
        "--trace",
        default=None,
        help="JSON request trace; omitted: a synthetic Zipf trace over "
        "the server's keys",
    )
    loadgen.add_argument(
        "--synthetic",
        type=int,
        default=4096,
        help="synthetic trace length when --trace is omitted",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--open",
        action="store_true",
        help="open-loop mode: fire on a Poisson schedule at --rate "
        "instead of waiting for responses (the overload probe)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="open-loop arrival rate, requests/second",
    )
    loadgen.add_argument("--batch-size", type=int, default=None)
    loadgen.add_argument("--connections", type=int, default=None)
    loadgen.add_argument(
        "--max-outstanding",
        type=int,
        default=64,
        help="open-loop bound on in-flight requests (excess arrivals "
        "are shed client-side)",
    )
    loadgen.add_argument(
        "--records",
        action="store_true",
        help="fetch raw CQW1 record bytes instead of decoded samples",
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=0,
        help="client retries per request on an overload reply, with "
        "seeded exponential backoff (0 = count overloads, don't retry)",
    )
    loadgen.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds (doubles per attempt, "
        "jittered)",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="fault-injection chaos/soak harness over the serving stack",
    )
    chaos.add_argument(
        "--devices",
        default="bogota",
        help="comma-separated device specs to soak (default: bogota)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke profile: one small device, short seeded workload",
    )
    chaos.add_argument("--threads", type=int, default=4)
    chaos.add_argument(
        "--ops",
        type=int,
        default=150,
        help="operations per worker thread (the soak length knob)",
    )
    chaos.add_argument("--clients", type=int, default=3)
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument(
        "--fault-period",
        type=int,
        default=7,
        help="inject one fault per N batch decodes",
    )
    chaos.add_argument(
        "--decode-workers",
        type=int,
        default=2,
        help="decode pool size for the worker-kill storm phase "
        "(0 skips the pool phase)",
    )
    chaos.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="request-trace sampling rate for the networked phase "
        "(1.0 soaks the tracing path itself under faults)",
    )
    chaos.add_argument(
        "--write-commits",
        type=int,
        default=12,
        help="commits in the write-storm phase, with crash_commit / "
        "torn_write faults injected into the commit protocol "
        "(0 skips the phase)",
    )
    chaos.add_argument(
        "--store-dir",
        default=None,
        help="keep the soak's store directories here instead of a "
        "temp dir (the surviving write-storm store can then be "
        "scrubbed with `repro store verify`)",
    )
    chaos.add_argument(
        "--json",
        default=None,
        help="also write the full soak report to this path",
    )

    store = subparsers.add_parser(
        "store",
        help="inspect and scrub CQS1/CQS2 store directories",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="scrub a store directory: manifest chain, shard sizes, "
        "span bounds, per-record parseability (fused vs scalar)",
    )
    store_verify.add_argument("dir", help="store directory to scrub")

    metrics = subparsers.add_parser(
        "metrics",
        help="scrape a CQN1 server's metrics registry over the wire",
    )
    metrics.add_argument("address", help="server address, host:port")
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the raw snapshot as JSON instead of Prometheus text",
    )

    traces = subparsers.add_parser(
        "traces",
        help="fetch a CQN1 server's recent request traces",
    )
    traces.add_argument("address", help="server address, host:port")
    traces.add_argument(
        "--limit",
        type=int,
        default=16,
        help="most recent traces to fetch (1-1024)",
    )
    traces.add_argument(
        "--json",
        action="store_true",
        help="print raw trace dicts as JSON instead of span trees",
    )
    return parser


def _cmd_devices() -> str:
    rows = []
    for name in IBM_DEVICE_NAMES:
        device = ibm_device(name)
        rows.append(
            [
                device.name,
                device.n_qubits,
                len(device.topology.edges),
                len(device.pulse_library()),
                f"{device.memory_per_qubit_bytes() / 1e3:.1f} KB",
            ]
        )
    return render_table(
        "Synthetic IBM devices",
        ["device", "qubits", "couplings", "waveforms", "memory/qubit"],
        rows,
    )


def _cmd_codecs() -> str:
    rows = []
    for name in list_codecs():
        codec = get_codec(name)
        sizes = codec.supported_window_sizes
        rows.append(
            [
                codec.wire_id,
                codec.name,
                "yes" if codec.windowed else "full-frame",
                "yes" if codec.batchable else "no",
                "yes" if codec.exact_rational_rows else "no",
                "yes" if codec.lossless else "no",
                "any" if sizes is None else "/".join(str(s) for s in sizes),
            ]
        )
    return render_table(
        "Registered codecs",
        [
            "id",
            "codec",
            "windowed",
            "batchable",
            "exact rows",
            "lossless",
            "windows",
        ],
        rows,
        note="register new codecs via repro.compression.codecs.register_codec",
    )


def _cmd_report(args: argparse.Namespace) -> str:
    device = ibm_device(args.device)
    compiler = CompaqtCompiler(
        window_size=args.window_size,
        codec=args.codec,
        threshold=args.threshold,
        fidelity_aware=args.fidelity_aware,
        target_mse=args.target_mse,
    )
    compiled = compiler.compile_library(device.pulse_library())
    rows = []
    for gate in ("x", "sx", "cx", "measure"):
        stats = compiled.gate_stats(gate)
        rows.append(
            [
                gate,
                stats.count,
                f"{stats.min_ratio:.2f}",
                f"{stats.mean_ratio:.2f}",
                f"{stats.max_ratio:.2f}",
                f"{stats.mean_mse:.1e}",
            ]
        )
    rows.append(
        [
            "overall",
            len(compiled),
            "-",
            f"{compiled.overall_ratio_variable:.2f}",
            "-",
            f"{compiled.mean_mse:.1e}",
        ]
    )
    return render_table(
        f"{device.name}: {args.codec} WS={args.window_size}"
        + (" (fidelity-aware)" if args.fidelity_aware else ""),
        ["gate", "count", "min R", "mean R", "max R", "mean MSE"],
        rows,
        note=f"worst window: {compiled.worst_case_window_words} words",
    )


def _cmd_scalability(args: argparse.Namespace) -> str:
    rows = [["uncompressed", "1.00x", qubits_supported(0, args.clock_ratio)]]
    for ws in (8, 16):
        rows.append(
            [
                f"int-DCT-W WS={ws}",
                f"{qubit_gain(ws, args.clock_ratio):.2f}x",
                qubits_supported(ws, args.clock_ratio),
            ]
        )
    return render_table(
        f"Concurrent qubits (DAC/fabric clock ratio {args.clock_ratio}x)",
        ["design", "gain", "qubits"],
        rows,
    )


def _single_codec_arg(args: argparse.Namespace, profile: str) -> Optional[str]:
    """The one codec a single-codec bench profile runs; None on error."""
    if args.codecs is None:
        return "int-DCT-W"
    named = tuple(
        dict.fromkeys(v.strip() for v in args.codecs.split(",") if v.strip())
    )
    if len(named) != 1:
        print(
            f"error: the {profile} bench measures one codec per run; "
            f"--codecs named {list(named)}"
        )
        return None
    if named[0] not in list_codecs():
        print(
            f"error: unknown codec {named[0]!r}; registered: "
            f"{', '.join(list_codecs())}"
        )
        return None
    return named[0]


def _scaling_worker_counts(args: argparse.Namespace):
    """The pool worker counts for --scaling; None on a parse error."""
    from repro.perf import SCALING_WORKER_COUNTS

    if args.workers is None:
        return SCALING_WORKER_COUNTS
    try:
        counts = tuple(
            dict.fromkeys(
                int(v.strip()) for v in args.workers.split(",") if v.strip()
            )
        )
    except ValueError:
        counts = ()
    if not counts or any(count < 1 for count in counts):
        print(f"error: --workers {args.workers!r} is not a list of counts >= 1")
        return None
    return counts


def _cmd_bench_network(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_NETWORK_OUTPUT,
        NETWORK_FULL_DEVICE_SPECS,
        NETWORK_QUICK_DEVICE_SPECS,
        network_gates_ok,
        render_network_table,
        render_scaling_table,
        run_network_bench,
        run_scaling_bench,
        write_network_json,
    )

    if args.decode or args.serving:
        print("error: --network is its own bench profile")
        return 2
    if args.devices:
        specs = tuple(s.strip() for s in args.devices.split(",") if s.strip())
        if not specs:
            print(f"error: --devices {args.devices!r} names no devices")
            return 2
    else:
        specs = (
            NETWORK_QUICK_DEVICE_SPECS if args.quick else NETWORK_FULL_DEVICE_SPECS
        )
    codec = _single_codec_arg(args, "network")
    if codec is None:
        return 2
    # Best-of-2 even in quick mode: a single replay on a noisy CI
    # runner can dip under the throughput gate.
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)
    payload = run_network_bench(
        device_specs=specs,
        n_requests=1024 if args.quick else 4096,
        repeats=repeats,
        seed=args.seed,
        window_size=args.window_size,
        codec=codec,
    )
    print(render_network_table(payload))
    if args.scaling:
        worker_counts = _scaling_worker_counts(args)
        if worker_counts is None:
            return 2
        payload["scaling"] = run_scaling_bench(
            device_specs=specs,
            worker_counts=worker_counts,
            rounds=4 if args.quick else 8,
            seed=args.seed,
            window_size=args.window_size,
            codec=codec,
            start_method=args.start_method,
            shm_limit=args.shm_limit,
        )
        print(render_scaling_table(payload["scaling"]))
    if args.check and not args.output:
        print("   check mode: gates evaluated, JSON not written")
    else:
        path = write_network_json(payload, args.output or DEFAULT_NETWORK_OUTPUT)
        print(f"   wrote: {path}")
    ok, failures = network_gates_ok(payload)
    for failure in failures:
        print(f"ERROR: {failure}")
    return 0 if ok else 1


def _cmd_bench_serving(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_SERVING_OUTPUT,
        SERVING_FULL_DEVICE_SPECS,
        SERVING_QUICK_DEVICE_SPECS,
        render_serving_table,
        run_serving_bench,
        serving_gates_ok,
        write_serving_json,
    )

    if args.decode:
        print("error: --decode and --serving are different bench profiles")
        return 2
    if args.devices:
        specs = tuple(s.strip() for s in args.devices.split(",") if s.strip())
        if not specs:
            print(f"error: --devices {args.devices!r} names no devices")
            return 2
    else:
        specs = (
            SERVING_QUICK_DEVICE_SPECS if args.quick else SERVING_FULL_DEVICE_SPECS
        )
    codec = _single_codec_arg(args, "serving")
    if codec is None:
        return 2
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    payload = run_serving_bench(
        device_specs=specs,
        n_requests=512 if args.quick else 2048,
        repeats=repeats,
        warmup=args.warmup,
        seed=args.seed,
        window_size=args.window_size,
        variant=codec,
    )
    print(render_serving_table(payload))
    if args.check and not args.output:
        print("   check mode: gates evaluated, JSON not written")
    else:
        path = write_serving_json(payload, args.output or DEFAULT_SERVING_OUTPUT)
        print(f"   wrote: {path}")
    ok, failures = serving_gates_ok(payload)
    for failure in failures:
        print(f"ERROR: {failure}")
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_OUTPUT,
        FULL_DEVICE_SPECS,
        QUICK_DEVICE_SPECS,
        render_bench_table,
        run_compression_bench,
        write_bench_json,
    )

    if args.network:
        return _cmd_bench_network(args)
    if args.scaling:
        print("error: --scaling is part of the --network profile")
        return 2
    if args.serving:
        return _cmd_bench_serving(args)
    if args.devices:
        specs = tuple(s.strip() for s in args.devices.split(",") if s.strip())
        if not specs:
            print(f"error: --devices {args.devices!r} names no devices")
            return 2
    else:
        specs = QUICK_DEVICE_SPECS if args.quick else FULL_DEVICE_SPECS
    if args.codecs is not None:
        variants = tuple(
            dict.fromkeys(
                v.strip() for v in args.codecs.split(",") if v.strip()
            )
        )
        if not variants:
            print(f"error: --codecs {args.codecs!r} names no codecs")
            return 2
        unknown = [v for v in variants if v not in list_codecs()]
        if unknown:
            print(
                f"error: unknown codecs {unknown}; registered: "
                f"{', '.join(list_codecs())}"
            )
            return 2
    else:
        variants = list_codecs()
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    payload = run_compression_bench(
        device_specs=specs,
        variants=variants,
        window_size=args.window_size,
        repeats=repeats,
        warmup=args.warmup,
        mode="decode" if args.decode else "all",
    )
    print(render_bench_table(payload))
    if args.check and not args.output:
        print("   check mode: gates evaluated, JSON not written")
    else:
        path = write_bench_json(payload, args.output or DEFAULT_OUTPUT)
        print(f"   wrote: {path}")
    summary = payload["summary"]
    failures = []
    if not summary["all_parity_ok"]:
        failures.append("batched compression mismatches the scalar reference")
    if not summary["all_decode_parity_ok"]:
        failures.append("batched decode mismatches the scalar reference")
    if not summary["all_roundtrip_ok"]:
        failures.append("bitstream round-trip is not lossless")
    if not summary["all_fused_parity_ok"]:
        failures.append("fused parse+decode mismatches the scalar reader path")
    if not summary["all_parse_parity_ok"]:
        failures.append("vectorized parse mismatches the scalar reader")
    if not summary["fused_speedup_gate_ok"]:
        failures.append(
            "fused cold-miss decode is under the "
            f"{summary['fused_speedup_gate']:.0f}x gate on a windowed codec "
            f"(min {summary['min_fused_speedup_windowed']:.1f}x)"
        )
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.perf import resolve_device

    if args.shards < 0:
        print(f"error: --shards must be >= 0, got {args.shards}")
        return 2
    device = resolve_device(args.device)
    compiler = CompaqtCompiler(
        window_size=args.window_size,
        codec=args.codec,
        threshold=args.threshold,
    )
    compiled = compiler.compile_library(device.pulse_library())
    uncompressed = sum(
        r.compressed.original_samples * 4 for _k, r in compiled
    )  # 16-bit I + 16-bit Q per sample

    if args.shards:
        store = compiler.save_store(
            compiled, args.output or f"{device.name}.cqs", n_shards=args.shards
        )
        loaded = store.load_library()
        identical = len(loaded) == len(compiled) and all(
            loaded.result(*key).compressed == compiled.result(*key).compressed
            for key in compiled.keys()
        )
        if not identical:
            print("ERROR: packed store failed its round-trip check")
            return 1
        wire_bytes = store.total_shard_bytes
        path = store.path.resolve()
        rows = [
            [
                shard,
                store.shard_path(shard).name,
                sum(1 for k in store.keys() if store.shard_of(*k) == shard),
                store.shard_path(shard).stat().st_size,
            ]
            for shard in range(store.n_shards)
        ]
        print(
            render_table(
                f"{device.name}: CQS1 store, {args.codec} "
                f"WS={args.window_size}, {args.shards} shards",
                ["shard", "file", "waveforms", "bytes"],
                rows,
                note=f"manifest: {path}/manifest.json (round-trip verified)",
            )
        )
    else:
        path = compiler.save_library(compiled, args.output or f"{device.name}.cqt")
        blob = path.read_bytes()
        loaded = compiler.load_library(path)
        if len(loaded) != len(compiled) or loaded.to_bytes() != blob:
            print("ERROR: packed bitstream failed its round-trip check")
            return 1
        wire_bytes = len(blob)
        print(
            render_table(
                f"{device.name}: packed {args.codec} WS={args.window_size}",
                ["waveforms", "wire bytes", "raw bytes", "wire ratio", "R(var)"],
                [
                    [
                        len(compiled),
                        wire_bytes,
                        uncompressed,
                        f"{uncompressed / wire_bytes:.2f}",
                        f"{compiled.overall_ratio_variable:.2f}",
                    ]
                ],
                note=f"wrote: {path} (round-trip verified)",
            )
        )
    print(
        f"packed {len(compiled)} waveforms -> {path} "
        f"({wire_bytes} wire bytes, {uncompressed / wire_bytes:.2f}x over raw, "
        f"R(var)={compiled.overall_ratio_variable:.2f})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.compression.pipeline import decompress_waveform
    from repro.store import PulseServer, load_trace, open_store, synthetic_trace

    store = open_store(args.store)
    if args.requests:
        trace = load_trace(args.requests)
        source = args.requests
    else:
        trace = synthetic_trace(store.keys(), args.synthetic, seed=args.seed)
        source = f"synthetic (seed {args.seed})"

    with PulseServer(
        store, cache_capacity=args.cache_size, max_workers=args.workers
    ) as server:
        prewarmed = server.cache.prewarm() if args.prewarm else 0
        start = time.perf_counter()
        for begin in range(0, len(trace), args.batch_size):
            server.fetch_batch(trace[begin : begin + args.batch_size])
        elapsed = time.perf_counter() - start
        # Snapshot before the verify pass so the printed counters
        # describe the trace replay, not the verification traffic.
        stats = server.stats()
        identity_ok = True
        if not args.no_verify:
            keys = store.keys()
            served = server.fetch_batch(keys)
            for key, waveform in zip(keys, served):
                reference = decompress_waveform(store.read_record(*key))
                if not np.array_equal(waveform.samples, reference.samples):
                    identity_ok = False
                    break

    cache = stats.cache
    print(
        render_table(
            f"{store.device_name}: served {len(trace)} requests "
            f"({store.n_shards} shards, cache {args.cache_size})",
            ["requests", "pulses/s", "hits", "misses", "evictions", "hit rate"],
            [
                [
                    stats.requests,
                    f"{len(trace) / elapsed:.0f}" if elapsed > 0 else "inf",
                    cache.hits,
                    cache.misses,
                    cache.evictions,
                    f"{cache.hit_rate:.0%}",
                ]
            ],
            note=f"trace: {source}, shard fills: {stats.shard_fills}"
            + (f", prewarmed: {prewarmed} pulses" if args.prewarm else "")
            + (
                ""
                if args.no_verify
                else (
                    ", bit-identity vs scalar decode: "
                    + ("ok" if identity_ok else "FAILED")
                )
            ),
        )
    )
    if not identity_ok:
        print("ERROR: served samples diverge from the scalar reference")
        return 1
    return 0


def _cmd_serve_net(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve_net import NetPulseServer
    from repro.store import PulseServer, open_store

    store = open_store(args.store)
    cache_size = args.cache_size or len(store.keys())

    async def _run() -> None:
        with PulseServer(
            store,
            cache_capacity=cache_size,
            max_workers=args.fill_threads,
            workers=args.workers,
            shm_limit=args.shm_limit,
        ) as serving:
            if args.prewarm:
                serving.cache.prewarm()
            server = NetPulseServer(
                serving,
                host=args.host,
                port=args.port,
                max_inflight=args.max_inflight,
                trace_sample_rate=args.trace_sample_rate,
            )
            await server.start()
            host, port = server.address
            pool_note = (
                f", {args.workers} decode workers" if args.workers else ""
            )
            print(
                f"serving {store.device_name} ({len(store.keys())} pulses, "
                f"{store.n_shards} shards) on {host}:{port} -- CQN1, "
                f"max inflight {args.max_inflight}{pool_note}; "
                f"Ctrl-C drains and exits"
            )
            metrics_http = None
            if args.metrics_port is not None:
                from repro.obs import start_metrics_server

                metrics_http = start_metrics_server(
                    server.metrics_snapshot,
                    host=args.host,
                    port=args.metrics_port,
                )
                metrics_host, metrics_port = metrics_http.address
                print(
                    f"metrics on http://{metrics_host}:{metrics_port}/metrics"
                )
            try:
                await server.serve_forever()
            finally:
                if metrics_http is not None:
                    metrics_http.close()
                await server.aclose(drain_timeout=args.drain_timeout)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("drained and stopped")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve_net import (
        PulseClient,
        parse_address,
        run_closed_loop,
        run_open_loop,
    )
    from repro.store import load_trace, synthetic_trace

    address = parse_address(args.address)
    if args.trace:
        trace = load_trace(args.trace)
        source = args.trace
    else:
        with PulseClient(address) as client:
            keys = client.keys()
        trace = synthetic_trace(keys, args.synthetic, seed=args.seed)
        source = f"synthetic over {len(keys)} server keys (seed {args.seed})"

    mode = "records" if args.records else "samples"
    if args.retries < 0 or args.backoff < 0:
        print("error: --retries and --backoff must be >= 0")
        return 2
    if args.open:
        report = run_open_loop(
            address,
            trace,
            rate=args.rate,
            batch_size=args.batch_size or 16,
            connections=args.connections or 8,
            max_outstanding=args.max_outstanding,
            seed=args.seed,
            mode=mode,
            retries=args.retries,
            backoff=args.backoff,
        )
    else:
        report = run_closed_loop(
            address,
            trace,
            batch_size=args.batch_size or 64,
            connections=args.connections or 4,
            mode=mode,
            retries=args.retries,
            backoff=args.backoff,
            seed=args.seed,
        )
    latency = report.latency_ms

    def fmt(value: Optional[float]) -> str:
        return f"{value:.2f}" if value is not None else "-"

    print(
        render_table(
            f"{args.address}: {report.mode}-loop load ({mode}), "
            f"{report.connections} connections, batch {report.batch_size}",
            [
                "requests ok",
                "overloads",
                "errors",
                "skipped",
                "pulses/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
            ],
            [
                [
                    f"{report.requests_ok}/{report.requests_sent}",
                    report.overloads,
                    report.errors,
                    report.skipped,
                    f"{report.pulses_per_s:.0f}",
                    fmt(latency["p50"]),
                    fmt(latency["p95"]),
                    fmt(latency["p99"]),
                ]
            ],
            note=f"trace: {source}"
            + (
                f", retries: {report.retries}" if args.retries else ""
            )
            + (
                f", target rate {report.target_rate:.0f} req/s, peak "
                f"outstanding {report.peak_outstanding}/{report.max_outstanding}"
                if report.mode == "open"
                else ""
            ),
        )
    )
    return 0 if report.errors == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.perf.serving_bench import (
        render_soak_table,
        run_serving_soak,
        soak_gates_ok,
    )

    if args.quick:
        # The CI smoke profile: one small device, short seeded storm --
        # still every fault kind, both workloads, and the recovery pass.
        devices = ["bogota"]
        threads, ops, clients = 3, 80, 2
    else:
        devices = [d.strip() for d in args.devices.split(",") if d.strip()]
        threads, ops, clients = args.threads, args.ops, args.clients
    store_dir = None
    if args.store_dir:
        store_dir = pathlib.Path(args.store_dir)
        store_dir.mkdir(parents=True, exist_ok=True)
    payload = run_serving_soak(
        device_specs=devices,
        seed=args.seed,
        threads=threads,
        ops_per_thread=ops,
        net_clients=clients,
        n_shards=args.shards,
        fault_period=args.fault_period,
        decode_workers=args.decode_workers,
        trace_sample_rate=args.trace_sample_rate,
        write_commits=args.write_commits,
        store_dir=store_dir,
    )
    print(render_soak_table(payload))
    if args.json:
        from repro.store import atomic_write

        out = pathlib.Path(args.json)
        atomic_write(out, json.dumps(payload, indent=2) + "\n")
        print(f"   wrote: {out.resolve()}")
    ok, failures = soak_gates_ok(payload)
    for failure in failures:
        print(f"ERROR: {failure}")
    return 0 if ok else 1


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store.verify import format_report, verify_store

    report = verify_store(args.dir)
    print(format_report(report))
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_prometheus
    from repro.serve_net import PulseClient

    with PulseClient(args.address) as client:
        snapshot = client.metrics()
    if args.json:
        print(json.dumps(snapshot, indent=2))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_trace_tree
    from repro.serve_net import PulseClient

    with PulseClient(args.address) as client:
        traces = client.traces(limit=args.limit)
    if args.json:
        print(json.dumps(traces, indent=2))
        return 0
    if not traces:
        print(
            "no traces recorded -- raise the server's sampling "
            "(serve-net --trace-sample-rate) or trace client-side"
        )
        return 0
    for trace_dict in traces:
        print(format_trace_tree(trace_dict))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        print(_cmd_devices())
    elif args.command == "codecs":
        print(_cmd_codecs())
    elif args.command == "report":
        print(_cmd_report(args))
    elif args.command == "scalability":
        print(_cmd_scalability(args))
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "pack":
        return _cmd_pack(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "serve-net":
        return _cmd_serve_net(args)
    elif args.command == "loadgen":
        return _cmd_loadgen(args)
    elif args.command == "chaos":
        return _cmd_chaos(args)
    elif args.command == "store":
        return _cmd_store(args)
    elif args.command == "metrics":
        return _cmd_metrics(args)
    elif args.command == "traces":
        return _cmd_traces(args)
    return 0
