"""The blessed public API: one import for the whole serving stack.

Everything a consumer of the reproduction needs lives here under one
stable namespace, end to end in read-path order::

    compile      -> compile_library / CompaqtCompiler
    persist      -> save_store / open_store / ShardedStore
    serve        -> PulseServer / PulseCache (in-process)
                    NetPulseServer / serve_in_thread (CQN1 socket tier)
                    DecodePool (multi-process cold-miss decode workers)
    consume      -> PulseClient / AsyncPulseClient
    measure      -> run_closed_loop / run_open_loop / LoadReport
    extend       -> Codec / register_codec / list_codecs / get_codec

Deep imports (``repro.compression.codecs``, ``repro.store.sharded``,
...) keep working, but they expose internals that may move between
releases; names re-exported here are the compatibility surface.

Quickstart::

    from repro.api import (
        PulseClient,
        PulseServer,
        compile_library,
        save_store,
        serve_in_thread,
    )

    compiled = compile_library("guadalupe", window_size=16)
    store = save_store(compiled, "guadalupe.cqs", n_shards=4)

    with PulseServer(store, cache_capacity=32) as serving:
        with serve_in_thread(serving) as handle:
            with PulseClient(*handle.address) as client:
                pulse = client.fetch("sx", (0,))
"""

from typing import Union

from repro.version import __version__
from repro.errors import (
    CompressionError,
    DecodeWorkerError,
    DeviceError,
    ProtocolError,
    ReproError,
    ServerOverloadedError,
    StoreError,
)
from repro.pulses import Waveform
from repro.pulses.library import PulseLibrary
from repro.devices import fluxonium_device, google_device, ibm_device
from repro.compression import (
    CompressionResult,
    compress_waveform,
    decompress_waveform,
)
from repro.compression.codecs import (
    Codec,
    get_codec,
    list_codecs,
    register_codec,
    resolve_codec,
)
from repro.core import CompaqtCompiler, CompressedPulseLibrary
from repro.perf.compression_bench import resolve_device
from repro.store import (
    PulseCache,
    PulseServer,
    ShardedStore,
    StoreHandle,
    load_trace,
    open_store,
    save_store,
    synthetic_trace,
)
from repro.serve_net import (
    AsyncPulseClient,
    DecodePool,
    LoadReport,
    NetPulseServer,
    PoolStats,
    PulseClient,
    parse_address,
    run_closed_loop,
    run_open_loop,
    serve_in_thread,
)

__all__ = [
    "__version__",
    # Errors.
    "ReproError",
    "CompressionError",
    "DeviceError",
    "StoreError",
    "DecodeWorkerError",
    "ProtocolError",
    "ServerOverloadedError",
    # Devices and waveforms.
    "Waveform",
    "PulseLibrary",
    "ibm_device",
    "google_device",
    "fluxonium_device",
    "resolve_device",
    # Compression.
    "CompressionResult",
    "compress_waveform",
    "decompress_waveform",
    "Codec",
    "register_codec",
    "list_codecs",
    "get_codec",
    "resolve_codec",
    # Compile.
    "CompaqtCompiler",
    "CompressedPulseLibrary",
    "compile_library",
    # Store + in-process serving.
    "ShardedStore",
    "StoreHandle",
    "save_store",
    "open_store",
    "PulseCache",
    "PulseServer",
    "load_trace",
    "synthetic_trace",
    # Network serving tier.
    "NetPulseServer",
    "serve_in_thread",
    "DecodePool",
    "PoolStats",
    "PulseClient",
    "AsyncPulseClient",
    "parse_address",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
]

_LibrarySource = Union[str, PulseLibrary]


def compile_library(
    source: "_LibrarySource",
    window_size: int = 16,
    codec=None,
    **compiler_options,
) -> CompressedPulseLibrary:
    """Compile a pulse library in one call.

    Args:
        source: What to compile -- a device spec string accepted by
            :func:`resolve_device` (``"guadalupe"``, ``"google-6x9"``,
            ``"fluxonium-5"``), a device model (anything with a
            ``pulse_library()`` method), or a
            :class:`~repro.pulses.library.PulseLibrary`.
        window_size: Codec window size.
        codec: Codec registry name or :class:`Codec` object; defaults
            to ``"int-DCT-W"``.
        **compiler_options: Forwarded to :class:`CompaqtCompiler`
            (``threshold=``, ``fidelity_aware=``, ``target_mse=``,
            ``max_coefficients=``, ``batched=``).

    Returns:
        The compiled :class:`CompressedPulseLibrary`; pair with
        :func:`save_store` to persist it as a ``CQS1`` store.
    """
    if isinstance(source, str):
        library = resolve_device(source).pulse_library()
    elif isinstance(source, PulseLibrary):
        library = source
    elif hasattr(source, "pulse_library"):
        library = source.pulse_library()
    else:
        raise ReproError(
            "compile_library wants a device spec string, a device model, or a "
            f"PulseLibrary, got {type(source).__name__}"
        )
    compiler = CompaqtCompiler(window_size=window_size, codec=codec, **compiler_options)
    return compiler.compile_library(library)
