"""Fidelity-aware compression (the paper's Algorithm 1).

Each gate pulse is unique, so a uniform threshold can cost fidelity on
some qubits.  Algorithm 1 tunes the threshold per pulse: starting from
an aggressive threshold, halve it until the decompressed waveform's MSE
meets the target (MSE is "highly correlated to the gate fidelity", so it
serves as the compile-time proxy).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CompressionError
from repro.compression.codecs import resolve_codec, resolve_codec_arg
from repro.compression.pipeline import (
    CompressionResult,
    VariantLike,
    compress_waveform,
)
from repro.pulses.waveform import Waveform

__all__ = ["fidelity_aware_compress", "DEFAULT_TARGET_MSE"]

#: Paper Fig 7(c): per-waveform MSE sits between 1e-7 and 5e-6; a 1e-6
#: target keeps every gate comfortably inside the "negligible" band.
DEFAULT_TARGET_MSE = 1e-6

#: Algorithm 1 gives up below this threshold ("if threshold < 1e-6
#: return -1"); our coefficients are integers so the floor is 1 code.
_MIN_THRESHOLD = 1.0


def fidelity_aware_compress(
    waveform: Waveform,
    target_mse: float = DEFAULT_TARGET_MSE,
    window_size: int = 16,
    codec: Optional[VariantLike] = None,
    initial_threshold: Optional[float] = None,
    *,
    variant: Optional[VariantLike] = None,
) -> CompressionResult:
    """Compress ``waveform`` with the largest threshold meeting the target.

    Mirrors Algorithm 1: compress, measure MSE against the original,
    halve the threshold until ``mse <= target_mse``.  Starting from an
    aggressive threshold maximizes compression subject to the fidelity
    target.

    Args:
        waveform: Pulse to compress.
        target_mse: The ε of Algorithm 1.
        window_size: Codec window size.
        codec: Codec to search over -- a registry name or a
            :class:`~repro.compression.codecs.Codec` object
            (int-DCT-W in the paper, the default).
        initial_threshold: Starting threshold in coefficient codes;
            defaults to 1/8 of full scale.
        variant: Deprecated alias for ``codec``.

    Returns:
        The first (most compressed) result meeting the target.

    Raises:
        CompressionError: If even the minimum threshold cannot meet the
            target (Algorithm 1's "no solution found").
    """
    if target_mse <= 0:
        raise CompressionError(f"target MSE must be positive, got {target_mse}")
    codec = resolve_codec(resolve_codec_arg(codec, variant, default="int-DCT-W"))
    threshold = float(initial_threshold) if initial_threshold else 4096.0
    while threshold >= _MIN_THRESHOLD:
        result = compress_waveform(
            waveform, window_size=window_size, codec=codec, threshold=threshold
        )
        if result.mse <= target_mse:
            return result
        threshold /= 2
    # Thresholding disabled entirely: only transform/quantization error
    # remains.  If that still misses the target, there is no solution.
    result = compress_waveform(
        waveform, window_size=window_size, codec=codec, threshold=0.0
    )
    if result.mse <= target_mse:
        return result
    raise CompressionError(
        f"no threshold meets MSE target {target_mse:g} for {waveform.name!r} "
        f"(floor is {result.mse:g}); Algorithm 1 returns -1 here"
    )
