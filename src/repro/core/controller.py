"""End-to-end controller model (Fig 6's hardware half).

A :class:`QubitController` owns a device's compressed pulse library and
a decompression pipeline, and plays gates by streaming their compressed
waveforms cycle by cycle.  It is the integration point the examples and
the scalability benches drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.compression.packing import brams_per_stream_compaqt, pack_waveform
from repro.core.compiler import CompaqtCompiler, CompressedPulseLibrary
from repro.core.scalability import QICK_CLOCK_RATIO
from repro.devices.backend import DeviceModel
from repro.microarch.pipeline_sim import (
    BaselineStreamer,
    DecompressionPipeline,
    StreamReport,
)
from repro.pulses.waveform import Waveform

__all__ = ["QubitController"]


class QubitController:
    """A COMPAQT-equipped control slice for one device.

    Args:
        device: The device whose library is loaded.
        compiler: Compression configuration; defaults to int-DCT-W,
            WS=16, fixed threshold.
        clock_ratio: DAC-to-fabric clock ratio.
    """

    def __init__(
        self,
        device: DeviceModel,
        compiler: Optional[CompaqtCompiler] = None,
        clock_ratio: int = QICK_CLOCK_RATIO,
    ) -> None:
        self.device = device
        self.compiler = compiler or CompaqtCompiler()
        self.clock_ratio = clock_ratio
        self.library: CompressedPulseLibrary = self.compiler.compile_library(
            device.pulse_library()
        )
        self.pipeline = DecompressionPipeline(clock_ratio)
        self._baseline = BaselineStreamer(clock_ratio)

    # -- playback -------------------------------------------------------------

    def play(self, gate: str, qubits: Tuple[int, ...]) -> StreamReport:
        """Stream one gate's waveform through the decompression pipeline."""
        result = self.library.result(gate, tuple(qubits))
        return self.pipeline.stream(result.compressed)

    def play_uncompressed(self, gate: str, qubits: Tuple[int, ...]) -> StreamReport:
        """Stream the same gate from uncompressed memory (baseline)."""
        waveform = self.device.pulse_library().waveform(gate, tuple(qubits))
        i_codes, q_codes = waveform.to_fixed_point()
        return self._baseline.stream(
            i_codes.astype(np.int64), q_codes.astype(np.int64), name=waveform.name
        )

    def played_waveform(self, gate: str, qubits: Tuple[int, ...]) -> Waveform:
        """The waveform the qubit actually sees (decompressed)."""
        return self.library.waveform(gate, tuple(qubits))

    # -- scalability summary ----------------------------------------------------

    @property
    def brams_per_stream(self) -> int:
        """BRAM banks per waveform stream with this configuration."""
        return brams_per_stream_compaqt(
            self.clock_ratio,
            self.compiler.window_size,
            self.library.worst_case_window_words,
        )

    @property
    def bandwidth_gain(self) -> float:
        """Effective memory-bandwidth multiplier vs the baseline."""
        return self.clock_ratio / self.brams_per_stream

    def bank_layouts(self) -> Dict[Tuple[str, Tuple[int, ...]], "object"]:
        """Bank placement of every compressed waveform (Fig 12)."""
        return {
            key: pack_waveform(result.compressed, self.clock_ratio)
            for key, result in self.library
        }
