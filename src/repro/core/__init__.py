"""COMPAQT core: compiler, fidelity-aware and adaptive compression,
controller and scalability models."""

from repro.core.compiler import (
    CompaqtCompiler,
    CompressedPulseLibrary,
    GateCompressionStats,
)
from repro.core.fidelity_aware import fidelity_aware_compress, DEFAULT_TARGET_MSE
from repro.core.adaptive import (
    adaptive_compress,
    recalibration_updates,
    AdaptiveCompressionResult,
    DriftModel,
    RepeatSegment,
    WindowSegment,
)
from repro.core.scalability import (
    RfsocModel,
    QICK_CLOCK_RATIO,
    QICK_BASELINE_QUBITS,
    qubit_gain,
    qubits_supported,
    logical_qubits_supported,
)
from repro.core.controller import QubitController

__all__ = [
    "CompaqtCompiler",
    "CompressedPulseLibrary",
    "GateCompressionStats",
    "fidelity_aware_compress",
    "DEFAULT_TARGET_MSE",
    "adaptive_compress",
    "recalibration_updates",
    "AdaptiveCompressionResult",
    "DriftModel",
    "RepeatSegment",
    "WindowSegment",
    "RfsocModel",
    "QICK_CLOCK_RATIO",
    "QICK_BASELINE_QUBITS",
    "qubit_gain",
    "qubits_supported",
    "logical_qubits_supported",
    "QubitController",
]
