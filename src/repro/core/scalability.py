"""Controller scalability models (Fig 5d, Table V, Fig 17b, Section V-C).

Two constraints bound how many qubits one RFSoC can drive:

- **capacity**: total on-chip memory / per-qubit waveform footprint;
- **bandwidth**: every concurrently driven qubit needs a dedicated set of
  interleaved BRAMs to match the DAC rate.

The bandwidth constraint binds first (Fig 5d's 5x drop).  COMPAQT's
decompression engine divides the per-stream BRAM count by the
compression gain, which multiplies the supportable qubit count
(Table V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.compression.packing import (
    brams_per_stream_compaqt,
    brams_per_stream_uncompressed,
)

__all__ = [
    "RfsocModel",
    "QICK_CLOCK_RATIO",
    "QICK_BASELINE_QUBITS",
    "qubit_gain",
    "qubits_supported",
    "logical_qubits_supported",
]

#: QICK's DAC runs 16x faster than the FPGA fabric (Section III-A).
QICK_CLOCK_RATIO = 16

#: "The ratio between the DAC and FPGA was 16x in QICK due to which it
#: can theoretically support about 36 qubits."
QICK_BASELINE_QUBITS = 36


@dataclass(frozen=True)
class RfsocModel:
    """Resource model of one RFSoC control board.

    Defaults reproduce the paper's reference lines: 7.56 MB of on-chip
    memory (BRAM + URAM, Fig 5a) and 866 GB/s of peak internal memory
    bandwidth (Fig 5b, footnote 1: 1260 BRAMs at the fabric clock).

    Attributes:
        n_brams: Block RAM + UltraRAM count treated uniformly.
        bram_port_bits: Effective read-port width per block.
        fabric_clock_hz: FPGA fabric clock.
        capacity_bytes: Total on-chip waveform storage.
        dac_rate_hz: On-chip DAC sampling rate (6 GS/s parts).
        dac_sample_bits: Bits per DAC sample (I+Q stream).
        streams_per_qubit: Concurrent waveform streams per driven qubit
            (1: drive and readout share, since they never overlap on a
            single qubit).
    """

    n_brams: int = 1260
    bram_port_bits: int = 18
    fabric_clock_hz: float = 0.305e9
    capacity_bytes: float = 7.56e6
    dac_rate_hz: float = 6.0e9
    dac_sample_bits: int = 32
    streams_per_qubit: int = 1

    @property
    def internal_bandwidth_bytes(self) -> float:
        """Peak BRAM read bandwidth (Fig 5b's 866 GB/s line)."""
        return self.n_brams * self.bram_port_bits * self.fabric_clock_hz / 8

    @property
    def per_qubit_bandwidth_bytes(self) -> float:
        """Waveform bandwidth to drive one qubit concurrently (one
        6 GS/s x 32-bit I+Q stream = 24 GB/s)."""
        return self.dac_rate_hz * self.dac_sample_bits / 8 * self.streams_per_qubit

    def max_qubits_capacity(self, bytes_per_qubit: float) -> int:
        """Qubits supportable if only capacity mattered (Fig 5d left)."""
        if bytes_per_qubit <= 0:
            raise ReproError(f"bytes_per_qubit must be positive, got {bytes_per_qubit}")
        return int(self.capacity_bytes // bytes_per_qubit)

    def max_qubits_bandwidth(self) -> int:
        """Qubits supportable under the bandwidth wall (Fig 5d right)."""
        return int(self.internal_bandwidth_bytes // self.per_qubit_bandwidth_bytes)


def qubit_gain(
    window_size: int,
    clock_ratio: int = QICK_CLOCK_RATIO,
    worst_case_words: int = 3,
) -> float:
    """Qubit-count multiplier of COMPAQT over the uncompressed baseline.

    The gain is the BRAM-per-stream reduction (Table V):

    - WS=16, 3 words: 16 / 3 = 5.33x
    - WS=8,  3 words: 16 / 6 = 2.66x

    and it holds whenever ``clock_ratio`` is a multiple of the window
    size (Section V-C).
    """
    baseline = brams_per_stream_uncompressed(clock_ratio)
    compressed = brams_per_stream_compaqt(clock_ratio, window_size, worst_case_words)
    return baseline / compressed


def qubits_supported(
    window_size: int = 0,
    clock_ratio: int = QICK_CLOCK_RATIO,
    worst_case_words: int = 3,
    baseline_qubits: int = QICK_BASELINE_QUBITS,
) -> int:
    """Concurrent qubits a QICK-class controller can drive.

    ``window_size=0`` selects the uncompressed baseline.  With the QICK
    anchor of 36 qubits: WS=8 -> 95, WS=16 -> 191 (Section V-C).
    """
    if window_size == 0:
        return baseline_qubits
    gain = qubit_gain(window_size, clock_ratio, worst_case_words)
    return int(baseline_qubits * gain)


def logical_qubits_supported(
    physical_per_logical: int,
    window_size: int = 0,
    clock_ratio: int = QICK_CLOCK_RATIO,
    worst_case_words: int = 3,
    baseline_qubits: int = QICK_BASELINE_QUBITS,
) -> int:
    """Surface-code logical qubits per controller (Fig 17b).

    Args:
        physical_per_logical: Patch size, e.g. 17 (rotated d=3) or 25.
        window_size: 0 for uncompressed, else the COMPAQT window.
    """
    if physical_per_logical < 1:
        raise ReproError(
            f"patch size must be >= 1 qubit, got {physical_per_logical}"
        )
    physical = qubits_supported(
        window_size, clock_ratio, worst_case_words, baseline_qubits
    )
    return physical // physical_per_logical
