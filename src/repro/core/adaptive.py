"""Adaptive compression for flat-top waveforms (Section V-D, Fig 13).

Flat-top (GaussianSquare) pulses dominate two-qubit gates and readout.
Their plateau repeats one sample value for hundreds of samples; adaptive
compression encodes the whole plateau as a *single repeat codeword* that
the hardware feeds straight to the DAC buffer, bypassing both the memory
(no further reads) and the IDCT engine -- the extra power win of Fig 19.

The rise and fall ramps are compressed with the normal windowed pipeline.
Plateau boundaries are aligned to window edges so the ramp segments stay
whole windows.

This module also hosts the **drift / recalibration** model
(:class:`DriftModel`, :func:`recalibration_updates`): the seeded
amplitude-and-phase wander that makes a calibrated pulse library go
stale, and the selector for which pulses have drifted far enough to be
recompiled and republished through the writable store
(``examples/recalibration_loop.py`` drives the full loop).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs import resolve_codec, resolve_codec_arg
from repro.compression.metrics import mean_squared_error
from repro.compression.pipeline import (
    CompressedChannel,
    VariantLike,
    compress_channel,
    decompress_channel,
)
from repro.pulses.waveform import Waveform
from repro.transforms.rle import TAG_REPEAT, MemoryWord

__all__ = [
    "RepeatSegment",
    "WindowSegment",
    "AdaptiveCompressionResult",
    "adaptive_compress",
    "DriftModel",
    "recalibration_updates",
]


@dataclass(frozen=True)
class RepeatSegment:
    """A plateau encoded as one repeat codeword per channel.

    Attributes:
        i_value / q_value: The repeated I and Q sample codes.
        count: Plateau length in samples.
    """

    i_value: int
    q_value: int
    count: int

    @property
    def n_words(self) -> int:
        """One packed repeat codeword per channel."""
        return 1

    def to_words(self) -> List[MemoryWord]:
        return [
            MemoryWord(TAG_REPEAT, self.count, self.i_value),
            MemoryWord(TAG_REPEAT, self.count, self.q_value),
        ]


@dataclass(frozen=True)
class WindowSegment:
    """A ramp region compressed with the regular windowed pipeline."""

    i_channel: CompressedChannel
    q_channel: CompressedChannel

    @property
    def n_samples(self) -> int:
        return self.i_channel.original_length

    @property
    def stored_words(self) -> int:
        """Per-channel worst-case-uniform words (RFSoC accounting)."""
        width = max(self.i_channel.worst_case_words, self.q_channel.worst_case_words)
        return self.i_channel.n_windows * width


Segment = Union[RepeatSegment, WindowSegment]


@dataclass(frozen=True)
class AdaptiveCompressionResult:
    """Adaptive-compressed waveform: ramp windows + plateau repeats."""

    name: str
    dt: float
    segments: Tuple[Segment, ...]
    original: Waveform
    reconstructed: Waveform
    mse: float

    @property
    def stored_words(self) -> int:
        """Per-channel stored words across all segments."""
        return sum(s.stored_words if isinstance(s, WindowSegment) else s.n_words
                   for s in self.segments)

    @property
    def compression_ratio(self) -> float:
        return self.original.n_samples / max(1, self.stored_words)

    @property
    def idct_windows(self) -> int:
        """Windows that must flow through the IDCT engine at playback."""
        return sum(
            s.i_channel.n_windows for s in self.segments if isinstance(s, WindowSegment)
        )

    @property
    def bypass_samples(self) -> int:
        """Samples produced with the IDCT engine (and memory) idle."""
        return sum(s.count for s in self.segments if isinstance(s, RepeatSegment))

    @property
    def bypass_fraction(self) -> float:
        """Fraction of playback time spent in the low-power bypass."""
        return self.bypass_samples / self.original.n_samples


@dataclass(frozen=True)
class DriftModel:
    """Seeded amplitude/phase drift of a calibrated pulse library.

    Real control electronics wander: mixer gain and LO phase drift with
    temperature, so a pulse that was calibrated at step 0 slowly stops
    matching the device.  This model is the deterministic stand-in --
    each ``(waveform, step)`` pair maps to one drifted envelope, with
    the wander growing like a random walk (``sqrt(step)``) so later
    steps have drifted further.

    Attributes:
        seed: Root of every draw; two models with the same seed drift a
            library identically.
        amplitude_sigma: Per-step relative gain wander (std dev).
        phase_sigma: Per-step phase wander in radians (std dev).
    """

    seed: int = 0
    amplitude_sigma: float = 0.01
    phase_sigma: float = 0.005

    def __post_init__(self) -> None:
        if self.amplitude_sigma < 0 or self.phase_sigma < 0:
            raise CompressionError(
                "drift sigmas must be >= 0, got "
                f"amplitude={self.amplitude_sigma} phase={self.phase_sigma}"
            )

    def _rng(self, waveform: Waveform, step: int) -> random.Random:
        tag = zlib.crc32(waveform.name.encode("utf-8"))
        return random.Random((self.seed << 40) ^ (step << 20) ^ tag)

    def drifted(self, waveform: Waveform, step: int) -> Waveform:
        """The envelope ``waveform`` has wandered to by drift step ``step``.

        Step 0 is the calibrated original.  The drifted envelope is the
        original rotated by a phase error and scaled by a gain error,
        both drawn per ``(seed, waveform.name, step)``; a gain above
        full scale is clamped back to peak 1.0 the way the DAC would.
        """
        if step < 0:
            raise CompressionError(f"drift step must be >= 0, got {step}")
        if step == 0:
            return waveform
        rng = self._rng(waveform, step)
        scale = np.sqrt(step)
        gain = 1.0 + rng.gauss(0.0, self.amplitude_sigma) * scale
        phase = rng.gauss(0.0, self.phase_sigma) * scale
        samples = waveform.samples * (gain * np.exp(1j * phase))
        peak = float(np.max(np.abs(samples)))
        if peak > 1.0:
            samples = samples / peak
        return waveform.with_samples(samples)

    def drift_mse(self, waveform: Waveform, step: int) -> float:
        """MSE between the calibrated envelope and its drift at ``step``."""
        return float(
            mean_squared_error(
                waveform.samples, self.drifted(waveform, step).samples
            )
        )


def recalibration_updates(
    waveforms: Iterable[Waveform],
    model: DriftModel,
    step: int,
    mse_budget: float = 1e-6,
) -> List[Waveform]:
    """The pulses that need recompiling at drift step ``step``.

    Returns the *drifted* envelopes of every waveform whose drift MSE
    exceeds ``mse_budget`` -- exactly the set a control stack should
    recompile and republish through
    :class:`~repro.store.StoreWriter`, leaving the still-in-budget
    pulses untouched (and their cache entries valid).
    """
    if mse_budget < 0:
        raise CompressionError(f"mse_budget must be >= 0, got {mse_budget}")
    updates: List[Waveform] = []
    for waveform in waveforms:
        drifted = model.drifted(waveform, step)
        if mean_squared_error(waveform.samples, drifted.samples) > mse_budget:
            updates.append(drifted)
    return updates


def adaptive_compress(
    waveform: Waveform,
    window_size: int = 16,
    codec: Optional[VariantLike] = None,
    threshold: float = 128,
    min_plateau_windows: int = 2,
    *,
    variant: Optional[VariantLike] = None,
) -> AdaptiveCompressionResult:
    """Compress a (possibly flat-top) waveform with plateau bypass.

    The longest run of constant (I, Q) codes that is at least
    ``min_plateau_windows`` windows long becomes a repeat segment; the
    remainder goes through the regular windowed pipeline.  Waveforms
    without a long plateau degrade gracefully to one window segment.

    Args:
        waveform: Pulse to compress (flat-top pulses benefit most).
        window_size: Codec window for the ramp segments.
        codec: Codec (registry name or object) for the ramp segments;
            must be a windowed codec.  Defaults to ``"int-DCT-W"``.
        threshold: Hard threshold for the ramp segments.
        min_plateau_windows: Minimum plateau length, in windows, worth a
            repeat codeword.
        variant: Deprecated alias for ``codec``.
    """
    if min_plateau_windows < 1:
        raise CompressionError(
            f"min_plateau_windows must be >= 1, got {min_plateau_windows}"
        )
    codec = resolve_codec(resolve_codec_arg(codec, variant, default="int-DCT-W"))
    if not codec.windowed:
        raise CompressionError(
            f"adaptive compression needs a windowed codec, got {codec.name!r}"
        )
    i_codes, q_codes = waveform.to_fixed_point()
    plateau = _find_plateau(
        i_codes, q_codes, window_size, min_plateau_windows * window_size
    )
    segments: List[Segment] = []
    if plateau is None:
        segments.append(_window_segment(i_codes, q_codes, window_size, codec, threshold))
    else:
        start, stop = plateau
        if start > 0:
            segments.append(
                _window_segment(
                    i_codes[:start], q_codes[:start], window_size, codec, threshold
                )
            )
        segments.append(
            RepeatSegment(
                i_value=int(i_codes[start]),
                q_value=int(q_codes[start]),
                count=stop - start,
            )
        )
        if stop < i_codes.size:
            segments.append(
                _window_segment(
                    i_codes[stop:], q_codes[stop:], window_size, codec, threshold
                )
            )
    reconstructed = _reconstruct(segments, waveform)
    return AdaptiveCompressionResult(
        name=waveform.name,
        dt=waveform.dt,
        segments=tuple(segments),
        original=waveform,
        reconstructed=reconstructed,
        mse=mean_squared_error(waveform.samples, reconstructed.samples),
    )


def _find_plateau(
    i_codes: np.ndarray, q_codes: np.ndarray, window_size: int, min_len: int
) -> Optional[Tuple[int, int]]:
    """Longest window-aligned constant run of (I, Q), or None."""
    n = i_codes.size
    constant = np.flatnonzero(
        (np.diff(i_codes.astype(np.int64)) != 0)
        | (np.diff(q_codes.astype(np.int64)) != 0)
    )
    boundaries = [0] + (constant + 1).tolist() + [n]
    best: Optional[Tuple[int, int]] = None
    for run_start, run_stop in zip(boundaries, boundaries[1:]):
        # Align inward to window edges so ramps remain whole windows.
        start = -(-run_start // window_size) * window_size
        stop = (run_stop // window_size) * window_size
        if stop - start < max(min_len, 1):
            continue
        if best is None or (stop - start) > (best[1] - best[0]):
            best = (start, stop)
    return best


def _window_segment(
    i_codes: np.ndarray,
    q_codes: np.ndarray,
    window_size: int,
    codec: VariantLike,
    threshold: float,
) -> WindowSegment:
    return WindowSegment(
        i_channel=compress_channel(i_codes, window_size, codec, threshold),
        q_channel=compress_channel(q_codes, window_size, codec, threshold),
    )


def _reconstruct(segments: List[Segment], original: Waveform) -> Waveform:
    i_parts: List[np.ndarray] = []
    q_parts: List[np.ndarray] = []
    for segment in segments:
        if isinstance(segment, RepeatSegment):
            i_parts.append(np.full(segment.count, segment.i_value, dtype=np.int64))
            q_parts.append(np.full(segment.count, segment.q_value, dtype=np.int64))
        else:
            i_parts.append(decompress_channel(segment.i_channel))
            q_parts.append(decompress_channel(segment.q_channel))
    i_codes = np.concatenate(i_parts)
    q_codes = np.concatenate(q_parts)
    if i_codes.size != original.n_samples:
        raise CompressionError(
            f"adaptive reconstruction length {i_codes.size} != {original.n_samples}"
        )
    return Waveform.from_fixed_point(
        np.clip(i_codes, -32768, 32767).astype(np.int16),
        np.clip(q_codes, -32768, 32767).astype(np.int16),
        dt=original.dt,
        name=f"{original.name}~adaptive",
        gate=original.gate,
        qubits=original.qubits,
    )
