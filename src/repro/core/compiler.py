"""The COMPAQT compiler module (Fig 6's software half).

At the end of every calibration cycle the compiler walks the device's
pulse library, compresses each waveform (optionally with the
fidelity-aware threshold search of Algorithm 1), and emits a
:class:`CompressedPulseLibrary` -- the image that gets loaded into the
controller's compressed waveform memory.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import CompressionError, DeviceError
from repro.compression.batch import compress_batch, decompress_batch
from repro.compression.codecs import resolve_codec, resolve_codec_arg
from repro.compression.bitstream import (
    LibraryBitstream,
    LibraryEntry,
    parse_library,
    serialize_library,
)
from repro.compression.pipeline import (
    CompressionResult,
    VariantLike,
    DEFAULT_THRESHOLD,
    compress_waveform,
)
from repro.core.fidelity_aware import DEFAULT_TARGET_MSE, fidelity_aware_compress
from repro.pulses.library import PulseLibrary
from repro.pulses.waveform import Waveform

__all__ = ["CompaqtCompiler", "CompressedPulseLibrary", "GateCompressionStats"]

_Key = Tuple[str, Tuple[int, ...]]


@dataclass(frozen=True)
class GateCompressionStats:
    """Aggregate compression statistics for one gate type."""

    gate: str
    count: int
    min_ratio: float
    max_ratio: float
    mean_ratio: float
    mean_mse: float


@dataclass
class CompressedPulseLibrary:
    """The compressed waveform-memory image for one device.

    Produced by :class:`CompaqtCompiler`; consumed by the controller
    model and the microarchitecture simulator.
    """

    device_name: str
    window_size: int
    variant: str
    _entries: Dict[_Key, CompressionResult] = field(default_factory=dict)

    def add(self, key: _Key, result: CompressionResult) -> None:
        self._entries[(key[0], tuple(key[1]))] = result

    def result(self, gate: str, qubits: Tuple[int, ...]) -> CompressionResult:
        try:
            return self._entries[(gate, tuple(qubits))]
        except KeyError:
            raise DeviceError(
                f"no compressed waveform for {gate!r} on {tuple(qubits)}"
            ) from None

    def waveform(self, gate: str, qubits: Tuple[int, ...]) -> Waveform:
        """The decompressed (as-played) waveform for a gate."""
        return self.result(gate, qubits).reconstructed

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[_Key, CompressionResult]]:
        return iter(self._entries.items())

    def keys(self) -> List[_Key]:
        return list(self._entries.keys())

    # -- aggregate metrics ---------------------------------------------------

    @property
    def ratios(self) -> np.ndarray:
        """Per-waveform uniform-packing compression ratios."""
        return np.array([r.compression_ratio for _k, r in self], dtype=float)

    @property
    def overall_ratio(self) -> float:
        """Library-level R: total old size / total new size (Fig 7b)."""
        original = sum(r.compressed.original_samples for _k, r in self)
        stored = sum(r.compressed.stored_words("uniform") for _k, r in self)
        if stored == 0:
            raise CompressionError("empty compressed library")
        return original / stored

    @property
    def overall_ratio_variable(self) -> float:
        """Library-level R under variable (ASIC) packing."""
        original = sum(r.compressed.original_samples for _k, r in self)
        stored = sum(r.compressed.stored_words("variable") for _k, r in self)
        return original / max(1, stored)

    @property
    def mean_mse(self) -> float:
        return float(np.mean([r.mse for _k, r in self]))

    @property
    def max_mse(self) -> float:
        return float(np.max([r.mse for _k, r in self]))

    @property
    def worst_case_window_words(self) -> int:
        """Worst per-window occupancy across the library (Fig 11's cap)."""
        return max(r.compressed.worst_case_window_words for _k, r in self)

    def gate_stats(self, gate: str) -> GateCompressionStats:
        ratios = [
            r.compression_ratio for (g, _q), r in self if g == gate
        ]
        mses = [r.mse for (g, _q), r in self if g == gate]
        if not ratios:
            raise DeviceError(f"no compressed waveforms for gate {gate!r}")
        return GateCompressionStats(
            gate=gate,
            count=len(ratios),
            min_ratio=min(ratios),
            max_ratio=max(ratios),
            mean_ratio=float(np.mean(ratios)),
            mean_mse=float(np.mean(mses)),
        )

    # -- wire-format persistence ---------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the library image to its canonical bitstream.

        The bytes carry everything the runtime needs -- the tagged-word
        window streams plus per-entry bindings, MSE and threshold -- so
        a compiled library can be persisted and shipped to a controller
        (or :mod:`repro.microarch.pipeline_sim`) without Python objects.
        """
        entries = tuple(
            LibraryEntry(
                gate=gate,
                qubits=qubits,
                mse=result.mse,
                threshold=result.threshold,
                compressed=result.compressed,
            )
            for (gate, qubits), result in self
        )
        return serialize_library(
            LibraryBitstream(
                device_name=self.device_name,
                window_size=self.window_size,
                variant=self.variant,
                entries=entries,
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompressedPulseLibrary":
        """Rebuild a library from its bitstream.

        The compressed streams round-trip losslessly; the as-played
        waveforms are regenerated through the batched decode engine,
        which is bit-identical to the scalar decompressor, so a loaded
        library is interchangeable with a freshly compiled one.
        """
        parsed = parse_library(data)
        library = cls(
            device_name=parsed.device_name,
            window_size=parsed.window_size,
            variant=parsed.variant,
        )
        if parsed.entries:
            reconstructed = decompress_batch(
                [entry.compressed for entry in parsed.entries]
            )
            for entry, waveform in zip(parsed.entries, reconstructed):
                library.add(
                    (entry.gate, entry.qubits),
                    CompressionResult(
                        compressed=entry.compressed,
                        reconstructed=waveform,
                        mse=entry.mse,
                        threshold=entry.threshold,
                    ),
                )
        return library

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the bitstream to disk; returns the resolved path."""
        out = pathlib.Path(path)
        out.write_bytes(self.to_bytes())
        return out.resolve()

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "CompressedPulseLibrary":
        """Read a library bitstream back from disk."""
        return cls.from_bytes(pathlib.Path(path).read_bytes())

    def qubit_gate_ratio(self, gate: str, qubit: int) -> float:
        """Mean ratio of ``gate`` pulses touching ``qubit`` (Fig 14 bars).

        For two-qubit gates this averages over every directed pair the
        qubit participates in, matching the paper's per-qubit CNOT bars.
        """
        ratios = [
            r.compression_ratio
            for (g, qubits), r in self
            if g == gate and qubit in qubits
        ]
        if not ratios:
            raise DeviceError(f"qubit {qubit} has no {gate!r} waveforms")
        return float(np.mean(ratios))


class CompaqtCompiler:
    """Compile-time waveform compressor (one configuration, many pulses).

    Args:
        window_size: Codec window (8/16/32 for the DCT family; ignored
            by full-frame codecs such as DCT-N).
        codec: A registered codec name (``"int-DCT-W"``, ``"delta"``,
            ...) or a first-class
            :class:`~repro.compression.codecs.Codec` object; defaults
            to ``"int-DCT-W"``.
        threshold: Fixed hard threshold (coefficient codes) when
            fidelity-aware search is off.
        fidelity_aware: Enable Algorithm 1's per-pulse threshold search.
        target_mse: Algorithm 1's ε.
        batched: Compress whole libraries through the vectorized batch
            engine (one matmul per library instead of one per window).
            Bit-identical to the scalar path; set False to force the
            per-window reference implementation.
        variant: Deprecated alias for ``codec``.

    Attributes:
        codec: The resolved :class:`~repro.compression.codecs.Codec`.
        variant: Its canonical name (kept for library metadata and
            back-compat with the string API).
    """

    def __init__(
        self,
        window_size: int = 16,
        codec: Optional[VariantLike] = None,
        threshold: float = DEFAULT_THRESHOLD,
        fidelity_aware: bool = False,
        target_mse: float = DEFAULT_TARGET_MSE,
        max_coefficients: int = 0,
        batched: bool = True,
        *,
        variant: Optional[VariantLike] = None,
    ) -> None:
        self.window_size = window_size
        self.codec = resolve_codec(
            resolve_codec_arg(codec, variant, default="int-DCT-W")
        )
        self.variant = self.codec.name
        self.threshold = threshold
        self.fidelity_aware = fidelity_aware
        self.target_mse = target_mse
        self.max_coefficients = max_coefficients
        self.batched = batched

    def compile_waveform(self, waveform: Waveform) -> CompressionResult:
        """Compress a single pulse under this configuration."""
        if self.fidelity_aware:
            return fidelity_aware_compress(
                waveform,
                target_mse=self.target_mse,
                window_size=self.window_size,
                codec=self.codec,
            )
        return compress_waveform(
            waveform,
            window_size=self.window_size,
            codec=self.codec,
            threshold=self.threshold,
            max_coefficients=self.max_coefficients,
        )

    def compile_library(self, library: PulseLibrary) -> CompressedPulseLibrary:
        """Compress every entry of a device's pulse library.

        The default path stacks the whole library into one window matrix
        and compresses it in a single vectorized pass (see
        :func:`repro.compression.batch.compress_batch`); fidelity-aware
        mode needs a per-pulse threshold search and stays scalar.
        """
        if len(library) == 0:
            raise CompressionError("cannot compile an empty pulse library")
        compressed = CompressedPulseLibrary(
            device_name=library.device_name,
            window_size=self.window_size,
            variant=self.variant,
        )
        keys = library.keys()
        if self.batched and not self.fidelity_aware:
            batch = compress_batch(
                [library.waveform(*key) for key in keys],
                window_size=self.window_size,
                codec=self.codec,
                threshold=self.threshold,
                max_coefficients=self.max_coefficients,
            )
            for key, result in zip(keys, batch):
                compressed.add(key, result)
        else:
            for key in keys:
                compressed.add(key, self.compile_waveform(library.waveform(*key)))
        return compressed

    def save_library(
        self,
        compiled: CompressedPulseLibrary,
        path: Union[str, pathlib.Path],
    ) -> pathlib.Path:
        """Persist a compiled library as a wire-format bitstream."""
        return compiled.save(path)

    @staticmethod
    def load_library(path: Union[str, pathlib.Path]) -> CompressedPulseLibrary:
        """Load a previously saved library bitstream."""
        return CompressedPulseLibrary.load(path)

    def save_store(
        self,
        compiled: CompressedPulseLibrary,
        path: Union[str, pathlib.Path],
        n_shards: int = 4,
    ):
        """Persist a compiled library as a CQS1 sharded store directory.

        The sharded layout (see :mod:`repro.store`) is the serving-side
        twin of :meth:`save_library`: same compressed records, but split
        into hash-routed shard files with a byte-offset index so single
        pulses are demand-readable.  Returns the opened
        :class:`~repro.store.ShardedStore`.
        """
        from repro.store import save_store

        return save_store(compiled, path, n_shards=n_shards)

    @staticmethod
    def load_store(path: Union[str, pathlib.Path]):
        """Open a CQS1 store directory written by :meth:`save_store`."""
        from repro.store import open_store

        return open_store(path)
