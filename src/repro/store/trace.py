"""Request traces for the pulse-serving subsystem.

A trace is an ordered list of ``(gate, qubits)`` requests -- the
serving workload the controller would generate at gate-issue time.
``repro serve --requests trace.json`` replays a trace file, and the
serving benchmark synthesizes skewed traces so cache behaviour is
measured under realistic reuse (circuit workloads hammer a handful of
calibrated pulses and touch the rest rarely).

The JSON file format accepts, at the top level, either a plain array
or an object with a ``"requests"`` array.  Each request is either a
``[gate, [qubits...]]`` pair or a ``{"gate": ..., "qubits": [...]}``
object::

    [["x", [0]], ["cx", [0, 1]], {"gate": "measure", "qubits": [1]}]
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import StoreError
from repro.store.atomic import atomic_write
from repro.store.sharded import normalize_key

__all__ = ["load_trace", "write_trace", "synthetic_trace", "arrival_times"]

_Key = Tuple[str, Tuple[int, ...]]


def _parse_request(raw, position: int) -> _Key:
    if isinstance(raw, dict):
        try:
            gate, qubits = raw["gate"], raw["qubits"]
        except KeyError as exc:
            raise StoreError(
                f"trace request {position} is missing key {exc}"
            ) from None
    elif isinstance(raw, (list, tuple)) and len(raw) == 2:
        gate, qubits = raw
    else:
        raise StoreError(
            f"trace request {position} must be [gate, [qubits...]] or "
            f"{{'gate': ..., 'qubits': [...]}}, got {raw!r}"
        )
    if not isinstance(gate, str) or not gate:
        raise StoreError(f"trace request {position} has no gate name")
    if not isinstance(qubits, (list, tuple)):
        raise StoreError(f"trace request {position} qubits must be a list")
    try:
        return (gate, tuple(int(q) for q in qubits))
    except (TypeError, ValueError):
        raise StoreError(
            f"trace request {position} has non-integer qubits {qubits!r}"
        ) from None


def load_trace(path: Union[str, pathlib.Path]) -> List[_Key]:
    """Load a JSON request trace; malformed input raises StoreError."""
    trace_path = pathlib.Path(path)
    if not trace_path.is_file():
        raise StoreError(f"no trace file at {trace_path}")
    try:
        payload = json.loads(trace_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreError(f"corrupt trace file {trace_path}: {exc}") from None
    if isinstance(payload, dict):
        payload = payload.get("requests")
    if not isinstance(payload, list):
        raise StoreError(
            f"{trace_path} must hold a JSON array of requests "
            f"(or an object with a 'requests' array)"
        )
    return [_parse_request(raw, i) for i, raw in enumerate(payload)]


def write_trace(
    requests: Sequence[Tuple[str, Sequence[int]]],
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Write requests as a canonical JSON trace; returns the path."""
    rows = [
        [gate, [int(q) for q in qubits]] for gate, qubits in requests
    ]
    out = pathlib.Path(path)
    atomic_write(out, json.dumps({"requests": rows}, indent=0) + "\n")
    return out.resolve()


def synthetic_trace(
    keys: Sequence[Tuple[str, Sequence[int]]],
    n_requests: int,
    seed: int = 0,
    skew: float = 1.1,
) -> List[_Key]:
    """Synthesize a Zipf-skewed request trace over a store's keys.

    Keys are ranked in a seed-shuffled order and drawn with probability
    proportional to ``rank ** -skew`` -- a few hot pulses dominate, the
    tail appears occasionally, matching how circuit workloads reuse
    calibrated gates.  ``skew=0`` gives a uniform trace.

    Args:
        keys: The request population (e.g. ``store.keys()``).
        n_requests: Trace length (>= 1).
        seed: RNG seed; same inputs always yield the same trace.
        skew: Zipf exponent (>= 0).
    """
    population = [normalize_key(gate, qubits) for gate, qubits in keys]
    if not population:
        raise StoreError("cannot synthesize a trace over zero keys")
    if n_requests < 1:
        raise StoreError(f"n_requests must be >= 1, got {n_requests}")
    if skew < 0:
        raise StoreError(f"skew must be >= 0, got {skew}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(population))
    weights = np.arange(1, len(population) + 1, dtype=float) ** -skew
    weights /= weights.sum()
    draws = rng.choice(len(population), size=n_requests, p=weights)
    return [population[order[d]] for d in draws]


def arrival_times(
    n_requests: int,
    rate: float,
    seed: int = 0,
    process: str = "poisson",
) -> np.ndarray:
    """Open-loop request send times (seconds from start), sorted ascending.

    A closed-loop generator waits for each response before sending the
    next request, so it can never observe overload; an **open-loop**
    generator sends on a fixed schedule regardless of completions --
    the arrival process real traffic presents.  This returns that
    schedule for the network load generator.

    Args:
        n_requests: Number of arrivals (>= 1).
        rate: Mean arrival rate in requests/second (> 0).
        seed: RNG seed (``poisson`` process only).
        process: ``"poisson"`` (exponential inter-arrivals -- bursty,
            memoryless, the standard open-loop model) or ``"uniform"``
            (evenly spaced, a deterministic pacing schedule).
    """
    if n_requests < 1:
        raise StoreError(f"n_requests must be >= 1, got {n_requests}")
    if rate <= 0:
        raise StoreError(f"rate must be > 0, got {rate}")
    if process == "uniform":
        return np.arange(n_requests, dtype=float) / rate
    if process == "poisson":
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(scale=1.0 / rate, size=n_requests)
        times = np.cumsum(gaps)
        return times - times[0]
    raise StoreError(
        f"unknown arrival process {process!r} (expected 'poisson' or 'uniform')"
    )
