"""Instrumentation points for the concurrent store stack.

The chaos harness (:mod:`repro.chaos`) needs to *force* thread
interleavings that normal scheduling only produces rarely: a thread
preempted between its cache probe and the shard lock, two fills racing
an eviction, a drain racing an in-flight decode.  Rather than sprinkle
``time.sleep`` into tests, the serving layer exposes named **yield
points** around its lock acquisitions; a registered hook can sleep,
yield, block on an event, or count at each one.

With no hook registered (the default, and the production state) a
yield point is one global read and a ``None`` check -- measured noise
next to a record decode or an mmap read.

The hook is process-global on purpose: the whole point is to reach
code paths deep inside :class:`~repro.store.server.PulseServer` and
:class:`~repro.store.cache.PulseCache` without threading a parameter
through every layer.  Use :func:`preempt_hook` as a context manager so
a crashed harness never leaves the hook installed.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, Optional

__all__ = ["set_preempt_hook", "preempt", "preempt_hook"]

_PreemptHook = Callable[[str], None]

_hook: Optional[_PreemptHook] = None


def set_preempt_hook(hook: Optional[_PreemptHook]) -> Optional[_PreemptHook]:
    """Install (or clear, with ``None``) the global yield-point hook.

    Returns the previously installed hook so callers can restore it.
    """
    global _hook
    previous = _hook
    _hook = hook
    return previous


def preempt(point: str) -> None:
    """Run the installed hook (if any) at one named yield point.

    Called by the serving stack around lock acquisitions.  The hook
    must be thread-safe: yield points fire concurrently from server
    fill threads, cache fills, and the network tier's executor.
    """
    hook = _hook
    if hook is not None:
        hook(point)


@contextlib.contextmanager
def preempt_hook(hook: _PreemptHook) -> Iterator[_PreemptHook]:
    """Context manager: install ``hook``, always restore on exit."""
    previous = set_preempt_hook(hook)
    try:
        yield hook
    finally:
        set_preempt_hook(previous)
