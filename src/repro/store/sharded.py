"""The CQS1 sharded pulse store: on-disk layout, writer, and reader.

A compiled :class:`~repro.core.compiler.CompressedPulseLibrary` so far
persisted as one monolithic ``CQL1`` container that every consumer had
to parse -- and decode -- in full.  A serving system wants the opposite
read path (the paper's whole premise is that decompression happens at
gate-issue time, not at load time): keep the *compressed* image on
disk, fetch single pulse records on demand, and decode only what is
actually played.

A **CQS1 store** is a directory::

    mystore.cqs/
      manifest.json     the CQS1 manifest (see below)
      shard-0000.cql    a plain CQL1 library container
      shard-0001.cql
      ...

Each shard file is a complete, standalone ``CQL1`` container (parseable
by :func:`repro.compression.bitstream.parse_library`), holding the
entries whose channel key hashes to that shard:
``shard = crc32("gate|q0,q1") % n_shards``.  The hash is stable across
processes and platforms, so any client can route a request to its shard
without the manifest.

The manifest is JSON with a ``"magic": "CQS1"`` tag carrying the
library metadata (device, codec, window size), the shard file table,
and a **byte-offset index**: for every pulse, the shard it lives in and
the ``(offset, length)`` span of its embedded ``CQW1`` waveform record
(:class:`~repro.compression.bitstream.RecordSpan`).  Reading one pulse
is therefore a single seek-and-read plus
:func:`~repro.compression.bitstream.parse_waveform` -- no shard parse,
no decode of neighbours.

Everything that can be validated cheaply at open time is (magic,
version, shard files present with the recorded sizes, spans in range);
record reads re-validate through the total ``CQW1`` parser, so a
corrupt shard raises :class:`~repro.errors.StoreError` or
:class:`~repro.errors.CompressionError` instead of yielding garbage
samples.

**Read path.**  All shard reads go through a bounded mmap pool
(:class:`_MmapPool`): a shard file is opened and mapped once, record
spans are served as zero-copy memoryview slices of the mapping, and
the vectorized parse/decode engine (:mod:`repro.compression.fastpath`)
consumes those views directly -- no per-call ``open``/``seek``/``read``
and no intermediate byte copies on the cold-miss path.  ``close()`` (or
the context manager) releases every cached mapping deterministically;
a store remains usable after ``close`` -- the pool simply reopens on
the next read, which keeps shared-store setups (several servers over
one store) safe.
"""

from __future__ import annotations

import json
import mmap
import pathlib
import re
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import CompressionError, StoreError
from repro.obs import DEFAULT_SIZE_BOUNDS, default_registry
from repro.compression.bitstream import (
    LibraryBitstream,
    LibraryEntry,
    parse_library,
    parse_waveform,
    serialize_library_indexed,
)
from repro.compression.fastpath import decode_library_bytes, decode_records
from repro.compression.pipeline import CompressedWaveform
from repro.pulses.waveform import Waveform
from repro.store.atomic import atomic_write

__all__ = [
    "STORE_MAGIC",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC_V2",
    "STORE_FORMAT_VERSION_V2",
    "MANIFEST_NAME",
    "generation_manifest_name",
    "list_generation_manifests",
    "StoreRecord",
    "StoreHandle",
    "normalize_key",
    "ShardedStore",
    "shard_index",
    "save_store",
    "open_store",
]

STORE_MAGIC = "CQS1"
STORE_FORMAT_VERSION = 1
#: The writable, versioned store layer (see :mod:`repro.store.writable`):
#: a ``CQS2`` manifest adds a generation counter, per-record versions,
#: and tombstones on top of the ``CQS1`` layout.  Shard files are
#: unchanged ``CQL1`` containers either way.
STORE_MAGIC_V2 = "CQS2"
STORE_FORMAT_VERSION_V2 = 2
MANIFEST_NAME = "manifest.json"

_GEN_MANIFEST_RE = re.compile(r"^manifest-(\d{10})\.json$")


def generation_manifest_name(generation: int) -> str:
    """The manifest file name for one committed CQS2 generation."""
    if generation < 1:
        raise StoreError(f"generation must be >= 1, got {generation}")
    return f"manifest-{generation:010d}.json"


def list_generation_manifests(root: pathlib.Path) -> List[Tuple[int, pathlib.Path]]:
    """All CQS2 generation manifests under ``root``, newest first."""
    found = []
    for path in root.glob("manifest-*.json"):
        match = _GEN_MANIFEST_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return found

_Key = Tuple[str, Tuple[int, ...]]


def normalize_key(gate: str, qubits: Sequence[int]) -> _Key:
    """Canonical channel key: every layer of the store agrees on this."""
    return (gate, tuple(int(q) for q in qubits))


def shard_index(gate: str, qubits: Sequence[int], n_shards: int) -> int:
    """Stable shard assignment for one channel key.

    Uses CRC-32 over the canonical ``"gate|q0,q1"`` spelling so the
    mapping is identical across Python processes, platforms, and hash
    randomization -- a request router does not need the manifest to
    know where a pulse lives.
    """
    if n_shards < 1:
        raise StoreError(f"n_shards must be >= 1, got {n_shards}")
    gate, qubits = normalize_key(gate, qubits)
    key = f"{gate}|{','.join(str(q) for q in qubits)}".encode("utf-8")
    return zlib.crc32(key) % n_shards


@dataclass(frozen=True, slots=True)
class StoreRecord:
    """One manifest index row: where a pulse lives and its metadata.

    ``version`` is the record's logical version under the CQS2
    writable layer: 1 for every record of a freshly saved (CQS1)
    store, bumped on each re-put by :class:`repro.store.writable.StoreWriter`.
    Caches invalidate on ``(key, version)`` change at generation
    adoption.
    """

    gate: str
    qubits: Tuple[int, ...]
    shard: int
    offset: int
    length: int
    mse: float
    threshold: float
    version: int = 1


@dataclass(frozen=True)
class StoreHandle:
    """A picklable recipe for reopening a store in another process.

    A :class:`ShardedStore` itself cannot cross a process boundary (it
    owns mmap handles and locks), but opening one is cheap -- the
    manifest is the only eager read.  The handle carries just the store
    directory and the pool budget, so a decode worker
    (:class:`repro.serve_net.workers.DecodePool`) can be handed one
    through ``multiprocessing`` and open its *own* read-only view with
    its own :class:`_MmapPool`.
    """

    path: str
    max_open_shards: int = 8

    def open(self) -> "ShardedStore":
        """Open an independent read handle on the store directory."""
        return ShardedStore.open(self.path, self.max_open_shards)


def _shard_file_name(shard: int) -> str:
    return f"shard-{shard:04d}.cql"


def save_store(
    compiled,
    path: Union[str, pathlib.Path],
    n_shards: int = 4,
) -> "ShardedStore":
    """Write a compiled library as a CQS1 sharded store directory.

    Args:
        compiled: A :class:`~repro.core.compiler.CompressedPulseLibrary`.
        path: Store directory to create (conventionally ``*.cqs``).
            Created if missing; an existing manifest is overwritten.
        n_shards: Shard file count.  More shards mean smaller fetch
            units and more single-flight parallelism; empty shards are
            legal (they serialize as zero-entry containers).

    Returns:
        The opened :class:`ShardedStore` (reads go through the same
        code path every other client uses, so a just-written store is
        verified openable).
    """
    if n_shards < 1:
        raise StoreError(f"n_shards must be >= 1, got {n_shards}")
    if len(compiled) == 0:
        raise StoreError("cannot store an empty compressed library")
    out = pathlib.Path(path)
    out.mkdir(parents=True, exist_ok=True)

    by_shard: Dict[int, List[Tuple[_Key, object]]] = {
        shard: [] for shard in range(n_shards)
    }
    for (gate, qubits), result in compiled:
        key = normalize_key(gate, qubits)
        by_shard[shard_index(*key, n_shards)].append((key, result))

    shard_table: List[Dict] = []
    index: List[Dict] = []
    for shard in range(n_shards):
        entries = tuple(
            LibraryEntry(
                gate=key[0],
                qubits=key[1],
                mse=result.mse,
                threshold=result.threshold,
                compressed=result.compressed,
            )
            for key, result in by_shard[shard]
        )
        blob, spans = serialize_library_indexed(
            LibraryBitstream(
                device_name=compiled.device_name,
                window_size=compiled.window_size,
                variant=compiled.variant,
                entries=entries,
            )
        )
        file_name = _shard_file_name(shard)
        atomic_write(out / file_name, blob)
        shard_table.append(
            {"file": file_name, "n_entries": len(entries), "n_bytes": len(blob)}
        )
        for (key, result), span in zip(by_shard[shard], spans):
            index.append(
                {
                    "gate": key[0],
                    "qubits": list(key[1]),
                    "shard": shard,
                    "offset": span.offset,
                    "length": span.length,
                    "mse": result.mse,
                    "threshold": result.threshold,
                }
            )

    # Overwriting an existing store must not leave stale state behind
    # that would outrank or corrupt the fresh save: extra base shard
    # files from a wider layout, staged CQS2 shard files, *newer*
    # generation manifests (which open() would prefer over this save),
    # and orphaned publish temp files all go.
    live = {row["file"] for row in shard_table}
    for stale in out.glob("shard-[0-9][0-9][0-9][0-9].cql"):
        if stale.name not in live:
            stale.unlink()
    for stale in out.glob("shard-g*.cql"):
        stale.unlink()
    for _gen, stale in list_generation_manifests(out):
        stale.unlink()
    for orphan in out.glob("*.tmp-*"):
        orphan.unlink(missing_ok=True)

    manifest = {
        "magic": STORE_MAGIC,
        "format_version": STORE_FORMAT_VERSION,
        "device_name": compiled.device_name,
        "variant": compiled.variant,
        "window_size": compiled.window_size,
        "n_shards": n_shards,
        "n_entries": len(compiled),
        "shards": shard_table,
        "entries": index,
    }
    atomic_write(out / MANIFEST_NAME, json.dumps(manifest, indent=1) + "\n")
    return ShardedStore.open(out)


class _MmapPool:
    """Bounded, thread-safe pool of open shard mmaps.

    Replaces the old one-``open``-per-read pattern: each shard file is
    opened and memory-mapped at most once while resident, and record
    reads become zero-copy memoryview slices of the mapping.  At most
    ``max_open`` mappings stay resident (least-recently used shards are
    released first), so a thousand-shard store never holds a thousand
    file descriptors.

    ``close()`` drops every cached mapping.  A mapping whose buffer is
    still exported to a live view cannot be unmapped (Python raises
    ``BufferError``); the pool then simply drops its reference and the
    OS reclaims the mapping when the last view dies -- release is
    deterministic in the common case and never blocks or corrupts a
    concurrent reader.

    ``fault_hook`` is the chaos harness's low-level injection point
    (see :mod:`repro.chaos`): when set, it is called as
    ``hook("view", shard)`` on every read (outside the pool lock, so a
    slow-I/O hook delays only its own reader) and ``hook("map", shard)``
    right before a shard file is mapped -- an ``OSError`` raised there
    takes the exact same translation path as a real failed ``mmap`` and
    surfaces as a typed :class:`~repro.errors.StoreError`.  ``None``
    (the default) costs one attribute read per view.
    """

    def __init__(
        self,
        paths: Tuple[pathlib.Path, ...],
        max_open: int,
        fault_hook: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        if max_open < 1:
            raise StoreError(f"max_open_shards must be >= 1, got {max_open}")
        self._paths = paths
        self._max_open = max_open
        self._lock = threading.Lock()
        self._maps: "OrderedDict[int, mmap.mmap]" = OrderedDict()
        self._ever_mapped: set = set()
        self.fault_hook = fault_hook

    @staticmethod
    def _release(mapping: mmap.mmap) -> None:
        try:
            mapping.close()
        except BufferError:
            # A live view still borrows the buffer; dropping our
            # reference lets the OS reclaim it when the view dies.
            pass

    def view(self, shard: int) -> memoryview:
        """Zero-copy view over one whole shard file (mapped on demand)."""
        hook = self.fault_hook
        if hook is not None:
            hook("view", shard)
        with self._lock:
            mapping = self._maps.get(shard)
            if mapping is None:
                path = self._paths[shard]
                try:
                    if hook is not None:
                        hook("map", shard)
                    with path.open("rb") as handle:
                        # mmap dups the descriptor, so the handle can
                        # close immediately; the pool caps mappings,
                        # not transient opens.
                        mapping = mmap.mmap(
                            handle.fileno(), 0, access=mmap.ACCESS_READ
                        )
                except (OSError, ValueError) as exc:
                    raise StoreError(
                        f"cannot map shard file {path}: {exc}"
                    ) from None
                # Resolved at event time so a swapped default registry
                # (the overhead bench's disabled leg) takes effect;
                # mapping is rare, the lookup cost is noise.
                registry = default_registry()
                if shard in self._ever_mapped:
                    registry.counter("store.mmap_reopens").inc()
                else:
                    registry.counter("store.mmap_opens").inc()
                    self._ever_mapped.add(shard)
                self._maps[shard] = mapping
                while len(self._maps) > self._max_open:
                    _stale, old = self._maps.popitem(last=False)
                    self._release(old)
            else:
                self._maps.move_to_end(shard)
            return memoryview(mapping)

    @property
    def open_count(self) -> int:
        with self._lock:
            return len(self._maps)

    def close(self) -> None:
        with self._lock:
            maps, self._maps = list(self._maps.values()), OrderedDict()
        for mapping in maps:
            self._release(mapping)


class ShardedStore:
    """Read-side handle on a CQS1 store: lazy, offset-indexed access.

    Opening a store reads and validates only the manifest; pulse bytes
    stay on disk until :meth:`read_record` (one zero-copy mmap view per
    pulse) or :meth:`read_shard` / :meth:`load_library` (eager paths)
    ask for them.  The object is safe to share across threads; call
    :meth:`close` (or use the store as a context manager) to release
    the mmap pool deterministically -- reads after ``close`` reopen on
    demand.  See :class:`repro.store.PulseCache` and
    :class:`repro.store.PulseServer` for the decoded-cache and
    concurrent front ends.
    """

    def __init__(
        self,
        path: pathlib.Path,
        device_name: str,
        variant: str,
        window_size: int,
        n_shards: int,
        shard_files: Tuple[str, ...],
        index: Dict[_Key, StoreRecord],
        max_open_shards: int = 8,
        generation: int = 0,
        tombstones: Optional[Dict[_Key, int]] = None,
    ) -> None:
        self.path = path
        self.device_name = device_name
        self.variant = variant
        self.window_size = window_size
        # Hash-routing width (shard_index modulus).  A CQS2 store's
        # shard *table* can be wider: staged commit files append beyond
        # the base layout, so use ``shard_count`` to iterate files.
        self.n_shards = n_shards
        #: Committed CQS2 generation this handle is pinned to (0 for a
        #: plain CQS1 store).  The mmap pool below maps exactly this
        #: generation's files, so reads stay snapshot-consistent while
        #: a writer publishes newer generations into the directory.
        self.generation = generation
        #: Deleted keys -> the version at which they were deleted.
        self.tombstones: Dict[_Key, int] = dict(tombstones or {})
        self._shard_files = shard_files
        self._index = index
        self._pool = _MmapPool(
            tuple(path / name for name in shard_files),
            max_open=min(max_open_shards, max(1, len(shard_files))),
        )

    def handle(self) -> StoreHandle:
        """A picklable :class:`StoreHandle` for this store directory."""
        return StoreHandle(
            path=str(self.path), max_open_shards=self._pool._max_open
        )

    @property
    def io_fault_hook(self) -> Optional[Callable[[str, int], None]]:
        """The mmap pool's chaos injection hook (see :class:`_MmapPool`).

        Settable; :class:`repro.chaos.FaultyStore` installs its fault
        plan here to reach the map/read path without subclassing.
        """
        return self._pool.fault_hook

    @io_fault_hook.setter
    def io_fault_hook(self, hook: Optional[Callable[[str, int], None]]) -> None:
        self._pool.fault_hook = hook

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, pathlib.Path],
        max_open_shards: int = 8,
    ) -> "ShardedStore":
        """Open a store directory, validating its manifest and layout.

        Recovery-on-open: CQS2 generation manifests are tried newest
        first, falling back to the legacy ``manifest.json`` (generation
        0).  The first candidate that fully validates -- parse, magic,
        shard files present at the recorded sizes, spans in range --
        wins, so a crash that left a torn temp manifest or an orphaned
        staged shard reopens as the newest *committed* generation,
        never a hybrid.

        Args:
            path: The ``*.cqs`` store directory.
            max_open_shards: Upper bound on concurrently resident shard
                mmaps (the handle-pool budget).
        """
        root = pathlib.Path(path)
        candidates: List[Tuple[int, pathlib.Path]] = list_generation_manifests(root)
        legacy = root / MANIFEST_NAME
        if legacy.is_file() or not candidates:
            candidates.append((0, legacy))
        if not candidates[0][1].is_file() and len(candidates) == 1:
            raise StoreError(f"no CQS1 manifest at {legacy}")
        failures: List[str] = []
        for _generation, manifest_path in candidates:
            try:
                return cls._open_manifest(root, manifest_path, max_open_shards)
            except StoreError as exc:
                failures.append(f"{manifest_path.name}: {exc}")
        if len(failures) == 1:
            raise StoreError(failures[0].split(": ", 1)[1])
        raise StoreError(
            "no openable manifest generation in "
            f"{root}: " + "; ".join(failures)
        )

    @classmethod
    def _open_manifest(
        cls,
        root: pathlib.Path,
        manifest_path: pathlib.Path,
        max_open_shards: int,
    ) -> "ShardedStore":
        """Parse and fully validate one manifest candidate (CQS1 or CQS2)."""
        if not manifest_path.is_file():
            raise StoreError(f"no CQS1 manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreError(f"corrupt CQS1 manifest: {exc}") from None
        if not isinstance(manifest, dict):
            raise StoreError(f"{manifest_path} is not a CQS1 manifest (bad magic)")
        magic = manifest.get("magic")
        if magic == STORE_MAGIC_V2:
            return cls._open_v2(root, manifest_path, manifest, max_open_shards)
        if magic != STORE_MAGIC:
            raise StoreError(f"{manifest_path} is not a CQS1 manifest (bad magic)")
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"unsupported CQS1 format version {version!r} "
                f"(this build reads version {STORE_FORMAT_VERSION})"
            )
        try:
            n_shards = int(manifest["n_shards"])
            shard_table = manifest["shards"]
            device_name = manifest["device_name"]
            variant = manifest["variant"]
            window_size = int(manifest["window_size"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed CQS1 manifest: {exc!r}") from None
        if n_shards < 1 or len(shard_table) != n_shards:
            raise StoreError(
                f"manifest declares {n_shards} shards but lists "
                f"{len(shard_table)} shard files"
            )
        shard_files, shard_sizes = cls._validate_shard_table(root, shard_table)
        index = cls._validate_entries(
            manifest, shard_sizes, versioned=False
        )
        return cls(
            path=root,
            device_name=device_name,
            variant=variant,
            window_size=window_size,
            n_shards=n_shards,
            shard_files=tuple(shard_files),
            index=index,
            max_open_shards=max_open_shards,
            generation=0,
        )

    @classmethod
    def _open_v2(
        cls,
        root: pathlib.Path,
        manifest_path: pathlib.Path,
        manifest: Dict,
        max_open_shards: int,
    ) -> "ShardedStore":
        """Validate one CQS2 (writable-layer) generation manifest.

        Unknown top-level fields are tolerated (forward compatibility);
        structural damage -- duplicate entry keys, a tombstone colliding
        with a live entry, bad versions or generations -- is a typed
        :class:`StoreError`.
        """
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION_V2:
            raise StoreError(
                f"unsupported CQS2 format version {version!r} "
                f"(this build reads version {STORE_FORMAT_VERSION_V2})"
            )
        try:
            generation = int(manifest["generation"])
            n_shards = int(manifest["n_shards"])
            shard_table = manifest["shards"]
            device_name = manifest["device_name"]
            variant = manifest["variant"]
            window_size = int(manifest["window_size"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed CQS2 manifest: {exc!r}") from None
        if generation < 1:
            raise StoreError(f"CQS2 generation must be >= 1, got {generation}")
        if n_shards < 1:
            raise StoreError(f"n_shards must be >= 1, got {n_shards}")
        if not isinstance(shard_table, list) or len(shard_table) < 1:
            raise StoreError("CQS2 manifest lists no shard files")
        shard_files, shard_sizes = cls._validate_shard_table(root, shard_table)
        index = cls._validate_entries(manifest, shard_sizes, versioned=True)
        tombstones: Dict[_Key, int] = {}
        for row in manifest.get("tombstones", []):
            try:
                key = (str(row["gate"]), tuple(int(q) for q in row["qubits"]))
                dead_version = int(row["version"])
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreError(f"malformed tombstone row: {exc!r}") from None
            if dead_version < 1:
                raise StoreError(
                    f"tombstone for {key} has version {dead_version} (< 1)"
                )
            if key in index:
                raise StoreError(
                    f"tombstone for {key[0]!r} {key[1]} collides with a "
                    "live manifest entry"
                )
            if key in tombstones:
                raise StoreError(f"duplicate tombstone for {key[0]!r} {key[1]}")
            tombstones[key] = dead_version
        return cls(
            path=root,
            device_name=device_name,
            variant=variant,
            window_size=window_size,
            n_shards=n_shards,
            shard_files=tuple(shard_files),
            index=index,
            max_open_shards=max_open_shards,
            generation=generation,
            tombstones=tombstones,
        )

    @staticmethod
    def _validate_shard_table(
        root: pathlib.Path, shard_table: List
    ) -> Tuple[List[str], List[int]]:
        """Check every listed shard file exists at its recorded size."""
        shard_sizes: List[int] = []
        shard_files: List[str] = []
        seen: set = set()
        for shard, row in enumerate(shard_table):
            try:
                file_name = str(row["file"])
                recorded_bytes = int(row["n_bytes"])
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreError(
                    f"malformed shard table row {shard}: {exc!r}"
                ) from None
            if file_name in seen:
                raise StoreError(f"duplicate shard file {file_name!r} in manifest")
            seen.add(file_name)
            shard_path = root / file_name
            if not shard_path.is_file():
                raise StoreError(f"missing shard file {shard_path}")
            actual = shard_path.stat().st_size
            if actual != recorded_bytes:
                raise StoreError(
                    f"shard {shard} is {actual} bytes on disk, manifest "
                    f"records {recorded_bytes}"
                )
            shard_sizes.append(actual)
            shard_files.append(file_name)
        return shard_files, shard_sizes

    @staticmethod
    def _validate_entries(
        manifest: Dict, shard_sizes: List[int], versioned: bool
    ) -> Dict[_Key, StoreRecord]:
        """Range-check and index the manifest's entry rows."""
        try:
            entry_rows = manifest["entries"]
        except KeyError as exc:
            raise StoreError(f"malformed CQS1 manifest: {exc!r}") from None
        index: Dict[_Key, StoreRecord] = {}
        n_files = len(shard_sizes)
        for row in entry_rows:
            try:
                record = StoreRecord(
                    gate=row["gate"],
                    qubits=tuple(int(q) for q in row["qubits"]),
                    shard=int(row["shard"]),
                    offset=int(row["offset"]),
                    length=int(row["length"]),
                    mse=float(row["mse"]),
                    threshold=float(row["threshold"]),
                    version=int(row["version"]) if versioned else 1,
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreError(f"malformed manifest entry: {exc!r}") from None
            if record.version < 1:
                raise StoreError(
                    f"entry {record.gate!r} {record.qubits} has version "
                    f"{record.version} (< 1)"
                )
            if not 0 <= record.shard < n_files:
                raise StoreError(
                    f"entry {record.gate!r} {record.qubits} names shard "
                    f"{record.shard} of {n_files}"
                )
            if record.offset < 0 or record.length < 1 or (
                record.offset + record.length > shard_sizes[record.shard]
            ):
                raise StoreError(
                    f"entry {record.gate!r} {record.qubits} span "
                    f"[{record.offset}, {record.offset + record.length}) "
                    f"overruns shard {record.shard} "
                    f"({shard_sizes[record.shard]} bytes)"
                )
            key = (record.gate, record.qubits)
            if key in index:
                raise StoreError(
                    f"duplicate manifest entry for {record.gate!r} "
                    f"{record.qubits}"
                )
            index[key] = record
        try:
            declared_entries = int(manifest.get("n_entries", len(index)))
        except (TypeError, ValueError) as exc:
            raise StoreError(f"malformed CQS1 manifest: {exc!r}") from None
        if len(index) != declared_entries:
            raise StoreError(
                f"manifest declares {declared_entries} entries, "
                f"index holds {len(index)}"
            )
        return index

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every pooled shard mapping (idempotent).

        The store stays usable: a later read simply remaps its shard.
        This keeps ``close`` safe for shared-store setups while still
        releasing descriptors deterministically.
        """
        self._pool.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def open_shard_handles(self) -> int:
        """Currently resident shard mmaps (bounded by the pool)."""
        return self._pool.open_count

    @property
    def shard_count(self) -> int:
        """Shard *files* in this generation's table.

        Equal to ``n_shards`` for a plain CQS1 store; a CQS2 generation
        appends staged commit files beyond the hash-routing width, so
        iterate files with this, route keys with ``n_shards``.
        """
        return len(self._shard_files)

    # -- inventory -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: _Key) -> bool:
        return normalize_key(*key) in self._index

    def keys(self) -> List[_Key]:
        return list(self._index.keys())

    def shard_of(self, gate: str, qubits: Sequence[int]) -> int:
        """The shard holding one pulse (hash-routed, manifest-checked)."""
        return self.record_info(gate, qubits).shard

    def record_info(self, gate: str, qubits: Sequence[int]) -> StoreRecord:
        """The manifest index row for one pulse."""
        key = normalize_key(gate, qubits)
        try:
            return self._index[key]
        except KeyError:
            raise StoreError(
                f"store {self.device_name!r} holds no pulse for gate "
                f"{key[0]!r} on qubits {key[1]}"
            ) from None

    def shard_path(self, shard: int) -> pathlib.Path:
        if not 0 <= shard < self.shard_count:
            raise StoreError(f"shard {shard} out of range [0, {self.shard_count})")
        return self.path / self._shard_files[shard]

    # -- demand reads --------------------------------------------------------

    def _read_span(self, info: StoreRecord) -> memoryview:
        """Zero-copy view of one record span out of the mmap pool.

        Span bounds were validated against the recorded shard sizes at
        open time; a shard file that shrank since raises StoreError.
        """
        view = self._pool.view(info.shard)
        if info.offset + info.length > len(view):
            raise StoreError(
                f"short read from shard {info.shard}: wanted {info.length} "
                f"bytes at {info.offset}, had {len(view)}"
            )
        return view[info.offset : info.offset + info.length]

    @staticmethod
    def _check_binding(key: _Key, gate: str, qubits: Tuple[int, ...]) -> None:
        if (gate, qubits) != key:
            raise StoreError(
                f"record at shard offset for {key} is bound to "
                f"({gate!r}, {qubits})"
            )

    def _spans_in_read_order(
        self, requests: Iterable[Tuple[str, Sequence[int]]]
    ) -> Tuple[List[_Key], List[_Key]]:
        """Resolve requests to (request-order keys, shard/offset-order keys)."""
        keys = [normalize_key(*request) for request in requests]
        unique = list(dict.fromkeys(keys))
        infos = {key: self.record_info(*key) for key in unique}
        unique.sort(key=lambda k: (infos[k].shard, infos[k].offset))
        return keys, unique

    def read_record_bytes(self, gate: str, qubits: Sequence[int]) -> bytes:
        """Raw ``CQW1`` bytes of one pulse (copied out of the mmap pool)."""
        return bytes(self._read_span(self.record_info(gate, qubits)))

    def read_record(self, gate: str, qubits: Sequence[int]) -> CompressedWaveform:
        """Parse one pulse's compressed record without touching its shard.

        The returned waveform is still compressed; decode it through
        :meth:`decode_record` / :meth:`decode_many` (the fused fast
        path) or :func:`repro.compression.pipeline.decompress_waveform`.
        """
        return self.read_many([(gate, qubits)])[0]

    def read_many(
        self, requests: Iterable[Tuple[str, Sequence[int]]]
    ) -> List[CompressedWaveform]:
        """Read several records, grouping and ordering reads per shard.

        Reads are zero-copy span views served by the mmap pool in
        (shard, ascending offset) order -- sequential page touches --
        then parsed through the vectorized engine and returned in
        request order.
        """
        keys, unique = self._spans_in_read_order(requests)
        parsed: Dict[_Key, CompressedWaveform] = {}
        for key in unique:
            compressed = parse_waveform(self._read_span(self._index[key]))
            self._check_binding(key, compressed.gate, compressed.qubits)
            parsed[key] = compressed
        return [parsed[key] for key in keys]

    def decode_record(self, gate: str, qubits: Sequence[int]) -> Waveform:
        """Fused cold read: record bytes straight to a decoded waveform."""
        return self.decode_many([(gate, qubits)])[0]

    def decode_many(
        self, requests: Iterable[Tuple[str, Sequence[int]]]
    ) -> List[Waveform]:
        """Fused batch decode: mmap span views -> decoded waveforms.

        The serving cold-miss fast path: spans are read in (shard,
        offset) order as zero-copy views and pushed through
        :func:`repro.compression.fastpath.decode_records` -- one
        grouped inverse kernel per (codec, window size), no per-window
        Python objects.  Output is bit-identical to
        ``decompress_waveform(self.read_record(...))`` per request.
        """
        keys, unique = self._spans_in_read_order(requests)
        views = [self._read_span(self._index[key]) for key in unique]
        started = time.perf_counter()
        waveforms = decode_records(views) if views else []
        if views:
            registry = default_registry()
            registry.counter("store.decode_batches").inc()
            registry.counter("store.decode_pulses").inc(len(views))
            registry.histogram("store.decode_batch_pulses", DEFAULT_SIZE_BOUNDS).observe(
                len(views)
            )
            registry.histogram("store.decode_seconds").observe(
                time.perf_counter() - started
            )
        decoded: Dict[_Key, Waveform] = {}
        for key, waveform in zip(unique, waveforms):
            self._check_binding(key, waveform.gate, waveform.qubits)
            decoded[key] = waveform
        return [decoded[key] for key in keys]

    # -- eager paths ---------------------------------------------------------

    def _shard_view(self, shard: int) -> memoryview:
        """Whole-shard zero-copy view (range-checked, pool-served)."""
        if not 0 <= shard < self.shard_count:
            raise StoreError(f"shard {shard} out of range [0, {self.shard_count})")
        return self._pool.view(shard)

    def read_shard(self, shard: int) -> LibraryBitstream:
        """Parse one whole shard as its ``CQL1`` container."""
        try:
            return parse_library(self._shard_view(shard))
        except CompressionError as exc:
            raise StoreError(f"corrupt shard {shard}: {exc}") from None

    def decode_shard(self, shard: int) -> List[Tuple[_Key, Waveform]]:
        """Fused decode of one whole shard, in container order.

        Goes bytes -> tag/payload arrays -> grouped inverse kernels
        without building per-window objects; used by
        :meth:`repro.store.cache.PulseCache.prewarm` and anything else
        that wants a shard's full decoded contents at cold-miss speed.
        """
        try:
            rows = decode_library_bytes(self._shard_view(shard))
        except CompressionError as exc:
            raise StoreError(f"corrupt shard {shard}: {exc}") from None
        return [
            (normalize_key(gate, qubits), waveform)
            for gate, qubits, waveform in rows
        ]

    def load_library(self):
        """Eagerly load and decode the whole store.

        Returns a :class:`~repro.core.compiler.CompressedPulseLibrary`
        interchangeable with one loaded from the monolithic ``CQL1``
        file -- the compatibility bridge for consumers that still want
        everything decoded up front.
        """
        from repro.compression.batch import decompress_batch
        from repro.compression.pipeline import CompressionResult
        from repro.core.compiler import CompressedPulseLibrary

        library = CompressedPulseLibrary(
            device_name=self.device_name,
            window_size=self.window_size,
            variant=self.variant,
        )
        if self.generation > 0:
            # A CQS2 generation's shard files still hold superseded and
            # tombstoned record bytes; only the manifest index is truth.
            keys = self.keys()
            compressed = self.read_many(keys)
            if keys:
                reconstructed = decompress_batch(compressed)
                for key, parsed, waveform in zip(keys, compressed, reconstructed):
                    info = self._index[key]
                    library.add(
                        key,
                        CompressionResult(
                            compressed=parsed,
                            reconstructed=waveform,
                            mse=info.mse,
                            threshold=info.threshold,
                        ),
                    )
            return library
        entries: List[LibraryEntry] = []
        for shard in range(self.shard_count):
            entries.extend(self.read_shard(shard).entries)
        if self.generation == 0 and len(entries) != len(self._index):
            raise StoreError(
                f"shards hold {len(entries)} entries, manifest indexes "
                f"{len(self._index)}"
            )
        if entries:
            reconstructed = decompress_batch([e.compressed for e in entries])
            for entry, waveform in zip(entries, reconstructed):
                library.add(
                    (entry.gate, entry.qubits),
                    CompressionResult(
                        compressed=entry.compressed,
                        reconstructed=waveform,
                        mse=entry.mse,
                        threshold=entry.threshold,
                    ),
                )
        return library

    @property
    def total_shard_bytes(self) -> int:
        """Compressed on-disk footprint across all shard files."""
        return sum(
            self.shard_path(s).stat().st_size for s in range(self.shard_count)
        )

    def __repr__(self) -> str:
        return (
            f"ShardedStore({self.device_name!r}, variant={self.variant!r}, "
            f"n_shards={self.n_shards}, generation={self.generation}, "
            f"n_entries={len(self)})"
        )


def open_store(path: Union[str, pathlib.Path]) -> ShardedStore:
    """Open a CQS1 store directory (alias of :meth:`ShardedStore.open`)."""
    return ShardedStore.open(path)
