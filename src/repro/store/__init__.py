"""Sharded waveform store and the concurrent pulse-serving subsystem.

The read-path hierarchy between the codec/bitstream layers and a
production controller:

- :mod:`repro.store.sharded` -- the ``CQS1`` on-disk layout: a JSON
  manifest plus N ``CQL1`` shard files, hash-sharded by channel, with a
  byte-offset index so one pulse record is a single zero-copy span view
  out of a bounded mmap pool.
- :mod:`repro.store.cache` -- :class:`PulseCache`, a bounded LRU of
  *decoded* waveforms with exact hit/miss/eviction counters and a
  batch-aware ``get_many`` that decodes misses through the fused
  parse→decode fast path (``ShardedStore.decode_many``).
- :mod:`repro.store.server` -- :class:`PulseServer`, the thread-safe
  ``fetch`` / ``fetch_batch`` front end with per-shard single-flight
  and cross-shard parallel fills.
- :mod:`repro.store.trace` -- request traces (JSON files and synthetic
  Zipf workloads) for ``repro serve`` and the serving benchmark.

Quickstart::

    from repro import CompaqtCompiler, ibm_device
    from repro.store import PulseServer, open_store, save_store

    compiler = CompaqtCompiler(window_size=16)
    compiled = compiler.compile_library(ibm_device("guadalupe").pulse_library())
    save_store(compiled, "guadalupe.cqs", n_shards=4)

    with PulseServer(open_store("guadalupe.cqs"), cache_capacity=32) as server:
        pulse = server.fetch("sx", (0,))
        batch = server.fetch_batch([("x", (1,)), ("cx", (0, 1))])
"""

from repro.store.atomic import atomic_write
from repro.store.sharded import (
    MANIFEST_NAME,
    STORE_FORMAT_VERSION,
    STORE_FORMAT_VERSION_V2,
    STORE_MAGIC,
    STORE_MAGIC_V2,
    ShardedStore,
    StoreHandle,
    StoreRecord,
    generation_manifest_name,
    open_store,
    save_store,
    shard_index,
)
from repro.store.cache import CacheStats, PulseCache
from repro.store.server import PulseServer, ServerStats
from repro.store.verify import VerifyReport, verify_store
from repro.store.writable import (
    COMMIT_HOOK_POINTS,
    COMPACT_HOOK_POINTS,
    StoreWriter,
)
from repro.store.trace import (
    arrival_times,
    load_trace,
    synthetic_trace,
    write_trace,
)

__all__ = [
    "STORE_MAGIC",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC_V2",
    "STORE_FORMAT_VERSION_V2",
    "MANIFEST_NAME",
    "StoreRecord",
    "ShardedStore",
    "StoreHandle",
    "shard_index",
    "generation_manifest_name",
    "save_store",
    "open_store",
    "atomic_write",
    "StoreWriter",
    "COMMIT_HOOK_POINTS",
    "COMPACT_HOOK_POINTS",
    "VerifyReport",
    "verify_store",
    "CacheStats",
    "PulseCache",
    "ServerStats",
    "PulseServer",
    "load_trace",
    "write_trace",
    "synthetic_trace",
    "arrival_times",
]
