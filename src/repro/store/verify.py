"""Operator-facing store scrub: ``repro store verify <dir>``.

The offline twin of the chaos harness's invariant checker: walk a store
directory, validate the manifest generation chain, re-check every shard
file against its recorded size, and parse **every live record** through
the fused parser (falling back to the scalar oracle on failure, so a
fused/scalar divergence is reported as its own damage class rather
than blamed on the disk).  The result is a structured
:class:`VerifyReport` with a per-shard damage table; the CLI exits
non-zero iff ``report.ok`` is false.

The scrub is read-only and snapshot-consistent: it opens the newest
valid generation exactly like any reader and never touches a byte on
disk, so running it against a store a writer is actively committing to
is safe.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.errors import CompressionError, ReproError, StoreError
from repro.compression.bitstream import parse_waveform, parse_waveform_scalar
from repro.store.sharded import (
    MANIFEST_NAME,
    ShardedStore,
    list_generation_manifests,
)

__all__ = ["ShardReport", "VerifyReport", "verify_store", "format_report"]


@dataclass
class ShardReport:
    """Scrub result for one shard file of the chosen generation."""

    file: str
    n_bytes: int
    records_checked: int = 0
    damage: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.damage

    def as_dict(self) -> Dict:
        return {
            "file": self.file,
            "n_bytes": self.n_bytes,
            "records_checked": self.records_checked,
            "ok": self.ok,
            "damage": list(self.damage),
        }


@dataclass
class VerifyReport:
    """Everything ``repro store verify`` learned about one directory."""

    path: str
    generation: int = -1
    n_records: int = 0
    n_tombstones: int = 0
    generations_found: List[int] = field(default_factory=list)
    chain_gaps: List[int] = field(default_factory=list)
    manifest_errors: List[str] = field(default_factory=list)
    shards: List[ShardReport] = field(default_factory=list)
    fatal: str = ""

    @property
    def ok(self) -> bool:
        """True iff the store opened and every live record scrubbed clean.

        Skipped (invalid) manifest candidates and chain gaps are
        advisory -- recovery-on-open tolerates both by design -- but a
        store that cannot open at all, or any shard damage, fails.
        """
        return not self.fatal and all(shard.ok for shard in self.shards)

    def as_dict(self) -> Dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "generation": self.generation,
            "n_records": self.n_records,
            "n_tombstones": self.n_tombstones,
            "generations_found": list(self.generations_found),
            "chain_gaps": list(self.chain_gaps),
            "manifest_errors": list(self.manifest_errors),
            "fatal": self.fatal,
            "shards": [shard.as_dict() for shard in self.shards],
        }


def verify_store(path: Union[str, pathlib.Path]) -> VerifyReport:
    """Scrub one store directory; never raises for store damage.

    Only non-store problems (e.g. the path is unreadable at the OS
    level in a way the store layer does not translate) can escape as
    exceptions; every store-level fault lands in the report.
    """
    root = pathlib.Path(path)
    report = VerifyReport(path=str(root))

    manifests = list_generation_manifests(root)
    report.generations_found = sorted(gen for gen, _path in manifests)
    if (root / MANIFEST_NAME).is_file():
        report.generations_found.insert(0, 0)
    if report.generations_found:
        low, high = report.generations_found[0], report.generations_found[-1]
        present = set(report.generations_found)
        report.chain_gaps = [
            gen for gen in range(low, high + 1) if gen not in present
        ]

    # Which candidates the reader would skip, and why: advisory, but an
    # operator wants to see a torn newest manifest even though open()
    # recovered past it.
    for _generation, manifest_path in manifests + [(0, root / MANIFEST_NAME)]:
        if not manifest_path.is_file():
            continue
        try:
            ShardedStore._open_manifest(root, manifest_path, max_open_shards=1)
        except StoreError as exc:
            report.manifest_errors.append(f"{manifest_path.name}: {exc}")

    try:
        store = ShardedStore.open(root)
    except StoreError as exc:
        report.fatal = str(exc)
        return report

    with store:
        report.generation = store.generation
        report.n_records = len(store)
        report.n_tombstones = len(store.tombstones)
        shard_reports = [
            ShardReport(
                file=store.shard_path(shard).name,
                n_bytes=store.shard_path(shard).stat().st_size,
            )
            for shard in range(store.shard_count)
        ]
        for key in store.keys():
            info = store.record_info(*key)
            shard_report = shard_reports[info.shard]
            shard_report.records_checked += 1
            label = f"{key[0]!r} {key[1]} v{info.version}"
            try:
                blob = store.read_record_bytes(*key)
            except ReproError as exc:
                shard_report.damage.append(f"{label}: unreadable span: {exc}")
                continue
            try:
                parsed = parse_waveform(blob)
            except (CompressionError, StoreError) as exc:
                fused_error = exc
                try:
                    parsed = parse_waveform_scalar(blob)
                except ReproError:
                    shard_report.damage.append(
                        f"{label}: record unparseable: {fused_error}"
                    )
                    continue
                shard_report.damage.append(
                    f"{label}: parser divergence (fused rejects, scalar "
                    f"accepts): {fused_error}"
                )
                continue
            if (parsed.gate, tuple(parsed.qubits)) != key:
                shard_report.damage.append(
                    f"{label}: record bound to ({parsed.gate!r}, "
                    f"{parsed.qubits})"
                )
        report.shards = shard_reports
    return report


def format_report(report: VerifyReport) -> str:
    """Human-readable damage table for the CLI."""
    lines = [
        f"store   {report.path}",
        f"status  {'OK' if report.ok else 'DAMAGED'}",
    ]
    if report.fatal:
        lines.append(f"fatal   {report.fatal}")
        return "\n".join(lines)
    lines.append(
        f"serving generation {report.generation} "
        f"({report.n_records} records, {report.n_tombstones} tombstones)"
    )
    if report.generations_found:
        lines.append(
            "generations on disk: "
            + ", ".join(str(g) for g in report.generations_found)
        )
    if report.chain_gaps:
        lines.append(
            "chain gaps (advisory): "
            + ", ".join(str(g) for g in report.chain_gaps)
        )
    for error in report.manifest_errors:
        lines.append(f"skipped manifest: {error}")
    header = f"{'shard file':<28} {'bytes':>10} {'records':>8} damage"
    lines.append(header)
    for shard in report.shards:
        status = "clean" if shard.ok else f"{len(shard.damage)} fault(s)"
        lines.append(
            f"{shard.file:<28} {shard.n_bytes:>10} "
            f"{shard.records_checked:>8} {status}"
        )
        for item in shard.damage:
            lines.append(f"    - {item}")
    return "\n".join(lines)
