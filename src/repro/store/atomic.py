"""Crash-safe file publication: temp file + fsync + atomic rename.

Every durable artifact this project writes -- store manifests, shard
files, committed ``BENCH_*.json`` baselines, chaos reports, traces --
goes through :func:`atomic_write`.  The discipline is the classic
three-step publish:

1. write the full payload to a temp file *in the same directory* (so
   the final rename never crosses a filesystem boundary),
2. ``fsync`` the temp file so the payload is on stable storage before
   the name exists,
3. ``os.replace`` onto the final name (atomic on POSIX and NTFS), then
   ``fsync`` the directory so the rename itself is durable.

A crash at any point leaves either the old file intact or the new file
complete -- never a truncated hybrid.  The worst case is an orphaned
``*.tmp-*`` sibling, which readers ignore and a later write of the
same target sweeps up.
"""

from __future__ import annotations

import os
import pathlib
from typing import Union

__all__ = ["atomic_write", "fsync_dir"]


def fsync_dir(path: Union[str, pathlib.Path]) -> None:
    """fsync a directory so a rename inside it is durable.

    Best-effort on platforms where directories cannot be opened
    (Windows raises ``OSError``/``PermissionError``); the rename itself
    is still atomic there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, pathlib.Path],
    data: Union[bytes, str],
    fsync: bool = True,
) -> pathlib.Path:
    """Publish ``data`` at ``path`` atomically; returns the final path.

    ``str`` payloads are encoded UTF-8.  ``fsync=False`` keeps the
    write-temp-then-rename atomicity (readers never observe a torn
    file) but skips the flush-to-stable-storage step -- acceptable for
    scratch artifacts, never for store manifests or shards.
    """
    target = pathlib.Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(target.parent)
    return target
