"""Concurrent pulse-serving front end over a sharded store.

:class:`PulseServer` is the piece instruction-driven controllers hang
off the compressed waveform memory: gate issue asks for a decoded
pulse, the hot set answers from the
:class:`~repro.store.cache.PulseCache`, and misses are demand-fetched
from the :class:`~repro.store.sharded.ShardedStore` and decoded through
the batched engine.  It is safe to call from many threads at once and
adds two policies the cache deliberately does not have:

* **Per-shard single-flight.**  Every fill happens under that shard's
  lock: when N threads miss on the same (or co-sharded) pulses at the
  same moment, one of them decodes while the rest wait and then take
  the freshly cached result (counted in ``coalesced_fills``).  The
  same window is never decoded twice concurrently.

* **Cross-shard parallel fills.**  :meth:`fetch_batch` groups its
  misses by shard and fans the per-shard fills out on a
  :class:`concurrent.futures.ThreadPoolExecutor`, so a batch touching
  K shards pays roughly one shard's fill latency, not K.

Served samples are bit-identical to the scalar reference
(:func:`repro.compression.pipeline.decompress_channel` via
``decompress_waveform``): the cache decodes through
:func:`~repro.compression.batch.decompress_batch`, whose conformance
with the scalar path is enforced by the PR 2 test suite and re-checked
end-to-end by the serving benchmark's identity gate.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.obs import MetricsRegistry, merge_snapshots
from repro.obs import trace as obs_trace
from repro.pulses.waveform import Waveform
from repro.store.cache import CacheStats, PulseCache
from repro.store.hooks import preempt
from repro.store.sharded import ShardedStore, normalize_key

__all__ = ["ServerStats", "PulseServer"]

_Key = Tuple[str, Tuple[int, ...]]


@dataclass(frozen=True, slots=True)
class ServerStats:
    """A point-in-time snapshot of one server's counters."""

    requests: int
    batches: int
    shard_fills: int
    coalesced_fills: int
    cache: CacheStats
    pool: Optional[Dict] = None

    def as_dict(self) -> Dict:
        out = {
            "requests": self.requests,
            "batches": self.batches,
            "shard_fills": self.shard_fills,
            "coalesced_fills": self.coalesced_fills,
            "cache": self.cache.as_dict(),
        }
        if self.pool is not None:
            out["pool"] = dict(self.pool)
        return out

    # Historical spelling; ``as_dict`` is the shared stats-object surface.
    to_dict = as_dict


class PulseServer:
    """Thread-safe ``fetch`` / ``fetch_batch`` over store + cache.

    Args:
        store: The compressed pulse store to serve from.
        cache_capacity: Decoded hot-set size (ignored when ``cache`` is
            given).
        max_workers: Threads for cross-shard parallel fills; capped at
            the store's shard count (more would never run concurrently
            under per-shard single-flight).
        cache: Optionally share a pre-built :class:`PulseCache` (e.g.
            one cache behind several servers in a test harness).
        workers: Decode worker *processes*.  ``0`` (the default)
            preserves the in-process fill path exactly; ``>= 1`` routes
            every cold-miss decode through a
            :class:`~repro.serve_net.workers.DecodePool` with
            shared-memory sample handoff.  Per-shard single-flight and
            coalescing are unchanged either way -- the shard lock wraps
            the fill regardless of where the decode runs.
        shm_limit: Per-worker shared-memory slab in bytes (pool only).
        start_method: Multiprocessing start method for the pool
            (``None`` = platform default).
        metrics: Registry for the ``server.*`` counters and the fill
            latency histogram.  Defaults to a private registry; a
            privately built cache and decode pool share it (one
            merged view per server), while a shared ``cache=`` keeps
            its own registry and is merged in
            :meth:`metrics_snapshot`.

    Use as a context manager, or call :meth:`close` to release the
    fill executor, drain the decode pool, and release the store's mmap
    pool; serving after ``close`` still works -- fills run inline and
    in-process on the calling thread and the pool remaps shards on
    demand.
    """

    def __init__(
        self,
        store: ShardedStore,
        cache_capacity: int = 64,
        max_workers: int = 4,
        cache: Optional[PulseCache] = None,
        workers: int = 0,
        shm_limit: Optional[int] = None,
        start_method: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers < 1:
            raise StoreError(f"max_workers must be >= 1, got {max_workers}")
        if workers < 0:
            raise StoreError(f"workers must be >= 0, got {workers}")
        if cache is not None and cache.store is not store:
            raise StoreError("shared cache is bound to a different store")
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = (
            cache
            if cache is not None
            else PulseCache(store, cache_capacity, metrics=self.metrics)
        )
        self._pool = None
        self._pool_config = (workers, shm_limit, start_method)
        if workers > 0:
            # Imported lazily: repro.serve_net.workers imports from
            # repro.store, so a module-level import here would cycle.
            from repro.serve_net.workers import DEFAULT_SHM_LIMIT, DecodePool

            self._pool = DecodePool(
                store.handle(),
                workers=workers,
                shm_limit=DEFAULT_SHM_LIMIT if shm_limit is None else shm_limit,
                start_method=start_method,
                metrics=self.metrics,
            )
        # Sized to the hash-routing width; a CQS2 generation's shard
        # *table* can be wider (staged commit files), so fills index
        # these modulo len -- same single-flight guarantee, staged
        # shards simply share a lock with one base shard.
        self._shard_locks = tuple(
            threading.Lock() for _ in range(store.n_shards)
        )
        self._executor: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=min(max_workers, store.n_shards),
            thread_name_prefix="pulse-serve",
        )
        self._stats_lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._requests = self.metrics.counter("server.requests")
        self._batches = self.metrics.counter("server.batches")
        self._shard_fills = self.metrics.counter("server.shard_fills")
        self._coalesced_fills = self.metrics.counter("server.coalesced_fills")
        self._fill_seconds = self.metrics.histogram("server.fill_seconds")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down the fill executor and release store handles.

        Idempotent.  The decode pool (if any) drains gracefully --
        in-flight worker jobs finish or fail typed, never hang.  The
        cache's ``close`` cascades to the store's mmap pool; because
        the pool remaps on demand, a shared cache or store behind
        several servers keeps working after one of them closes.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        self.cache.close()

    def __enter__(self) -> "PulseServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the serving API ---------------------------------------------------------

    def fetch(self, gate: str, qubits: Sequence[int]) -> Waveform:
        """Serve one decoded pulse (hit: lock-free; miss: single-flight).

        Bit-identical to ``decompress_waveform(store.read_record(...))``.
        """
        key = normalize_key(gate, qubits)
        waveform = self.cache.lookup(*key)
        if waveform is None:
            waveform = self._fill_shard(self.store.shard_of(*key), [key])[key]
        with self._stats_lock:
            self._requests.inc()
        return waveform

    def fetch_batch(
        self, requests: Sequence[Tuple[str, Sequence[int]]]
    ) -> List[Waveform]:
        """Serve a batch; misses fill per shard, shards fill in parallel.

        Results come back in request order; duplicate keys are served
        from a single decode.
        """
        keys = [normalize_key(*request) for request in requests]
        resolved: Dict[_Key, Waveform] = {}
        missing_by_shard: Dict[int, List[_Key]] = {}
        for key in dict.fromkeys(keys):
            waveform = self.cache.lookup(*key)
            if waveform is not None:
                resolved[key] = waveform
            else:
                shard = self.store.shard_of(*key)
                missing_by_shard.setdefault(shard, []).append(key)
        if missing_by_shard:
            executor = self._executor
            filled = False
            if executor is not None and len(missing_by_shard) > 1:
                try:
                    # copy_context(): run_in-executor threads do not
                    # inherit contextvars, and the active trace span
                    # rides on one -- each fill gets its own copy so
                    # parallel fills attach as siblings.
                    futures = [
                        executor.submit(
                            contextvars.copy_context().run,
                            self._fill_shard,
                            shard,
                            shard_keys,
                        )
                        for shard, shard_keys in missing_by_shard.items()
                    ]
                except RuntimeError:
                    # close() raced us between reading self._executor
                    # and submit(); honor the documented fallback.
                    pass
                else:
                    # Every submitted future must be retrieved even when
                    # one shard's fill fails: returning on the first
                    # error would leak "exception was never retrieved"
                    # futures and abandon fills still in flight.  The
                    # first failure propagates (typed) once all fills
                    # have settled.
                    first_error: Optional[BaseException] = None
                    for future in futures:
                        try:
                            resolved.update(future.result())
                        except BaseException as exc:
                            if first_error is None:
                                first_error = exc
                    if first_error is not None:
                        raise first_error
                    filled = True
            if not filled:
                for shard, shard_keys in missing_by_shard.items():
                    resolved.update(self._fill_shard(shard, shard_keys))
        with self._stats_lock:
            self._requests.inc(len(keys))
            self._batches.inc()
        return [resolved[key] for key in keys]

    # -- generation adoption -----------------------------------------------------

    def refresh(self) -> bool:
        """Adopt the newest committed store generation, if one exists.

        Reopens the store directory; when a different generation than
        the one being served has been committed (by a
        :class:`repro.store.writable.StoreWriter`, possibly in another
        process), swaps it in: the cache invalidates precisely by
        (key, version) via :meth:`PulseCache.adopt_store`, the decode
        pool (if any) is restarted on the new snapshot (workers pin
        their own generation at open), and the old snapshot's mmap pool
        is released.  Returns ``True`` iff a new generation was adopted.

        Readers are never blocked: adoption swaps references under the
        cache lock only, and fills in flight against the old snapshot
        complete normally -- they return their (snapshot-consistent)
        waveforms but skip the cache insert, so the cache never mixes
        generations.
        """
        with self._refresh_lock:
            current = self.store
            fresh = current.handle().open()
            if fresh.generation == current.generation:
                fresh.close()
                return False
            invalidated = self.cache.adopt_store(fresh)
            self.store = fresh
            self.metrics.counter("server.generation_adoptions").inc()
            self.metrics.counter("server.refresh_invalidations").inc(invalidated)
            if self._pool is not None:
                from repro.serve_net.workers import DEFAULT_SHM_LIMIT, DecodePool

                old_pool, self._pool = self._pool, None
                old_pool.close()
                workers, shm_limit, start_method = self._pool_config
                self._pool = DecodePool(
                    fresh.handle(),
                    workers=workers,
                    shm_limit=(
                        DEFAULT_SHM_LIMIT if shm_limit is None else shm_limit
                    ),
                    start_method=start_method,
                    metrics=self.metrics,
                )
            current.close()
            return True

    # -- fills -----------------------------------------------------------------

    def _fill_shard(self, shard: int, keys: List[_Key]) -> Dict[_Key, Waveform]:
        """Resolve misses for one shard under its single-flight lock.

        Keys another thread decoded while we waited for the lock are
        taken from the cache (coalesced); the remainder is read and
        decoded in one batch.
        """
        out: Dict[_Key, Waveform] = {}
        coalesced = 0
        started = time.perf_counter()
        with obs_trace.span("server.fill", shard=shard, keys=len(keys)):
            preempt("server.fill.pre_lock")
            with self._shard_locks[shard % len(self._shard_locks)]:
                preempt("server.fill.locked")
                to_load: List[_Key] = []
                for key in keys:
                    waveform = self.cache.peek(*key)
                    if waveform is not None:
                        out[key] = waveform
                        coalesced += 1
                    else:
                        to_load.append(key)
                if to_load:
                    pool = self._pool
                    if pool is None:
                        out.update(self.cache.load_many(to_load))
                    else:
                        # The decode runs in a worker process; the insert
                        # (and its _lock_samples discipline) stays here,
                        # still under this shard's single-flight lock.
                        waveforms = pool.decode(to_load)
                        out.update(
                            self.cache.insert_decoded(
                                list(zip(to_load, waveforms))
                            )
                        )
        self._fill_seconds.observe(time.perf_counter() - started)
        with self._stats_lock:
            self._shard_fills.inc()
            self._coalesced_fills.inc(coalesced)
        return out

    # -- bookkeeping -------------------------------------------------------------

    @property
    def pool(self):
        """The live :class:`DecodePool`, or ``None`` (``workers=0``)."""
        return self._pool

    def metrics_snapshot(self) -> Dict:
        """Merged registry snapshot: server + cache + decode-pool lanes.

        A privately built cache and pool already write into this
        server's registry; a shared ``cache=`` (its own registry) and
        the pool's per-lane worker registries are merged in here.
        """
        snapshots = [self.metrics.snapshot()]
        if self.cache.metrics is not self.metrics:
            snapshots.append(self.cache.metrics.snapshot())
        pool = self._pool
        if pool is not None:
            snapshots.append(pool.lane_metrics_snapshot())
        return merge_snapshots(*snapshots)

    def stats(self) -> ServerStats:
        """Frozen :class:`ServerStats` view over the registry counters."""
        pool = self._pool
        with self._stats_lock:
            return ServerStats(
                requests=self._requests.value,
                batches=self._batches.value,
                shard_fills=self._shard_fills.value,
                coalesced_fills=self._coalesced_fills.value,
                cache=self.cache.stats(),
                pool=pool.stats().as_dict() if pool is not None else None,
            )
