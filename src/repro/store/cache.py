"""A bounded LRU cache of *decoded* waveforms over a sharded store.

This is the paper's memory hierarchy made explicit: the compressed
image lives in the :class:`~repro.store.sharded.ShardedStore` (cheap,
large), and a small hot set of fully decoded
:class:`~repro.pulses.waveform.Waveform` objects lives here (expensive,
bounded).  Every miss is a demand fetch -- one offset-indexed record
read plus a decode -- and :meth:`PulseCache.get_many` amortizes decode
cost by grouping miss reads per shard (sequential, mmap-backed I/O)
and pushing *all* missed records through the fused parse→decode fast
path (:meth:`repro.store.sharded.ShardedStore.decode_many`, built on
:mod:`repro.compression.fastpath`) in one call instead of decoding
pulse by pulse -- bit-identical to the batched engine and the scalar
reference.

The cache is thread-safe (a single reentrant lock guards the LRU map
and counters) but deliberately does **not** deduplicate concurrent
misses for the same pulse -- that single-flight policy belongs to the
serving layer (:class:`repro.store.server.PulseServer`), which holds a
per-shard lock around fills.

Counters (hits / misses / insertions / evictions) are monotonic and
exact: every :meth:`get`, :meth:`get_many`, or :meth:`lookup` resolves
each distinct requested key to exactly one hit or one miss, capacity is
never exceeded, and eviction strictly follows least-recent use.  The
property suite in ``tests/test_serving.py`` holds the implementation to
a shadow-model of exactly these rules.

The counters live in a :class:`repro.obs.MetricsRegistry` (each cache
owns a private one unless the caller passes ``metrics=``), and
:class:`CacheStats` is a frozen view over those registry counters --
one source of truth for both surfaces.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError
from repro.obs import MetricsRegistry
from repro.pulses.waveform import Waveform
from repro.store.hooks import preempt
from repro.store.sharded import ShardedStore, normalize_key

__all__ = ["CacheStats", "PulseCache"]

_Key = Tuple[str, Tuple[int, ...]]


def _lock_samples(waveform: Waveform) -> Waveform:
    """Make a waveform's sample buffer immutable through *every* alias.

    The cache hands the very same :class:`Waveform` object to every
    hit, so a caller mutating ``.samples`` would silently corrupt each
    later hit (and break the serving bench's bit-identity gate).  A
    bare ``writeable=False`` flag is not enough:

    * an array that **owns** its buffer can have the flag flipped back
      with ``setflags(write=True)``, and
    * an array whose **base** is writable (a view of caller memory)
      can be mutated through that base without touching the flag.

    So the cached array must be a *view over a read-only owner*: numpy
    then refuses ``setflags(write=True)`` on the served array outright.
    Waveforms off the fused decode path already own read-only buffers
    (no copy here); anything aliasing writable memory is copied once at
    insert time.
    """
    samples = waveform.samples
    owner = samples
    while isinstance(owner, np.ndarray) and owner.base is not None:
        owner = owner.base
    if not isinstance(owner, np.ndarray) or owner.flags.writeable:
        # Aliases caller-writable memory (or a writable non-array
        # buffer): re-own on a private read-only copy.
        samples = samples.copy()
        samples.setflags(write=False)
        owner = samples
    if samples is owner:
        # Owning arrays can re-enable writeability; a view of the
        # (read-only) owner cannot.
        samples = samples[:]
    if samples is waveform.samples:
        return waveform
    locked = object.__new__(Waveform)
    set_ = object.__setattr__
    set_(locked, "name", waveform.name)
    set_(locked, "samples", samples)
    set_(locked, "dt", waveform.dt)
    set_(locked, "gate", waveform.gate)
    set_(locked, "qubits", waveform.qubits)
    set_(locked, "metadata", waveform.metadata)
    return locked


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    insertions: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before any traffic."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    # Historical spelling; ``as_dict`` is the shared stats-object surface.
    to_dict = as_dict


class PulseCache:
    """Bounded LRU of decoded waveforms, demand-filled from a store.

    Args:
        store: The compressed source of truth.
        capacity: Maximum decoded pulses held (>= 1).  Decoded IBM
            pulses run ~1-10 KB each, so capacity is effectively the
            hot-set budget in pulse count.
        metrics: Registry to record ``cache.*`` counters in.  Defaults
            to a private per-cache registry so multiple caches never
            pool their counts.
    """

    def __init__(
        self,
        store: ShardedStore,
        capacity: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise StoreError(f"cache capacity must be >= 1, got {capacity}")
        self.store = store
        self.capacity = capacity
        self._lru: "OrderedDict[_Key, Waveform]" = OrderedDict()
        # Record version each cached entry was decoded at (CQS2): the
        # adoption path evicts on (key, version) change, and in-flight
        # fills that raced an adoption are dropped via the epoch.
        self._versions: Dict[_Key, int] = {}
        self._epoch = 0
        self._lock = threading.RLock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._insertions = self.metrics.counter("cache.insertions")
        self._evictions = self.metrics.counter("cache.evictions")
        self._invalidations = self.metrics.counter("cache.invalidations")

    # -- probes ---------------------------------------------------------------

    def lookup(self, gate: str, qubits: Sequence[int]) -> Optional[Waveform]:
        """Counted cache probe: hit refreshes recency, miss loads nothing."""
        key = normalize_key(gate, qubits)
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._hits.inc()
                self._lru.move_to_end(key)
            else:
                self._misses.inc()
            return cached

    def peek(self, gate: str, qubits: Sequence[int]) -> Optional[Waveform]:
        """Uncounted probe: touches neither counters nor LRU order.

        The serving layer uses this to re-check after acquiring a shard
        lock without double-counting the original miss.
        """
        with self._lock:
            return self._lru.get(normalize_key(gate, qubits))

    # -- fills ----------------------------------------------------------------

    def load_many(
        self, keys: Sequence[Tuple[str, Sequence[int]]]
    ) -> Dict[_Key, Waveform]:
        """Fetch, fused-decode, and insert the given pulses unconditionally.

        Records are read as zero-copy mmap span views in per-shard,
        offset-ordered sequence and decoded through **one**
        :meth:`~repro.store.sharded.ShardedStore.decode_many` call (the
        fused bytes→waveform fast path).  Counters are untouched (the
        caller already accounted the misses); insertions and any
        evictions they force are recorded.
        """
        unique: List[_Key] = list(
            dict.fromkeys(normalize_key(*key) for key in keys)
        )
        if not unique:
            return {}
        with self._lock:
            store = self.store
            epoch = self._epoch
        decoded = store.decode_many(unique)
        preempt("cache.load.pre_insert")
        out: Dict[_Key, Waveform] = {}
        with self._lock:
            # A generation adoption that raced this fill makes the
            # decoded snapshot stale for *caching* (the reader still
            # gets its consistent snapshot back) -- inserting would
            # resurrect superseded samples into a newer-generation
            # cache.
            stale = self._epoch != epoch
            for key, waveform in zip(unique, decoded):
                if stale:
                    out[key] = _lock_samples(waveform)
                else:
                    out[key] = self._insert(key, waveform, store)
        return out

    def insert_decoded(
        self, pairs: Sequence[Tuple[Tuple[str, Sequence[int]], Waveform]]
    ) -> Dict[_Key, Waveform]:
        """Insert already-decoded waveforms (the pool-fed fill path).

        The decode half of :meth:`load_many` without the store read:
        :class:`~repro.store.server.PulseServer` uses this when a
        :class:`~repro.serve_net.workers.DecodePool` decoded the misses
        in a worker process.  Same counter discipline as
        :meth:`load_many` (lookups untouched, insertions/evictions
        recorded) and the same :func:`_lock_samples` immutability
        guarantee on everything inserted.
        """
        preempt("cache.load.pre_insert")
        out: Dict[_Key, Waveform] = {}
        with self._lock:
            for key, waveform in pairs:
                normalized = normalize_key(*key)
                out[normalized] = self._insert(normalized, waveform)
        return out

    def prewarm(self, shards: Optional[Sequence[int]] = None) -> int:
        """Fill the cache from whole shards through the fused decoder.

        Decodes the named shards (default: all of them) with
        :meth:`~repro.store.sharded.ShardedStore.decode_shard` and
        inserts the results until the cache is full -- once capacity is
        reached, remaining pulses and shards are skipped rather than
        decoded and churned straight back out.  Counters stay untouched
        (prewarming is not traffic).  Returns the number of pulses
        *newly* inserted: re-warming keys that are already resident
        counts zero, so a second ``prewarm`` over an unchanged cache
        reports 0 rather than the whole library again.
        """
        if shards is None:
            shards = range(self.store.shard_count)
        if getattr(self.store, "generation", 0) > 0:
            # A CQS2 generation's shard files still hold superseded and
            # tombstoned record bytes; warming must go through the live
            # index, not raw container order.
            wanted = set(shards)
            to_load: List[_Key] = []
            with self._lock:
                room = self.capacity - len(self._lru)
                for key in self.store.keys():
                    if room <= 0:
                        break
                    if key in self._lru:
                        continue
                    if self.store.record_info(*key).shard not in wanted:
                        continue
                    to_load.append(key)
                    room -= 1
            if not to_load:
                return 0
            decoded = self.store.decode_many(to_load)
            with self._lock:
                for key, waveform in zip(to_load, decoded):
                    self._insert(key, waveform)
            return len(to_load)
        inserted = 0
        for shard in shards:
            with self._lock:
                if len(self._lru) >= self.capacity:
                    break
            for key, waveform in self.store.decode_shard(shard):
                with self._lock:
                    if len(self._lru) >= self.capacity and key not in self._lru:
                        break
                    if key not in self._lru:
                        inserted += 1
                    self._insert(key, waveform)
        return inserted

    def _insert(
        self, key: _Key, waveform: Waveform, store: Optional[ShardedStore] = None
    ) -> Waveform:
        """Insert under the lock, evicting least-recent entries to fit.

        Stores -- and returns -- the sample-locked form of the waveform
        (see :func:`_lock_samples`): the one object every later hit is
        served, with a buffer no caller can re-enable writes on.  The
        entry is tagged with its record version from ``store`` (the
        snapshot it was decoded against) so generation adoption can
        invalidate precisely.
        """
        if store is None:
            store = self.store
        try:
            version = store.record_info(*key).version
        except StoreError:
            version = 1
        already_present = key in self._lru
        waveform = _lock_samples(waveform)
        self._lru[key] = waveform
        self._versions[key] = version
        self._lru.move_to_end(key)
        if not already_present:
            self._insertions.inc()
            while len(self._lru) > self.capacity:
                evicted, _waveform = self._lru.popitem(last=False)
                self._versions.pop(evicted, None)
                self._evictions.inc()
        return waveform

    # -- generation adoption ---------------------------------------------------

    def adopt_store(self, new_store: ShardedStore) -> int:
        """Swap to a newer store generation; invalidate by (key, version).

        Entries whose record version is unchanged in the new generation
        stay hot (compaction moves bytes, not content); entries that
        were re-put or tombstoned are dropped.  Each drop counts as one
        ``cache.evictions`` (preserving the ``insertions - evictions ==
        size`` law) and one ``cache.invalidations`` (so the two causes
        stay distinguishable in the registry).  Returns the number of
        entries invalidated.
        """
        with self._lock:
            if new_store is self.store:
                return 0
            self.store = new_store
            self._epoch += 1
            stale: List[_Key] = []
            for key, version in self._versions.items():
                try:
                    current = new_store.record_info(*key).version
                except StoreError:
                    current = -1
                if current != version:
                    stale.append(key)
            for key in stale:
                self._lru.pop(key, None)
                self._versions.pop(key, None)
                self._evictions.inc()
                self._invalidations.inc()
            return len(stale)

    # -- the public read path -------------------------------------------------

    def get(self, gate: str, qubits: Sequence[int]) -> Waveform:
        """One decoded pulse: cache hit, or demand fetch + decode."""
        cached = self.lookup(gate, qubits)
        if cached is not None:
            return cached
        key = normalize_key(gate, qubits)
        return self.load_many([key])[key]

    def get_many(
        self, requests: Sequence[Tuple[str, Sequence[int]]]
    ) -> List[Waveform]:
        """Batch read: misses are grouped per shard and decoded together.

        Each *distinct* requested pulse counts exactly one hit or miss;
        duplicate keys inside one call share the first occurrence's
        outcome.  Results come back in request order.
        """
        keys = [normalize_key(*request) for request in requests]
        resolved: Dict[_Key, Waveform] = {}
        missing: List[_Key] = []
        for key in dict.fromkeys(keys):
            cached = self.lookup(*key)
            if cached is not None:
                resolved[key] = cached
            else:
                missing.append(key)
        if missing:
            resolved.update(self.load_many(missing))
        return [resolved[key] for key in keys]

    # -- bookkeeping ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def __contains__(self, key: Tuple[str, Sequence[int]]) -> bool:
        with self._lock:
            return normalize_key(*key) in self._lru

    def cached_keys(self) -> List[_Key]:
        """Keys currently held, least-recently used first."""
        with self._lock:
            return list(self._lru.keys())

    def clear(self) -> None:
        """Drop every cached waveform (counters keep their history)."""
        with self._lock:
            self._lru.clear()
            self._versions.clear()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the backing store's mmap pool (idempotent).

        Cached waveforms stay served; a later miss remaps its shard on
        demand, so sharing one store behind several caches is safe.
        """
        self.store.close()

    def __enter__(self) -> "PulseCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """This cache's registry snapshot (``cache.*`` series)."""
        return self.metrics.snapshot()

    def stats(self) -> CacheStats:
        """Frozen :class:`CacheStats` view over the registry counters."""
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._lru),
                hits=self._hits.value,
                misses=self._misses.value,
                insertions=self._insertions.value,
                evictions=self._evictions.value,
            )
