"""The CQS2 writable store layer: staged updates, atomic generation commit.

COMPAQT's pulse library is recompiled continuously -- qubits drift, the
adaptive layer recalibrates, and the controller's waveform memory must
pick up new pulses *while serving*.  :class:`StoreWriter` makes a CQS1
store directory updatable without ever breaking a concurrent reader:

* **Staging.**  ``put`` / ``delete`` accumulate in memory.  ``commit``
  serializes every staged record through the fused indexed serializer
  into **one fresh shard file** (``shard-g<generation>.cql``) -- the
  existing shard files are never rewritten, so a reader's pinned mmap
  snapshot stays valid byte for byte.

* **Versioned manifests.**  Each commit publishes
  ``manifest-<generation>.json`` (magic ``CQS2``): a generation
  counter, the full live index with a per-record **version** (bumped on
  every re-put), and **tombstones** for deletes.  Readers open the
  newest *valid* generation; caches invalidate by (key, version) on
  adoption (:meth:`repro.store.cache.PulseCache.adopt_store`).

* **Atomic publish.**  Every file lands via temp-file + ``fsync`` +
  ``os.replace`` + directory ``fsync``.  The manifest rename is the
  commit point: a crash anywhere before it leaves the previous
  generation intact (orphaned temp files and staged shards are ignored
  and later swept); a crash anywhere after it leaves the new generation
  fully durable.  There is no state in between -- the crash matrix in
  the README and the chaos harness's ``crash_commit`` fault enumerate
  every hook point below and assert exactly this.

* **Compaction.**  ``compact`` re-encodes the live records through the
  fused serializer into fresh hash-routed shard files, drops
  tombstones and superseded bytes, and publishes the result as a new
  generation under the very same protocol -- crash-safe for free.

The writer assumes a **single writer per store directory** (the usual
control-stack arrangement: one recalibration loop, many readers).
Readers need no coordination at all.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import StoreError
from repro.compression.bitstream import (
    LibraryBitstream,
    LibraryEntry,
    serialize_library_indexed,
)
from repro.store.atomic import fsync_dir
from repro.store.hooks import preempt
from repro.store.sharded import (
    STORE_FORMAT_VERSION_V2,
    STORE_MAGIC_V2,
    ShardedStore,
    StoreRecord,
    generation_manifest_name,
    list_generation_manifests,
    normalize_key,
    shard_index,
)

__all__ = ["COMMIT_HOOK_POINTS", "COMPACT_HOOK_POINTS", "StoreWriter"]

_Key = Tuple[str, Tuple[int, ...]]

#: Every yield point the commit protocol passes through, in order.  The
#: chaos harness and the crash property tests abort at each one and
#: assert the store reopens as exactly the old or the new generation.
#: ``writer.manifest.published`` is the commit point: aborts strictly
#: before it reopen old, at-or-after it reopen new.
COMMIT_HOOK_POINTS = (
    "writer.commit.begin",
    "writer.commit.staged",
    "writer.shard.tmp_written",
    "writer.shard.published",
    "writer.manifest.tmp_written",
    "writer.manifest.published",
    "writer.commit.cleanup",
)

#: The compaction pass's points; the shard pair fires once per rewritten
#: shard file.  Same old-or-new guarantee, same commit point.
COMPACT_HOOK_POINTS = (
    "writer.compact.begin",
    "writer.compact.staged",
    "writer.shard.tmp_written",
    "writer.shard.published",
    "writer.manifest.tmp_written",
    "writer.manifest.published",
    "writer.compact.cleanup",
)


def _staged_shard_name(generation: int) -> str:
    return f"shard-g{generation:010d}.cql"


def _compact_shard_name(generation: int, shard: int) -> str:
    return f"shard-g{generation:010d}-{shard:04d}.cql"


class StoreWriter:
    """Single-writer update handle over a store directory.

    Args:
        path: An existing ``*.cqs`` store directory (CQS1 or any CQS2
            generation -- the writer rebases on the newest valid one).

    Use as a context manager or call :meth:`close`; the writer keeps a
    read handle on its base generation for index/version lookups.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._store = ShardedStore.open(self.path)
        self._puts: Dict[_Key, object] = {}
        self._deletes: Set[_Key] = set()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def store(self) -> ShardedStore:
        """The writer's base snapshot (the parent of the next commit)."""
        return self._store

    @property
    def generation(self) -> int:
        return self._store.generation

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- staging -------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Staged mutations (puts + deletes) awaiting :meth:`commit`."""
        with self._lock:
            return len(self._puts) + len(self._deletes)

    def put(self, gate: str, qubits: Sequence[int], result) -> None:
        """Stage one new or updated pulse.

        ``result`` is a :class:`~repro.compression.pipeline.CompressionResult`
        (what the compiler emits); its compressed record must be bound
        to the same (gate, qubits) it is stored under -- enforced here
        and again by the serializer at commit.
        """
        key = normalize_key(gate, qubits)
        compressed = result.compressed
        if (compressed.gate, tuple(compressed.qubits or ())) != key:
            raise StoreError(
                f"staged record for {key} is bound to "
                f"({compressed.gate!r}, {compressed.qubits})"
            )
        with self._lock:
            self._puts[key] = result
            self._deletes.discard(key)

    def delete(self, gate: str, qubits: Sequence[int]) -> None:
        """Stage one deletion (published as a tombstone)."""
        key = normalize_key(gate, qubits)
        with self._lock:
            if key in self._puts:
                del self._puts[key]
                if key not in self._store:
                    return
            elif key not in self._store:
                raise StoreError(
                    f"store {self._store.device_name!r} holds no pulse for "
                    f"gate {key[0]!r} on qubits {key[1]}"
                )
            self._deletes.add(key)

    def discard_pending(self) -> None:
        """Drop every staged mutation without committing."""
        with self._lock:
            self._puts.clear()
            self._deletes.clear()

    # -- the atomic publish primitive ---------------------------------------

    def _publish(self, name: str, data: bytes, tmp_point: str, done_point: str) -> None:
        """temp + fsync + rename + dir-fsync, with chaos yield points.

        ``tmp_point`` fires after the payload is durable under the temp
        name (a crash here orphans one ``*.tmp-*`` file); ``done_point``
        fires after the rename is durable.
        """
        target = self.path / name
        tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            preempt(tmp_point)
            os.replace(tmp, target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        fsync_dir(self.path)
        preempt(done_point)

    # -- commit --------------------------------------------------------------

    def commit(self) -> ShardedStore:
        """Publish every staged mutation as one new generation.

        Returns a read handle on the new generation (also adopted as
        the writer's base).  A no-op commit (nothing staged) returns
        the current base unchanged.  On any failure -- including an
        injected crash -- the store directory still opens as either the
        old or the new generation.
        """
        with self._lock:
            if not self._puts and not self._deletes:
                return self._store
            base = self._store
            generation = base.generation + 1
            preempt("writer.commit.begin")

            staged_keys = sorted(self._puts)
            entries = tuple(
                LibraryEntry(
                    gate=key[0],
                    qubits=key[1],
                    mse=self._puts[key].mse,
                    threshold=self._puts[key].threshold,
                    compressed=self._puts[key].compressed,
                )
                for key in staged_keys
            )
            staged_file: Optional[str] = None
            spans = []
            if entries:
                blob, spans = serialize_library_indexed(
                    LibraryBitstream(
                        device_name=base.device_name,
                        window_size=base.window_size,
                        variant=base.variant,
                        entries=entries,
                    )
                )
                staged_file = _staged_shard_name(generation)
            preempt("writer.commit.staged")

            base_files = [base.shard_path(s).name for s in range(base.shard_count)]
            if staged_file is not None:
                self._publish(
                    staged_file,
                    blob,
                    "writer.shard.tmp_written",
                    "writer.shard.published",
                )

            index_rows: List[Dict] = []
            live_per_file = [0] * (len(base_files) + (1 if staged_file else 0))
            for key in base.keys():
                if key in self._puts or key in self._deletes:
                    continue
                record = base.record_info(*key)
                index_rows.append(_entry_row(record, record.shard))
                live_per_file[record.shard] += 1
            staged_shard = len(base_files)
            for key, span in zip(staged_keys, spans):
                result = self._puts[key]
                if key in base:
                    version = base.record_info(*key).version + 1
                else:
                    version = base.tombstones.get(key, 0) + 1
                index_rows.append(
                    {
                        "gate": key[0],
                        "qubits": list(key[1]),
                        "shard": staged_shard,
                        "offset": span.offset,
                        "length": span.length,
                        "mse": result.mse,
                        "threshold": result.threshold,
                        "version": version,
                    }
                )
                live_per_file[staged_shard] += 1

            tombstones = {
                key: version
                for key, version in base.tombstones.items()
                if key not in self._puts
            }
            for key in sorted(self._deletes):
                tombstones[key] = base.record_info(*key).version + 1

            shard_table = [
                {
                    "file": name,
                    "n_entries": live_per_file[position],
                    "n_bytes": (self.path / name).stat().st_size,
                }
                for position, name in enumerate(
                    base_files + ([staged_file] if staged_file else [])
                )
            ]
            self._publish_manifest(
                generation, base.generation, shard_table, index_rows, tombstones
            )
            preempt("writer.commit.cleanup")
            self._cleanup(
                keep_files={row["file"] for row in shard_table} | set(base_files),
                parent_generation=base.generation,
            )
            self._puts.clear()
            self._deletes.clear()
            return self._rebase(generation)

    # -- compaction ----------------------------------------------------------

    def compact(self) -> ShardedStore:
        """Re-encode live records into fresh shards; drop dead bytes.

        Publishes a new generation whose shard table is exactly
        ``n_shards`` hash-routed files rebuilt through the fused
        serializer: superseded record bytes and tombstones are gone,
        per-record versions are preserved (compaction moves bytes, it
        does not change logical content, so caches stay valid).
        Requires a clean slate -- commit or discard staged mutations
        first.
        """
        with self._lock:
            if self._puts or self._deletes:
                raise StoreError(
                    "commit or discard staged mutations before compacting"
                )
            base = self._store
            generation = base.generation + 1
            preempt("writer.compact.begin")

            keys = base.keys()
            parsed = base.read_many(keys)
            by_shard: Dict[int, List[Tuple[_Key, object]]] = {
                shard: [] for shard in range(base.n_shards)
            }
            for key, compressed in zip(keys, parsed):
                by_shard[shard_index(*key, base.n_shards)].append((key, compressed))

            blobs: List[bytes] = []
            index_rows: List[Dict] = []
            shard_table: List[Dict] = []
            for shard in range(base.n_shards):
                members = by_shard[shard]
                entries = tuple(
                    LibraryEntry(
                        gate=key[0],
                        qubits=key[1],
                        mse=base.record_info(*key).mse,
                        threshold=base.record_info(*key).threshold,
                        compressed=compressed,
                    )
                    for key, compressed in members
                )
                blob, spans = serialize_library_indexed(
                    LibraryBitstream(
                        device_name=base.device_name,
                        window_size=base.window_size,
                        variant=base.variant,
                        entries=entries,
                    )
                )
                blobs.append(blob)
                file_name = _compact_shard_name(generation, shard)
                shard_table.append(
                    {
                        "file": file_name,
                        "n_entries": len(entries),
                        "n_bytes": len(blob),
                    }
                )
                for (key, _compressed), span in zip(members, spans):
                    record = base.record_info(*key)
                    index_rows.append(
                        _entry_row(
                            StoreRecord(
                                gate=key[0],
                                qubits=key[1],
                                shard=shard,
                                offset=span.offset,
                                length=span.length,
                                mse=record.mse,
                                threshold=record.threshold,
                                version=record.version,
                            ),
                            shard,
                        )
                    )
            preempt("writer.compact.staged")
            for row, blob in zip(shard_table, blobs):
                self._publish(
                    row["file"],
                    blob,
                    "writer.shard.tmp_written",
                    "writer.shard.published",
                )
            self._publish_manifest(
                generation, base.generation, shard_table, index_rows, {}
            )
            preempt("writer.compact.cleanup")
            base_files = [base.shard_path(s).name for s in range(base.shard_count)]
            self._cleanup(
                keep_files={row["file"] for row in shard_table} | set(base_files),
                parent_generation=base.generation,
            )
            return self._rebase(generation)

    # -- shared publish / cleanup machinery -----------------------------------

    def _publish_manifest(
        self,
        generation: int,
        parent_generation: int,
        shard_table: List[Dict],
        index_rows: List[Dict],
        tombstones: Dict[_Key, int],
    ) -> None:
        base = self._store
        manifest = {
            "magic": STORE_MAGIC_V2,
            "format_version": STORE_FORMAT_VERSION_V2,
            "generation": generation,
            "parent_generation": parent_generation,
            "device_name": base.device_name,
            "variant": base.variant,
            "window_size": base.window_size,
            "n_shards": base.n_shards,
            "n_entries": len(index_rows),
            "shards": shard_table,
            "entries": index_rows,
            "tombstones": [
                {"gate": key[0], "qubits": list(key[1]), "version": version}
                for key, version in sorted(tombstones.items())
            ],
        }
        self._publish(
            generation_manifest_name(generation),
            (json.dumps(manifest, indent=1) + "\n").encode("utf-8"),
            "writer.manifest.tmp_written",
            "writer.manifest.published",
        )

    def _cleanup(self, keep_files: Set[str], parent_generation: int) -> None:
        """Sweep state no crash-recovery path can need any more.

        Runs strictly *after* the new manifest is durable, so a crash
        mid-sweep only leaves extra files behind (which open() ignores
        and the next commit's sweep retires).  The parent generation's
        manifest and files are retained on purpose: they are the
        fallback if the just-published manifest is later found torn.
        """
        for gen, manifest_path in list_generation_manifests(self.path):
            if 0 < gen < parent_generation:
                manifest_path.unlink(missing_ok=True)
        for shard_file in self.path.glob("shard-*.cql"):
            if shard_file.name not in keep_files:
                shard_file.unlink(missing_ok=True)
        for orphan in self.path.glob("*.tmp-*"):
            orphan.unlink(missing_ok=True)

    def _rebase(self, expected_generation: int) -> ShardedStore:
        fresh = ShardedStore.open(self.path)
        if fresh.generation != expected_generation:
            raise StoreError(
                f"published generation {expected_generation} but the "
                f"directory reopened as generation {fresh.generation}"
            )
        old, self._store = self._store, fresh
        old.close()
        return fresh


def _entry_row(record: StoreRecord, shard: int) -> Dict:
    return {
        "gate": record.gate,
        "qubits": list(record.qubits),
        "shard": shard,
        "offset": record.offset,
        "length": record.length,
        "mse": record.mse,
        "threshold": record.threshold,
        "version": record.version,
    }
