"""Scaling models, histograms and report rendering."""

from repro.analysis.bandwidth import (
    VendorParams,
    IBM_PARAMS,
    GOOGLE_PARAMS,
    memory_capacity_per_qubit,
    bandwidth_per_qubit,
    capacity_curve,
    bandwidth_curve,
)
from repro.analysis.histogram import window_occupancy_histogram, total_windows
from repro.analysis.report import (
    render_table,
    print_table,
    format_number,
    table_payload,
)

__all__ = [
    "VendorParams",
    "IBM_PARAMS",
    "GOOGLE_PARAMS",
    "memory_capacity_per_qubit",
    "bandwidth_per_qubit",
    "capacity_curve",
    "bandwidth_curve",
    "window_occupancy_histogram",
    "total_windows",
    "render_table",
    "print_table",
    "format_number",
    "table_payload",
]
