"""Plain-text table/figure renderers for the benchmark harness.

Every bench prints its rows through these helpers so the output reads
like the paper's tables: a title, aligned columns, and (where we have
them) the paper's reference values alongside our measurements.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_number", "print_table", "table_payload"]


def format_number(value, digits: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{digits}g}"
        return f"{value:.{digits}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def table_payload(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: Optional[str] = None,
) -> Dict:
    """The same table as a JSON-serializable dict.

    Numeric cells stay numeric (numpy scalars are coerced to plain
    Python); everything else is stringified, so the payload always
    survives ``json.dumps``.  This is what makes the figure/table
    benches machine-readable alongside their ASCII rendering.
    """

    def _cell(value):
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value
        if hasattr(value, "item"):  # numpy scalar
            return value.item()
        return str(value)

    return {
        "title": title,
        "headers": list(headers),
        "rows": [[_cell(cell) for cell in row] for row in rows],
        "note": note,
    }


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: Optional[str] = None,
) -> None:
    print("\n" + render_table(title, headers, rows, note))
