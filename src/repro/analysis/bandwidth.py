"""Section III's capacity and bandwidth scaling models (Fig 5, Table I).

Implements the paper's closed-form estimates:

    MC = sum_i fs*Ns*tau_i  (1Q gates) + d * sum_j fs*Ns*tau_j (2Q)
         + fs*Ns*tau_readout
    BW = fs * Ns

per qubit, with vendor parameter sets from Table I, plus the coupler
overhead factor used for the capacity curves ("some approximations made
to account for coupler waveforms").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ReproError

__all__ = [
    "VendorParams",
    "IBM_PARAMS",
    "GOOGLE_PARAMS",
    "memory_capacity_per_qubit",
    "bandwidth_per_qubit",
    "capacity_curve",
    "bandwidth_curve",
]


@dataclass(frozen=True)
class VendorParams:
    """Table I's per-vendor control parameters."""

    name: str
    sampling_rate: float  # fs, samples/s
    sample_bits: int  # Ns, bits per (I+Q) sample
    tau_1q: Tuple[float, ...]  # 1Q gate latencies, seconds
    tau_2q: Tuple[float, ...]  # 2Q gate latencies, seconds
    tau_readout: float
    mean_degree: float  # d: coupled neighbors per qubit
    coupler_overhead: float = 1.0  # extra waveforms per qubit (couplers)


IBM_PARAMS = VendorParams(
    name="IBM",
    sampling_rate=4.54e9,
    sample_bits=32,
    tau_1q=(30e-9, 30e-9),  # X, SX
    tau_2q=(300e-9,),  # CX (cross-resonance)
    tau_readout=300e-9,
    mean_degree=2.0,  # heavy-hexagonal
    coupler_overhead=2.05,
)

GOOGLE_PARAMS = VendorParams(
    name="Google",
    sampling_rate=1.0e9,
    sample_bits=28,
    tau_1q=(25e-9, 25e-9, 25e-9),  # fsim/iSWAP/phasedXZ set
    tau_2q=(30e-9, 30e-9),
    tau_readout=500e-9,
    mean_degree=3.6,  # grid
    coupler_overhead=1.6,
)


def memory_capacity_per_qubit(
    params: VendorParams, include_couplers: bool = False
) -> float:
    """Bytes of waveform memory per qubit (the paper's MC equation).

    IBM parameters give ~18 KB; ``include_couplers`` applies the
    coupler overhead used for the Fig 5a capacity curves.
    """
    fs, bits = params.sampling_rate, params.sample_bits
    one_q = sum(fs * bits * tau for tau in params.tau_1q)
    two_q = params.mean_degree * sum(fs * bits * tau for tau in params.tau_2q)
    readout = fs * bits * params.tau_readout
    total_bits = one_q + two_q + readout
    if include_couplers:
        total_bits *= params.coupler_overhead
    return total_bits / 8


def bandwidth_per_qubit(params: VendorParams) -> float:
    """Bytes/second to stream one qubit's waveform (BW = fs * Ns)."""
    return params.sampling_rate * params.sample_bits / 8


def capacity_curve(
    params: VendorParams, max_qubits: int, include_couplers: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """(qubits, required capacity in bytes) -- Fig 5a's linear scaling."""
    _check_qubits(max_qubits)
    qubits = np.arange(0, max_qubits + 1)
    per_qubit = memory_capacity_per_qubit(params, include_couplers)
    return qubits, qubits * per_qubit


def bandwidth_curve(
    params: VendorParams, max_qubits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(qubits, required bandwidth in bytes/s) -- Fig 5b."""
    _check_qubits(max_qubits)
    qubits = np.arange(0, max_qubits + 1)
    return qubits, qubits * bandwidth_per_qubit(params)


def _check_qubits(max_qubits: int) -> None:
    if max_qubits < 1:
        raise ReproError(f"need >= 1 qubit, got {max_qubits}")
