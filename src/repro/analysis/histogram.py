"""Samples-per-window histograms (Fig 11).

Counts, across an entire compressed pulse library, how many memory
words each window occupies (coefficients + RLE codeword).  The paper's
empirical result -- at most 3 words per window for int-DCT-W at WS=8
and WS=16 -- is what justifies the 3-bank uniform memory design.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.core.compiler import CompressedPulseLibrary

__all__ = ["window_occupancy_histogram", "total_windows"]


def window_occupancy_histogram(compiled: CompressedPulseLibrary) -> Dict[int, int]:
    """Histogram {words per window: count} over all library waveforms.

    Counts the per-window paired occupancy (max of I and Q, as stored).
    """
    histogram: Counter = Counter()
    for _key, result in compiled:
        for words in result.compressed.window_words:
            histogram[words] += 1
    return dict(sorted(histogram.items()))


def total_windows(compiled: CompressedPulseLibrary) -> int:
    return sum(result.compressed.n_windows for _key, result in compiled)
