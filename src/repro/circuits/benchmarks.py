"""Benchmark circuit builders (paper Table VI).

These reproduce the QASMBench-derived workloads the paper evaluates:
swap, toffoli, qft-4, adder-4, bv-5, four QAOA instances, plus the
40-qubit QAOA used in the bandwidth study.  Each builder returns a
logical :class:`Circuit` ending in measurement; transpilation onto a
device adds routing SWAPs, so physical CX counts exceed the logical
ones just as on IBM's heavy-hex machines.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.circuits.circuit import Circuit

__all__ = [
    "swap_circuit",
    "toffoli_circuit",
    "qft_circuit",
    "adder4_circuit",
    "bernstein_vazirani_circuit",
    "qaoa_circuit",
    "ghz_circuit",
    "paper_benchmarks",
]


def swap_circuit() -> Circuit:
    """Table VI's ``swap``: move an excitation across a SWAP (3 CX)."""
    circuit = Circuit(2, name="swap")
    circuit.x(0)
    circuit.swap(0, 1)
    circuit.measure()
    return circuit


def toffoli_circuit() -> Circuit:
    """Table VI's ``toffoli``: 111 <- CCX on |110> (12 CX transpiled)."""
    circuit = Circuit(3, name="toffoli")
    circuit.x(0)
    circuit.x(1)
    circuit.ccx(0, 1, 2)
    circuit.measure()
    return circuit


def qft_circuit(n: int = 4, prepare_ones: bool = True) -> Circuit:
    """Quantum Fourier Transform on |1...1> (QASMBench's qft-4)."""
    if n < 1:
        raise SimulationError(f"qft needs >= 1 qubit, got {n}")
    circuit = Circuit(n, name=f"qft-{n}")
    if prepare_ones:
        for q in range(n):
            circuit.x(q)
    for target in range(n):
        circuit.h(target)
        for control in range(target + 1, n):
            circuit.cp(math.pi / 2 ** (control - target), control, target)
    for q in range(n // 2):
        circuit.swap(q, n - 1 - q)
    circuit.measure()
    return circuit


def adder4_circuit() -> Circuit:
    """4-qubit ripple-carry full adder (QASMBench's adder-4).

    Computes 1 + 1 (+ carry-in 0): qubits are (cin, a, b, cout); the
    MAJ/UMA construction leaves b = a+b's sum bit and cout the carry.
    """
    circuit = Circuit(4, name="adder-4")
    cin, a, b, cout = 0, 1, 2, 3
    circuit.x(a)
    circuit.x(b)
    # MAJ(cin, b, a)
    circuit.cx(a, b)
    circuit.cx(a, cin)
    circuit.ccx(cin, b, a)
    # carry out
    circuit.cx(a, cout)
    # UMA(cin, b, a)
    circuit.ccx(cin, b, a)
    circuit.cx(a, cin)
    circuit.cx(cin, b)
    circuit.measure()
    return circuit


def bernstein_vazirani_circuit(secret: str = "01010") -> Circuit:
    """Bernstein-Vazirani with a hidden string (Table VI's bv-5).

    ``len(secret)`` data qubits plus one ancilla; the default secret has
    two 1-bits, matching the paper's 2-CNOT oracle.
    """
    if not secret or any(b not in "01" for b in secret):
        raise SimulationError(f"invalid secret {secret!r}")
    n = len(secret)
    circuit = Circuit(n + 1, name=f"bv-{n}")
    ancilla = n
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q in range(n):
        circuit.h(q)
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(q, ancilla)
    for q in range(n):
        circuit.h(q)
    circuit.measure(range(n))
    return circuit


def _qaoa_graph(n: int, kind: str, seed: int) -> List[Tuple[int, int]]:
    if kind == "complete":
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    if kind == "3-regular":
        graph = nx.random_regular_graph(3, n, seed=seed)
        return sorted(tuple(sorted(e)) for e in graph.edges)
    if kind == "erdos":
        graph = nx.gnp_random_graph(n, 0.5, seed=seed)
        return sorted(tuple(sorted(e)) for e in graph.edges)
    raise SimulationError(f"unknown QAOA graph kind {kind!r}")


def qaoa_circuit(
    n: int,
    kind: str = "3-regular",
    p: int = 1,
    seed: int = 7,
    name: Optional[str] = None,
) -> Circuit:
    """MaxCut QAOA ansatz with fixed (gamma, beta) angles.

    Args:
        n: Qubit count.
        kind: "complete", "3-regular" or "erdos" cost graph.
        p: QAOA depth (layers).
        seed: Graph seed (angle schedule is deterministic).
        name: Circuit label (defaults to ``qaoa-n``).
    """
    if n < 2:
        raise SimulationError(f"qaoa needs >= 2 qubits, got {n}")
    edges = _qaoa_graph(n, kind, seed)
    circuit = Circuit(n, name=name or f"qaoa-{n}")
    for q in range(n):
        circuit.h(q)
    for layer in range(p):
        gamma = 0.8 * (layer + 1) / p
        beta = 0.4 / (layer + 1)
        for a, b in edges:
            circuit.rzz(2 * gamma, a, b)
        for q in range(n):
            circuit.rx(2 * beta, q)
    circuit.measure()
    return circuit


def ghz_circuit(n: int) -> Circuit:
    """n-qubit GHZ state preparation (used by examples/tests)."""
    circuit = Circuit(n, name=f"ghz-{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    circuit.measure()
    return circuit


def paper_benchmarks() -> List[Circuit]:
    """The nine fidelity benchmarks of Table VI, in paper order."""
    return [
        swap_circuit(),
        toffoli_circuit(),
        qft_circuit(4),
        adder4_circuit(),
        bernstein_vazirani_circuit("01010"),
        qaoa_circuit(6, kind="complete", p=2, seed=11, name="qaoa-6"),
        qaoa_circuit(8, kind="3-regular", p=1, seed=8, name="qaoa-8a"),
        qaoa_circuit(8, kind="3-regular", p=2, seed=21, name="qaoa-8b"),
        qaoa_circuit(10, kind="erdos", p=1, seed=10, name="qaoa-10"),
    ]
