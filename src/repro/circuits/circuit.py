"""A minimal quantum-circuit IR.

Stands in for Qiskit's ``QuantumCircuit`` for everything the paper
needs: building benchmark circuits, transpiling to the device basis
{x, sx, rz, cx}, scheduling pulses, and statevector simulation.

Conventions: qubit 0 is the first tensor axis (most significant bit of
the printed bitstring); ``measure`` instructions are explicit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["Instruction", "Circuit"]


@dataclass(frozen=True)
class Instruction:
    """One gate (or measurement) application."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.qubits:
            raise SimulationError(f"instruction {self.name!r} touches no qubits")
        if len(set(self.qubits)) != len(self.qubits):
            raise SimulationError(
                f"instruction {self.name!r} repeats a qubit: {self.qubits}"
            )


class Circuit:
    """An ordered list of instructions on ``n_qubits`` qubits."""

    def __init__(self, n_qubits: int, name: str = "") -> None:
        if n_qubits < 1:
            raise SimulationError(f"need at least 1 qubit, got {n_qubits}")
        self.n_qubits = n_qubits
        self.name = name
        self.instructions: List[Instruction] = []

    # -- generic builder ------------------------------------------------------

    def append(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
    ) -> "Circuit":
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not 0 <= q < self.n_qubits:
                raise SimulationError(
                    f"qubit {q} outside 0..{self.n_qubits - 1} in {name!r}"
                )
        self.instructions.append(Instruction(name, qubits, tuple(params)))
        return self

    # -- named helpers (chainable) --------------------------------------------

    def x(self, q: int) -> "Circuit":
        return self.append("x", (q,))

    def y(self, q: int) -> "Circuit":
        return self.append("y", (q,))

    def z(self, q: int) -> "Circuit":
        return self.append("z", (q,))

    def h(self, q: int) -> "Circuit":
        return self.append("h", (q,))

    def s(self, q: int) -> "Circuit":
        return self.append("s", (q,))

    def sdg(self, q: int) -> "Circuit":
        return self.append("sdg", (q,))

    def t(self, q: int) -> "Circuit":
        return self.append("t", (q,))

    def tdg(self, q: int) -> "Circuit":
        return self.append("tdg", (q,))

    def sx(self, q: int) -> "Circuit":
        return self.append("sx", (q,))

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.append("rx", (q,), (theta,))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.append("ry", (q,), (theta,))

    def rz(self, phi: float, q: int) -> "Circuit":
        return self.append("rz", (q,), (phi,))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append("cx", (control, target))

    def cz(self, a: int, b: int) -> "Circuit":
        return self.append("cz", (a, b))

    def cp(self, lam: float, a: int, b: int) -> "Circuit":
        return self.append("cp", (a, b), (lam,))

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self.append("rzz", (a, b), (theta,))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append("swap", (a, b))

    def ccx(self, a: int, b: int, target: int) -> "Circuit":
        return self.append("ccx", (a, b, target))

    def measure(self, qubits: Optional[Iterable[int]] = None) -> "Circuit":
        """Measure the given qubits (default: all) in the Z basis."""
        qubits = tuple(qubits) if qubits is not None else tuple(range(self.n_qubits))
        return self.append("measure", qubits)

    # -- inspection -------------------------------------------------------------

    @property
    def gate_instructions(self) -> List[Instruction]:
        """Instructions excluding measurements."""
        return [inst for inst in self.instructions if inst.name != "measure"]

    def count_ops(self) -> Dict[str, int]:
        return dict(Counter(inst.name for inst in self.instructions))

    @property
    def cx_count(self) -> int:
        return sum(1 for i in self.instructions if i.name == "cx")

    @property
    def two_qubit_count(self) -> int:
        return sum(
            1
            for i in self.gate_instructions
            if len(i.qubits) == 2
        )

    def depth(self) -> int:
        """Circuit depth counting every instruction as one layer slot."""
        frontier = [0] * self.n_qubits
        for inst in self.instructions:
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def copy(self) -> "Circuit":
        out = Circuit(self.n_qubits, self.name)
        out.instructions = list(self.instructions)
        return out

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, qubits={self.n_qubits}, "
            f"instructions={len(self.instructions)})"
        )
