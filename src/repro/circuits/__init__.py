"""Circuit IR, transpiler, scheduler and benchmark builders."""

from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.transpile import transpile, decompose_instruction, BASIS_GATES
from repro.circuits.schedule import (
    GateDurations,
    IBM_DURATIONS,
    ScheduledGate,
    Schedule,
    schedule_circuit,
    BYTES_PER_STREAM_PER_SECOND,
)
from repro.circuits.benchmarks import (
    swap_circuit,
    toffoli_circuit,
    qft_circuit,
    adder4_circuit,
    bernstein_vazirani_circuit,
    qaoa_circuit,
    ghz_circuit,
    paper_benchmarks,
)

__all__ = [
    "Circuit",
    "Instruction",
    "transpile",
    "decompose_instruction",
    "BASIS_GATES",
    "GateDurations",
    "IBM_DURATIONS",
    "ScheduledGate",
    "Schedule",
    "schedule_circuit",
    "BYTES_PER_STREAM_PER_SECOND",
    "swap_circuit",
    "toffoli_circuit",
    "qft_circuit",
    "adder4_circuit",
    "bernstein_vazirani_circuit",
    "qaoa_circuit",
    "ghz_circuit",
    "paper_benchmarks",
]
