"""ASAP pulse scheduling and concurrency/bandwidth profiling.

Section III's circuit-scalability study (Fig 5c) needs, for each
benchmark, the peak and average waveform-memory bandwidth: every
concurrently driven qubit consumes one waveform stream of
``fs * 32 bits`` (18.16 GB/s at IBM rates).  The scheduler places basis
gates as soon as their qubits are free and the profiler walks the
resulting timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DeviceError, ScheduleError
from repro.circuits.circuit import Circuit
from repro.devices.backend import DeviceModel

__all__ = [
    "GateDurations",
    "IBM_DURATIONS",
    "ScheduledGate",
    "Schedule",
    "schedule_circuit",
    "BYTES_PER_STREAM_PER_SECOND",
]

#: One waveform stream: 4.54 GS/s x 32-bit I+Q samples = 18.16 GB/s.
BYTES_PER_STREAM_PER_SECOND = 4.54e9 * 4


@dataclass(frozen=True)
class GateDurations:
    """Fixed gate durations in samples (Table I's IBM latencies)."""

    x: int = 144
    sx: int = 144
    rz: int = 0
    cx: int = 1360
    measure: int = 1360

    def duration(self, gate: str, qubits: Tuple[int, ...]) -> int:
        try:
            return getattr(self, gate)
        except AttributeError:
            raise ScheduleError(f"no duration for gate {gate!r}") from None


IBM_DURATIONS = GateDurations()


@dataclass(frozen=True)
class ScheduledGate:
    """One placed pulse: [start, start + duration) in samples."""

    gate: str
    qubits: Tuple[int, ...]
    start: int
    duration: int

    @property
    def stop(self) -> int:
        return self.start + self.duration

    @property
    def streams(self) -> int:
        """Concurrent waveform streams this gate occupies (one per
        driven qubit; a CR gate drives both control and target lines)."""
        return len(self.qubits)


@dataclass
class Schedule:
    """A timed pulse schedule with concurrency analytics."""

    entries: List[ScheduledGate] = field(default_factory=list)
    dt: float = 1 / 4.54e9

    @property
    def makespan(self) -> int:
        """Total schedule length in samples."""
        return max((e.stop for e in self.entries), default=0)

    @property
    def duration_seconds(self) -> float:
        return self.makespan * self.dt

    def _events(self) -> List[Tuple[int, int, int]]:
        """(time, stream delta, gate delta) change points, sorted."""
        events: Dict[int, List[int]] = {}
        for entry in self.entries:
            if entry.duration == 0:
                continue
            start = events.setdefault(entry.start, [0, 0])
            start[0] += entry.streams
            start[1] += 1
            stop = events.setdefault(entry.stop, [0, 0])
            stop[0] -= entry.streams
            stop[1] -= 1
        return sorted((t, d[0], d[1]) for t, d in events.items())

    def concurrency_profile(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, active streams, active gates) step profiles."""
        events = self._events()
        times, streams, gates = [0], [0], [0]
        current_streams = current_gates = 0
        for t, ds, dg in events:
            current_streams += ds
            current_gates += dg
            times.append(t)
            streams.append(current_streams)
            gates.append(current_gates)
        return np.asarray(times), np.asarray(streams), np.asarray(gates)

    @property
    def peak_concurrent_gates(self) -> int:
        """Fig 17a's metric: most pulses in flight at once."""
        _t, _s, gates = self.concurrency_profile()
        return int(gates.max(initial=0))

    @property
    def peak_concurrent_streams(self) -> int:
        _t, streams, _g = self.concurrency_profile()
        return int(streams.max(initial=0))

    @property
    def average_concurrent_streams(self) -> float:
        """Time-weighted mean stream count over the makespan."""
        times, streams, _g = self.concurrency_profile()
        if self.makespan == 0:
            return 0.0
        spans = np.diff(np.append(times, self.makespan))
        return float((streams * spans).sum() / self.makespan)

    # -- bandwidth (Fig 5c) -----------------------------------------------------

    def peak_bandwidth_bytes(
        self, per_stream: float = BYTES_PER_STREAM_PER_SECOND
    ) -> float:
        return self.peak_concurrent_streams * per_stream

    def average_bandwidth_bytes(
        self, per_stream: float = BYTES_PER_STREAM_PER_SECOND
    ) -> float:
        return self.average_concurrent_streams * per_stream


def schedule_circuit(
    circuit: Circuit,
    durations: Optional[GateDurations] = None,
    device: Optional[DeviceModel] = None,
) -> Schedule:
    """ASAP-schedule a basis circuit.

    Args:
        circuit: A circuit in the pulse basis (x/sx/rz/cx/measure).
        durations: Fixed durations (default Table I's IBM values).
        device: If given, use its calibrated per-gate durations instead.

    Raises:
        ScheduleError: For gates without a duration.
    """
    if durations is None:
        durations = IBM_DURATIONS
    schedule = Schedule(dt=device.dt if device else 1 / 4.54e9)
    frontier = [0] * circuit.n_qubits
    for inst in circuit.instructions:
        if inst.name == "measure":
            # Measurement is concurrent across all listed qubits --
            # serializing readout degrades fidelity (Section III-A) --
            # so the pulses start together after every qubit is free.
            start = max(frontier[q] for q in inst.qubits)
            for q in inst.qubits:
                length = _duration(inst.name, (q,), durations, device)
                schedule.entries.append(
                    ScheduledGate("measure", (q,), start, length)
                )
                frontier[q] = start + length
            continue
        start = max(frontier[q] for q in inst.qubits)
        length = _duration(inst.name, inst.qubits, durations, device)
        schedule.entries.append(
            ScheduledGate(inst.name, inst.qubits, start, length)
        )
        for q in inst.qubits:
            frontier[q] = start + length
    return schedule


def _duration(
    gate: str,
    qubits: Tuple[int, ...],
    durations: GateDurations,
    device: Optional[DeviceModel],
) -> int:
    if device is not None:
        try:
            return device.gate_duration_samples(gate, qubits)
        except DeviceError:
            pass  # fall back to the fixed table (e.g. lattice qubits)
    return durations.duration(gate, qubits)
