"""Transpilation to the IBM basis {x, sx, rz, cx} with greedy routing.

Plays the role of the "standard Qiskit transpiler" the paper uses
(Section VI): high-level gates are rewritten into the calibrated pulse
basis, and two-qubit gates between uncoupled qubits are routed by
inserting SWAPs along a shortest path.  Directed CR edges are both
calibrated on our devices, so no direction fixing is needed.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import ScheduleError
from repro.circuits.circuit import Circuit, Instruction
from repro.devices.topology import CouplingMap

__all__ = ["transpile", "decompose_instruction", "BASIS_GATES"]

BASIS_GATES = ("x", "sx", "rz", "cx", "measure")

_PI = math.pi


def _u_zxz(circuit: Circuit, q: int, pre: float, post: float) -> None:
    """rz(pre) . sx . rz(post) building block."""
    circuit.rz(pre, q)
    circuit.sx(q)
    circuit.rz(post, q)


def decompose_instruction(inst: Instruction, out: Circuit) -> None:
    """Append the basis decomposition of one instruction to ``out``.

    Decompositions follow the standard identities (H = rz.sx.rz,
    CP via two CXs, SWAP = 3 CX, CCX = 6 CX + single-qubit layer).
    """
    name, qubits, params = inst.name, inst.qubits, inst.params
    if name in ("x", "sx", "rz", "cx", "measure"):
        out.append(name, qubits, params)
    elif name == "i":
        pass
    elif name == "z":
        out.rz(_PI, qubits[0])
    elif name == "s":
        out.rz(_PI / 2, qubits[0])
    elif name == "sdg":
        out.rz(-_PI / 2, qubits[0])
    elif name == "t":
        out.rz(_PI / 4, qubits[0])
    elif name == "tdg":
        out.rz(-_PI / 4, qubits[0])
    elif name == "y":
        out.rz(_PI, qubits[0])
        out.x(qubits[0])
    elif name == "h":
        _u_zxz(out, qubits[0], _PI / 2, _PI / 2)
    elif name == "rx":
        (theta,) = params
        # rx(theta) = rz(-pi/2) sx rz(pi - theta) sx rz(-pi/2) ... use
        # the standard u3 form: rx = u3(theta, -pi/2, pi/2).
        _append_u3(out, qubits[0], theta, -_PI / 2, _PI / 2)
    elif name == "ry":
        (theta,) = params
        _append_u3(out, qubits[0], theta, 0.0, 0.0)
    elif name == "cz":
        a, b = qubits
        decompose_instruction(Instruction("h", (b,)), out)
        out.cx(a, b)
        decompose_instruction(Instruction("h", (b,)), out)
    elif name == "cp":
        (lam,) = params
        a, b = qubits
        out.rz(lam / 2, a)
        out.cx(a, b)
        out.rz(-lam / 2, b)
        out.cx(a, b)
        out.rz(lam / 2, b)
    elif name == "rzz":
        (theta,) = params
        a, b = qubits
        out.cx(a, b)
        out.rz(theta, b)
        out.cx(a, b)
    elif name == "swap":
        a, b = qubits
        out.cx(a, b)
        out.cx(b, a)
        out.cx(a, b)
    elif name == "ccx":
        _decompose_ccx(out, *qubits)
    else:
        raise ScheduleError(f"no decomposition for gate {name!r}")


def _append_u3(out: Circuit, q: int, theta: float, phi: float, lam: float) -> None:
    """u3 as rz-sx-rz-sx-rz (the standard IBM basis identity)."""
    out.rz(lam, q)
    out.sx(q)
    out.rz(theta + _PI, q)
    out.sx(q)
    out.rz(phi + 3 * _PI, q)


def _decompose_ccx(out: Circuit, a: int, b: int, c: int) -> None:
    """Standard 6-CX Toffoli."""
    decompose_instruction(Instruction("h", (c,)), out)
    out.cx(b, c)
    out.rz(-_PI / 4, c)
    out.cx(a, c)
    out.rz(_PI / 4, c)
    out.cx(b, c)
    out.rz(-_PI / 4, c)
    out.cx(a, c)
    out.rz(_PI / 4, b)
    out.rz(_PI / 4, c)
    decompose_instruction(Instruction("h", (c,)), out)
    out.cx(a, b)
    out.rz(_PI / 4, a)
    out.rz(-_PI / 4, b)
    out.cx(a, b)


def transpile(
    circuit: Circuit,
    coupling: Optional[CouplingMap] = None,
    initial_layout: Optional[List[int]] = None,
) -> Circuit:
    """Lower a circuit to the basis and route it onto a coupling map.

    Args:
        circuit: Logical circuit.
        coupling: Device connectivity; None skips routing (all-to-all).
        initial_layout: Logical-to-physical qubit map; default identity.

    Returns:
        A basis circuit on the device's qubits (``coupling.n_qubits``
        wide when routing).

    Raises:
        ScheduleError: If the circuit needs more qubits than the device
            has, or an unknown gate is encountered.
    """
    lowered = Circuit(circuit.n_qubits, name=circuit.name)
    for inst in circuit.instructions:
        decompose_instruction(inst, lowered)
    if coupling is None:
        return lowered
    if circuit.n_qubits > coupling.n_qubits:
        raise ScheduleError(
            f"circuit needs {circuit.n_qubits} qubits, device has "
            f"{coupling.n_qubits}"
        )
    layout = list(initial_layout or range(circuit.n_qubits))
    if len(layout) != circuit.n_qubits:
        raise ScheduleError("initial layout size mismatch")
    routed = Circuit(coupling.n_qubits, name=circuit.name)
    for inst in lowered.instructions:
        physical = tuple(layout[q] for q in inst.qubits)
        if len(physical) == 2 and inst.name == "cx" and not coupling.are_coupled(*physical):
            _route_and_apply(routed, coupling, layout, inst)
        else:
            routed.append(inst.name, physical, inst.params)
    return routed


def _route_and_apply(
    routed: Circuit,
    coupling: CouplingMap,
    layout: List[int],
    inst: Instruction,
) -> None:
    """Swap the control toward the target along a shortest path."""
    logical_a, logical_b = inst.qubits
    path = coupling.shortest_path(layout[logical_a], layout[logical_b])
    # Move the first endpoint down the path until adjacent.
    for step in range(len(path) - 2):
        here, there = path[step], path[step + 1]
        routed.cx(here, there)
        routed.cx(there, here)
        routed.cx(here, there)
        # Update the logical->physical map for whichever logicals sat
        # on those physical qubits.
        for logical, phys in enumerate(layout):
            if phys == here:
                layout[logical] = there
            elif phys == there:
                layout[logical] = here
    routed.append(inst.name, (layout[logical_a], layout[logical_b]), inst.params)
