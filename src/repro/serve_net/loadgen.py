"""Closed- and open-loop load generators for the ``CQN1`` serving tier.

Throughput alone hides the number that matters at scale -- what the
slowest percentile of requests experienced -- so both generators here
record per-request latency and report p50/p95/p99:

* **Closed loop** (:func:`run_closed_loop`): N connections, each
  sending its next batch the moment the previous response lands.
  Measures sustainable throughput and in-service latency; by
  construction it can never overrun the server, so it never observes
  overload.

* **Open loop** (:func:`run_open_loop`): requests fire on a fixed
  arrival schedule (:func:`repro.store.trace.arrival_times`),
  regardless of completions.  Driving the schedule past capacity is
  the overload probe: the server sheds with explicit
  ``STATUS_OVERLOAD`` replies (counted, not retried), and the
  generator itself keeps a hard bound on outstanding requests
  (``max_outstanding``) so neither side grows an unbounded queue --
  arrivals past the bound are counted as ``skipped``.  Open-loop
  latency is measured from the *scheduled* arrival, so client-side
  queueing under overdrive shows up in the percentiles, as it should.

Both return a :class:`LoadReport`; the network benchmark
(``repro bench --network``) and the ``repro loadgen`` CLI are thin
wrappers over these.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError, ServerOverloadedError, StoreError
from repro.obs import Histogram, Tracer, exact_quantile
from repro.serve_net.client import AsyncPulseClient, PulseClient, parse_address
from repro.serve_net.protocol import MODE_RECORD, MODE_SAMPLES
from repro.store.trace import arrival_times

__all__ = ["LoadReport", "latency_summary", "run_closed_loop", "run_open_loop"]

_Key = Tuple[str, Tuple[int, ...]]


def latency_summary(samples_s: Sequence[float]) -> Dict[str, Optional[float]]:
    """p50/p95/p99/mean/max of a latency sample set, in milliseconds.

    Quantiles go through :func:`repro.obs.exact_quantile` -- the same
    closest-ranks interpolation the metrics histograms use -- so a
    load report and a registry histogram over the same samples agree.
    """
    if not len(samples_s):
        return {"p50": None, "p95": None, "p99": None, "mean": None, "max": None}
    ms = sorted(float(sample) * 1e3 for sample in samples_s)
    return {
        "p50": exact_quantile(ms, 0.50, presorted=True),
        "p95": exact_quantile(ms, 0.95, presorted=True),
        "p99": exact_quantile(ms, 0.99, presorted=True),
        "mean": sum(ms) / len(ms),
        "max": ms[-1],
    }


@dataclass(frozen=True, slots=True)
class LoadReport:
    """What one load-generation run measured at the socket."""

    mode: str
    connections: int
    batch_size: int
    requests_sent: int
    requests_ok: int
    overloads: int
    errors: int
    skipped: int
    pulses_ok: int
    elapsed_s: float
    latencies_s: Tuple[float, ...] = field(repr=False)
    target_rate: float = 0.0
    max_outstanding: int = 0
    peak_outstanding: int = 0
    retries: int = 0
    #: Optional full latency histogram (``Histogram.snapshot()`` shape,
    #: seconds) -- present when the generator ran with
    #: ``collect_histogram=True``, absent from ``as_dict`` otherwise.
    histogram: Optional[Dict] = None

    @property
    def requests_per_s(self) -> float:
        return self.requests_ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def pulses_per_s(self) -> float:
        return self.pulses_ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def latency_ms(self) -> Dict[str, Optional[float]]:
        return latency_summary(self.latencies_s)

    def as_dict(self) -> Dict:
        out = {
            "mode": self.mode,
            "connections": self.connections,
            "batch_size": self.batch_size,
            "requests_sent": self.requests_sent,
            "requests_ok": self.requests_ok,
            "overloads": self.overloads,
            "errors": self.errors,
            "skipped": self.skipped,
            "pulses_ok": self.pulses_ok,
            "elapsed_s": self.elapsed_s,
            "requests_per_s": self.requests_per_s,
            "pulses_per_s": self.pulses_per_s,
            "latency_ms": self.latency_ms,
            "target_rate": self.target_rate,
            "max_outstanding": self.max_outstanding,
            "peak_outstanding": self.peak_outstanding,
            "retries": self.retries,
        }
        if self.histogram is not None:
            out["histogram"] = dict(self.histogram)
        return out


def _batches(
    trace: Sequence[Tuple[str, Sequence[int]]], batch_size: int
) -> List[List[Tuple[str, Sequence[int]]]]:
    if batch_size < 1:
        raise StoreError(f"batch_size must be >= 1, got {batch_size}")
    if not trace:
        raise StoreError("cannot generate load from an empty trace")
    return [
        list(trace[start : start + batch_size])
        for start in range(0, len(trace), batch_size)
    ]


def _resolve_mode(mode: Union[int, str]) -> int:
    if mode in (MODE_RECORD, MODE_SAMPLES):
        return int(mode)
    if mode == "records":
        return MODE_RECORD
    if mode == "samples":
        return MODE_SAMPLES
    raise StoreError(f"unknown fetch mode {mode!r}")


# ---------------------------------------------------------------------------
# Closed loop: threads + blocking clients.
# ---------------------------------------------------------------------------


def run_closed_loop(
    address: Union[str, Tuple[str, int]],
    trace: Sequence[Tuple[str, Sequence[int]]],
    batch_size: int = 64,
    connections: int = 4,
    mode: Union[int, str] = MODE_SAMPLES,
    timeout: float = 30.0,
    retries: int = 0,
    backoff: float = 0.05,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    collect_histogram: bool = False,
) -> LoadReport:
    """Drive the server as hard as N serial connections can.

    The trace is chopped into ``batch_size`` fetches and dealt
    round-robin across ``connections`` worker threads, each running a
    blocking :class:`~repro.serve_net.client.PulseClient` in a strict
    request/response loop.  ``retries``/``backoff`` are handed to each
    client (seeded per connection, so runs reproduce); the report's
    ``retries`` totals what the clients spent.  A ``tracer`` is shared
    by every client (sampled fetches propagate trace context to the
    server); ``collect_histogram=True`` additionally folds each latency
    into a log-bucketed :class:`~repro.obs.Histogram` carried on the
    report.
    """
    if connections < 1:
        raise StoreError(f"connections must be >= 1, got {connections}")
    host_port = parse_address(address)
    fetch_mode = _resolve_mode(mode)
    batches = _batches(trace, batch_size)
    lanes: List[List[List]] = [batches[i::connections] for i in range(connections)]
    lock = threading.Lock()
    latencies: List[float] = []
    histogram = Histogram("loadgen.latency_seconds") if collect_histogram else None
    counters = {"ok": 0, "overload": 0, "error": 0, "pulses": 0, "retries": 0}

    def _worker(index: int, lane: List[List]) -> None:
        with PulseClient(
            host_port,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            seed=seed + index,
            tracer=tracer,
        ) as client:
            for batch in lane:
                start = time.perf_counter()
                try:
                    if fetch_mode == MODE_RECORD:
                        client.fetch_records(batch)
                    else:
                        client.fetch_batch(batch)
                except ServerOverloadedError:
                    with lock:
                        counters["overload"] += 1
                    continue
                except ReproError:
                    with lock:
                        counters["error"] += 1
                    continue
                elapsed = time.perf_counter() - start
                if histogram is not None:
                    histogram.observe(elapsed)
                with lock:
                    counters["ok"] += 1
                    counters["pulses"] += len(batch)
                    latencies.append(elapsed)
            with lock:
                counters["retries"] += client.retries_performed

    threads = [
        threading.Thread(target=_worker, args=(index, lane), daemon=True)
        for index, lane in enumerate(lanes)
        if lane
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_elapsed = time.perf_counter() - wall_start

    return LoadReport(
        mode="closed",
        connections=connections,
        batch_size=batch_size,
        requests_sent=len(batches),
        requests_ok=counters["ok"],
        overloads=counters["overload"],
        errors=counters["error"],
        skipped=0,
        pulses_ok=counters["pulses"],
        elapsed_s=wall_elapsed,
        latencies_s=tuple(latencies),
        retries=counters["retries"],
        histogram=histogram.snapshot() if histogram is not None else None,
    )


# ---------------------------------------------------------------------------
# Open loop: asyncio + a fixed arrival schedule.
# ---------------------------------------------------------------------------


def run_open_loop(
    address: Union[str, Tuple[str, int]],
    trace: Sequence[Tuple[str, Sequence[int]]],
    rate: float,
    batch_size: int = 16,
    connections: int = 8,
    max_outstanding: int = 64,
    seed: int = 0,
    process: str = "poisson",
    mode: Union[int, str] = MODE_SAMPLES,
    timeout: float = 30.0,
    retries: int = 0,
    backoff: float = 0.05,
    tracer: Optional[Tracer] = None,
    collect_histogram: bool = False,
) -> LoadReport:
    """Fire batches on an arrival schedule, regardless of completions.

    ``rate`` is the target arrival rate in *requests* (batch frames)
    per second.  Arrivals finding ``max_outstanding`` requests already
    in flight are shed client-side (``skipped``) -- the generator's own
    no-unbounded-queue rule.  By default overload replies from the
    server are counted, not retried; ``retries > 0`` turns on the
    clients' seeded backoff-and-retry and the report's ``retries``
    totals what that cost (a retrying request still counts against
    ``max_outstanding`` the whole time, so the bound holds).
    """
    if connections < 1:
        raise StoreError(f"connections must be >= 1, got {connections}")
    if max_outstanding < 1:
        raise StoreError(f"max_outstanding must be >= 1, got {max_outstanding}")
    host_port = parse_address(address)
    fetch_mode = _resolve_mode(mode)
    batches = _batches(trace, batch_size)
    schedule = arrival_times(len(batches), rate, seed=seed, process=process)

    counters = {
        "ok": 0,
        "overload": 0,
        "error": 0,
        "skipped": 0,
        "pulses": 0,
        "outstanding": 0,
        "peak": 0,
        "retries": 0,
    }
    latencies: List[float] = []
    histogram = Histogram("loadgen.latency_seconds") if collect_histogram else None

    async def _fire(
        client: AsyncPulseClient, batch: List, scheduled_at: float, start: float
    ) -> None:
        try:
            if fetch_mode == MODE_RECORD:
                await client.fetch_records(batch)
            else:
                await client.fetch_batch(batch)
        except ServerOverloadedError:
            counters["overload"] += 1
        except ReproError:
            counters["error"] += 1
        else:
            counters["ok"] += 1
            counters["pulses"] += len(batch)
            # Open-loop latency runs from the scheduled arrival, so
            # queueing delay under overdrive is part of the number.
            elapsed = time.perf_counter() - (start + scheduled_at)
            latencies.append(elapsed)
            if histogram is not None:
                histogram.observe(elapsed)
        finally:
            counters["outstanding"] -= 1

    async def _main() -> float:
        clients = [
            AsyncPulseClient(
                host_port,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                seed=seed + index,
                tracer=tracer,
            )
            for index in range(connections)
        ]
        tasks: List[asyncio.Task] = []
        start = time.perf_counter()
        try:
            for index, (batch, scheduled_at) in enumerate(zip(batches, schedule)):
                delay = scheduled_at - (time.perf_counter() - start)
                if delay > 0:
                    await asyncio.sleep(delay)
                if counters["outstanding"] >= max_outstanding:
                    counters["skipped"] += 1
                    continue
                counters["outstanding"] += 1
                counters["peak"] = max(counters["peak"], counters["outstanding"])
                tasks.append(
                    asyncio.ensure_future(
                        _fire(
                            clients[index % connections],
                            batch,
                            scheduled_at,
                            start,
                        )
                    )
                )
            if tasks:
                await asyncio.gather(*tasks)
            return time.perf_counter() - start
        finally:
            counters["retries"] = sum(
                client.retries_performed for client in clients
            )
            for client in clients:
                await client.aclose()

    elapsed = asyncio.run(_main())
    return LoadReport(
        mode="open",
        connections=connections,
        batch_size=batch_size,
        requests_sent=len(batches) - counters["skipped"],
        requests_ok=counters["ok"],
        overloads=counters["overload"],
        errors=counters["error"],
        skipped=counters["skipped"],
        pulses_ok=counters["pulses"],
        elapsed_s=elapsed,
        latencies_s=tuple(latencies),
        target_rate=rate,
        max_outstanding=max_outstanding,
        peak_outstanding=counters["peak"],
        retries=counters["retries"],
        histogram=histogram.snapshot() if histogram is not None else None,
    )
