"""The asyncio ``CQN1`` front end over an in-process pulse server.

:class:`NetPulseServer` is the network half of the serving tier: it
owns a listening socket, speaks the length-prefixed protocol of
:mod:`repro.serve_net.protocol`, and forwards pulse fetches to a
thread-safe :class:`~repro.store.PulseServer`.  Three policies make it
a serving tier rather than a socket wrapper:

* **Bounded admission control.**  At most ``max_inflight`` fetch
  requests are in flight at once; a request arriving past that bound
  gets an immediate ``STATUS_OVERLOAD`` reply (counted in
  ``overloads``).  Load past capacity is shed explicitly -- the server
  never grows an unbounded queue, and clients see backpressure they
  can act on.

* **Request coalescing.**  Concurrent decoded-sample fetches for the
  same pulse key share one fill: the first request owns an event-loop
  future, later arrivals await it (counted in ``coalesced_keys``).
  This sits *above* the store layer's per-shard single-flight -- the
  store lock dedupes decode work between threads, the future dedupes
  executor hops between connections -- so N clients hammering one cold
  key cost one decode and one cache insertion.

* **Graceful drain.**  :meth:`aclose` stops accepting connections,
  answers new fetches with overload, waits for in-flight requests to
  finish (bounded by ``drain_timeout``), then closes every connection
  and the fetch executor.

Per-request errors (an unknown pulse key, a mode the store cannot
serve) get a ``STATUS_ERROR`` reply and the connection stays usable;
protocol-level damage (bad length prefix, unknown message type,
truncated frame) closes the connection after a best-effort error reply
-- a framing error means the byte stream can no longer be trusted.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError, ReproError, StoreError
from repro.obs import MetricsRegistry, Tracer, default_registry, merge_snapshots
from repro.obs import trace as obs_trace
from repro.serve_net import protocol
from repro.store.server import PulseServer, ServerStats

__all__ = ["NetServerStats", "NetPulseServer", "NetServerHandle", "serve_in_thread"]

_Key = Tuple[str, Tuple[int, ...]]

#: How long the server waits for the rest of a frame once its length
#: prefix has arrived.  An idle connection may sit quietly forever; a
#: half-sent frame may not.
FRAME_COMPLETION_TIMEOUT = 30.0


@dataclass(frozen=True, slots=True)
class NetServerStats:
    """A point-in-time snapshot of one network server's counters."""

    connections_accepted: int
    connections_open: int
    requests: int
    fetches: int
    fetches_ok: int
    pulses_served: int
    overloads: int
    coalesced_keys: int
    request_errors: int
    protocol_errors: int
    draining: bool
    serving: ServerStats

    def as_dict(self) -> Dict:
        return {
            "connections_accepted": self.connections_accepted,
            "connections_open": self.connections_open,
            "requests": self.requests,
            "fetches": self.fetches,
            "fetches_ok": self.fetches_ok,
            "pulses_served": self.pulses_served,
            "overloads": self.overloads,
            "coalesced_keys": self.coalesced_keys,
            "request_errors": self.request_errors,
            "protocol_errors": self.protocol_errors,
            "draining": self.draining,
            "serving": self.serving.as_dict(),
        }


class NetPulseServer:
    """Asyncio ``CQN1`` server over a :class:`~repro.store.PulseServer`.

    Args:
        serving: The in-process serving layer to front.  The caller
            keeps ownership: closing the network server does not close
            the :class:`PulseServer` (several network front ends may
            share one).
        host: Bind address (default loopback).
        port: Bind port; 0 picks a free port (see :attr:`address`).
        max_inflight: Admission-control bound on concurrently served
            fetch requests (>= 1).  Requests past it are shed with an
            explicit overload reply, never queued.
        max_request_bytes: Inbound frame bound; a length prefix past it
            closes the connection.
        frame_timeout: Seconds a half-received frame may take to
            complete once its length prefix has arrived (default
            :data:`FRAME_COMPLETION_TIMEOUT`).  Tests and the chaos
            harness shrink this to drive the expiry path without
            wall-clock waits.
        metrics: Registry for the ``net.*`` counters and latency
            histogram (private by default).
        tracer: Trace collector for sampled requests; built from
            ``trace_sample_rate`` when not given.
        trace_sample_rate: Fraction of untraced fetches that start a
            server-side trace (client-traced fetches always do).
            Ignored when ``tracer`` is passed.

    Lifecycle: ``await start()`` binds the socket, ``await aclose()``
    drains and shuts down.  Use :func:`serve_in_thread` to host one in
    a background thread from synchronous code.
    """

    def __init__(
        self,
        serving: PulseServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
        max_request_bytes: int = protocol.MAX_REQUEST_FRAME_BYTES,
        frame_timeout: float = FRAME_COMPLETION_TIMEOUT,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_sample_rate: Optional[float] = None,
    ) -> None:
        if max_inflight < 1:
            raise StoreError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_request_bytes < 16:
            raise StoreError(
                f"max_request_bytes must be >= 16, got {max_request_bytes}"
            )
        if frame_timeout <= 0:
            raise StoreError(f"frame_timeout must be > 0, got {frame_timeout}")
        self.serving = serving
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_request_bytes = max_request_bytes
        self.frame_timeout = frame_timeout
        self._listener: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._inflight_keys: Dict[_Key, asyncio.Future] = {}
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None:
            tracer = Tracer(
                sample_rate=(
                    obs_trace.DEFAULT_TRACE_SAMPLE_RATE
                    if trace_sample_rate is None
                    else trace_sample_rate
                )
            )
        self.tracer = tracer
        self._connections_accepted = self.metrics.counter("net.connections_accepted")
        self._requests = self.metrics.counter("net.requests")
        self._fetches = self.metrics.counter("net.fetches")
        self._fetches_ok = self.metrics.counter("net.fetches_ok")
        self._pulses_served = self.metrics.counter("net.pulses_served")
        self._overloads = self.metrics.counter("net.overloads")
        self._coalesced_keys = self.metrics.counter("net.coalesced_keys")
        self._request_errors = self.metrics.counter("net.request_errors")
        self._protocol_errors = self.metrics.counter("net.protocol_errors")
        self._inflight_gauge = self.metrics.gauge("net.inflight")
        self._request_seconds = self.metrics.histogram("net.request_seconds")

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "NetPulseServer":
        """Bind the listening socket; returns self for chaining."""
        if self._listener is not None:
            raise StoreError("server is already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="cqn1-fetch"
        )
        self._listener = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real one)."""
        if self._listener is None or not self._listener.sockets:
            raise StoreError("server is not started")
        host, port = self._listener.sockets[0].getsockname()[:2]
        return (host, port)

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI entry point awaits this)."""
        if self._listener is None:
            await self.start()
        assert self._listener is not None
        await self._listener.serve_forever()

    async def aclose(self, drain_timeout: float = 5.0) -> None:
        """Graceful drain: stop accepting, finish in-flight, close.

        New fetch requests arriving on existing connections during the
        drain window are shed with overload replies.  Connections still
        open after in-flight work finishes (or after ``drain_timeout``)
        are closed.  Idempotent.
        """
        self._draining = True
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
            await listener.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=drain_timeout)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._connections.clear()
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    async def __aenter__(self) -> "NetPulseServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- bookkeeping -------------------------------------------------------------

    def stats(self) -> NetServerStats:
        """Frozen :class:`NetServerStats` view over the registry counters."""
        return NetServerStats(
            connections_accepted=self._connections_accepted.value,
            connections_open=len(self._connections),
            requests=self._requests.value,
            fetches=self._fetches.value,
            fetches_ok=self._fetches_ok.value,
            pulses_served=self._pulses_served.value,
            overloads=self._overloads.value,
            coalesced_keys=self._coalesced_keys.value,
            request_errors=self._request_errors.value,
            protocol_errors=self._protocol_errors.value,
            draining=self._draining,
            serving=self.serving.stats(),
        )

    def metrics_snapshot(self) -> Dict:
        """Full merged snapshot: net tier + serving stack + module metrics.

        This is what the ``METRICS`` wire message and the
        ``--metrics-port`` HTTP exposition serve.  The process-wide
        default registry contributes the module-level store series
        (mmap opens, fused-decode batches).
        """
        return merge_snapshots(
            self.metrics.snapshot(),
            self.serving.metrics_snapshot(),
            default_registry().snapshot(),
        )

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections_accepted.inc()
        self._connections.add(writer)
        try:
            await self._connection_loop(reader, writer)
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(4)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    # A torn length prefix is a framing error; bare EOF
                    # between frames is a clean close.
                    self._protocol_errors.inc()
                return
            except (ConnectionError, OSError):
                return
            try:
                length = protocol.parse_frame_length(header, self.max_request_bytes)
                payload = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.frame_timeout
                )
            except (ProtocolError, asyncio.TimeoutError) as exc:
                self._protocol_errors.inc()
                reason = (
                    "frame did not complete in time"
                    if isinstance(exc, asyncio.TimeoutError)
                    else str(exc)
                )
                await self._best_effort_send(
                    writer, protocol.encode_reply_error(reason)
                )
                return
            except asyncio.IncompleteReadError:
                self._protocol_errors.inc()
                return
            except (ConnectionError, OSError):
                return
            try:
                request = protocol.decode_request(payload)
            except ProtocolError as exc:
                # The stream itself is still framed correctly, but a
                # peer sending unparseable requests is not worth
                # trusting further: answer once, then close.
                self._protocol_errors.inc()
                await self._best_effort_send(
                    writer, protocol.encode_reply_error(str(exc))
                )
                return
            self._requests.inc()
            if not await self._dispatch(request, writer):
                return

    async def _dispatch(
        self, request: protocol.Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one decoded request; returns False to drop the connection."""
        if isinstance(request, protocol.PingRequest):
            return await self._best_effort_send(writer, protocol.encode_reply_ping())
        if isinstance(request, protocol.StatsRequest):
            blob = json.dumps(self.stats().as_dict()).encode("utf-8")
            return await self._best_effort_send(
                writer, protocol.encode_reply_stats(blob)
            )
        if isinstance(request, protocol.KeysRequest):
            return await self._best_effort_send(
                writer, protocol.encode_reply_keys(self.serving.store.keys())
            )
        if isinstance(request, protocol.MetricsRequest):
            blob = json.dumps(self.metrics_snapshot()).encode("utf-8")
            return await self._best_effort_send(
                writer, protocol.encode_reply_metrics(blob)
            )
        if isinstance(request, protocol.TracesRequest):
            blob = json.dumps(self.tracer.recent(request.limit)).encode("utf-8")
            return await self._best_effort_send(
                writer, protocol.encode_reply_traces(blob)
            )
        assert isinstance(request, protocol.FetchRequest)
        # A client-supplied trace id always gets a server-side span (the
        # client already paid the sampling coin toss); untraced fetches
        # go through this server's own sampler.
        sp = self.tracer.start_trace(
            "server.admission",
            trace_id=request.trace_id,
            parent_id=request.parent_span_id or None,
            force=request.trace_id is not None,
            keys=len(request.keys),
            mode=request.mode,
        )
        if self._draining or self._active >= self.max_inflight:
            self._overloads.inc()
            if sp is not None:
                sp.tags["outcome"] = "overload"
                sp.finish()
            return await self._best_effort_send(
                writer, protocol.encode_reply_overload()
            )
        self._fetches.inc()
        self._active += 1
        self._idle.clear()
        self._inflight_gauge.add(1)
        started = time.perf_counter()
        try:
            with obs_trace.activate(sp):
                reply = await self._serve_fetch(request)
        except ReproError as exc:
            self._request_errors.inc()
            if sp is not None:
                sp.tags["outcome"] = "error"
            reply = protocol.encode_reply_error(str(exc))
        else:
            self._fetches_ok.inc()
        finally:
            self._active -= 1
            self._inflight_gauge.add(-1)
            self._request_seconds.observe(time.perf_counter() - started)
            if sp is not None:
                sp.finish()
            if self._active == 0:
                self._idle.set()
        return await self._best_effort_send(writer, reply)

    # -- fetch path --------------------------------------------------------------

    async def _serve_fetch(self, request: protocol.FetchRequest) -> bytes:
        loop = asyncio.get_running_loop()
        executor = self._executor
        if executor is None:
            raise StoreError("server is closed")
        if request.mode == protocol.MODE_RECORD:
            store = self.serving.store
            blobs = await loop.run_in_executor(
                executor,
                contextvars.copy_context().run,
                lambda: [store.read_record_bytes(*key) for key in request.keys],
            )
            self._pulses_served.inc(len(blobs))
            return protocol.encode_reply_fetch(protocol.MODE_RECORD, blobs)

        # Decoded-sample mode: coalesce concurrent fills per key on the
        # event loop, then push the remainder through the thread-safe
        # serving layer in one batch.
        owned: List[_Key] = []
        futures: Dict[_Key, asyncio.Future] = {}
        for key in dict.fromkeys(request.keys):
            future = self._inflight_keys.get(key)
            if future is None:
                future = loop.create_future()
                self._inflight_keys[key] = future
                owned.append(key)
            else:
                self._coalesced_keys.inc()
            futures[key] = future
        if owned:
            try:
                # copy_context(): executor threads do not inherit
                # contextvars, and the admission span rides on one.
                waveforms = await loop.run_in_executor(
                    executor,
                    contextvars.copy_context().run,
                    self.serving.fetch_batch,
                    owned,
                )
            except ReproError:
                # One bad key must not poison coalesced waiters on the
                # *valid* keys that happened to share this batch: fall
                # back to per-key fills so every owned future carries
                # its own outcome.  A request that asked for the bad
                # key still sees its typed error through that key's
                # future; a concurrent request coalesced onto a valid
                # key is served normally.
                for key in owned:
                    future = self._inflight_keys.pop(key)
                    try:
                        waveform = await loop.run_in_executor(
                            executor,
                            contextvars.copy_context().run,
                            self.serving.fetch,
                            key[0],
                            key[1],
                        )
                    except ReproError as per_key_exc:
                        future.set_exception(per_key_exc)
                    else:
                        future.set_result(waveform)
            except BaseException as exc:
                # Non-library failure (executor torn down, interpreter
                # shutdown): fan out and re-raise -- there is no
                # per-key story to salvage.
                for key in owned:
                    future = self._inflight_keys.pop(key)
                    future.set_exception(exc)
                raise
            else:
                for key, waveform in zip(owned, waveforms):
                    self._inflight_keys.pop(key).set_result(waveform)
        # Settle every awaited future before raising so no "exception
        # was never retrieved" future leaks when several keys fail at
        # once; the first failure propagates (typed) afterwards.
        outcomes = await asyncio.gather(
            *futures.values(), return_exceptions=True
        )
        resolved = {}
        first_error: Optional[BaseException] = None
        for key, outcome in zip(futures, outcomes):
            if isinstance(outcome, BaseException):
                if first_error is None:
                    first_error = outcome
            else:
                resolved[key] = outcome
        if first_error is not None:
            raise first_error
        items = [
            protocol.encode_samples_item(resolved[key]) for key in request.keys
        ]
        self._pulses_served.inc(len(items))
        return protocol.encode_reply_fetch(protocol.MODE_SAMPLES, items)

    @staticmethod
    async def _best_effort_send(writer: asyncio.StreamWriter, data: bytes) -> bool:
        try:
            writer.write(data)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False


# ---------------------------------------------------------------------------
# Thread hosting: run an event-loop server from synchronous code.
# ---------------------------------------------------------------------------


class NetServerHandle:
    """A running :class:`NetPulseServer` hosted in a background thread.

    Produced by :func:`serve_in_thread`; usable as a context manager.
    ``address`` is the bound ``(host, port)``; :meth:`stats` snapshots
    the server's counters; :meth:`stop` drains and joins the thread.
    """

    def __init__(self, ready_timeout: float) -> None:
        self._ready = threading.Event()
        self._ready_timeout = ready_timeout
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[NetPulseServer] = None
        self._error: Optional[BaseException] = None
        self.address: Tuple[str, int] = ("", 0)

    def _wait_ready(self) -> "NetServerHandle":
        if not self._ready.wait(self._ready_timeout):
            raise StoreError("network server did not start in time")
        if self._error is not None:
            raise StoreError(f"network server failed to start: {self._error}")
        return self

    @property
    def server(self) -> NetPulseServer:
        if self._server is None:
            raise StoreError("network server is not running")
        return self._server

    def stats(self) -> NetServerStats:
        """Counter snapshot (int reads are atomic under the GIL)."""
        return self.server.stats()

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Drain the server and join its thread.  Idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=drain_timeout + 10.0)

    def __enter__(self) -> "NetServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    serving: PulseServer,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_timeout: float = 10.0,
    drain_timeout: float = 5.0,
    **server_kwargs,
) -> NetServerHandle:
    """Start a :class:`NetPulseServer` in a daemon thread; returns its handle.

    The bench harness, tests, examples and anything else synchronous
    use this to put a real socket in front of a store without managing
    an event loop.  The handle is a context manager whose exit drains
    the server (same semantics as :meth:`NetPulseServer.aclose`).
    """
    handle = NetServerHandle(ready_timeout)

    async def _main() -> None:
        server = NetPulseServer(serving, host=host, port=port, **server_kwargs)
        try:
            await server.start()
        except BaseException as exc:
            handle._error = exc
            handle._ready.set()
            return
        handle._server = server
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        handle.address = server.address
        handle._ready.set()
        try:
            await handle._stop.wait()
        finally:
            await server.aclose(drain_timeout=drain_timeout)

    def _run() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not handle._ready.is_set():
                handle._error = exc
                handle._ready.set()

    thread = threading.Thread(target=_run, name="cqn1-server", daemon=True)
    handle._thread = thread
    thread.start()
    return handle._wait_ready()
