"""The ``CQN1`` wire protocol: length-prefixed binary frames.

Every message travels as one frame::

    +----------------+---------------------------------------+
    | u32 LE length  | payload (length bytes)                |
    +----------------+---------------------------------------+

and every payload starts with a one-byte message type::

    requests                                   responses
    0x01 FETCH         mode + key batch        0x81 REPLY  status + body
    0x02 PING          (empty)
    0x03 STATS         (empty)
    0x04 KEYS          (empty)
    0x05 METRICS       u8 ext-version
    0x06 TRACES        u8 ext-version + u16 limit
    0x07 FETCH_TRACED  u8 ext-version + mode + u64 trace id
                       + u64 parent span id + key batch

Types ``0x05``-``0x07`` are the versioned telemetry extension
(:data:`OBS_EXT_VERSION`): ``METRICS`` returns the server's merged
registry snapshot and ``TRACES`` its most recent completed traces
(both as one JSON blob, exactly the ``STATS`` reply shape);
``FETCH_TRACED`` is a ``FETCH`` carrying the client's trace context so
the server's spans join the client's trace.  An untraced
:func:`encode_fetch` still emits a byte-identical ``0x01`` frame, so
old servers and clients interoperate whenever tracing is off.

A ``FETCH`` body is ``u8 mode`` (:data:`MODE_RECORD` for raw ``CQW1``
record bytes, :data:`MODE_SAMPLES` for decoded sample payloads) and a
``u16`` key count followed by the keys; a key is
``u16 gate-length + gate utf-8 + u8 qubit-count + u16 qubit...`` -- the
same ``(gate, qubits)`` channel binding every in-process layer uses.

A ``REPLY`` body is ``u8 status``:

- :data:`STATUS_OK`: ``u8`` echoed request type, then the
  type-specific body (fetch: ``u8 mode`` + ``u32`` item count +
  ``u32``-length-prefixed items; stats: one length-prefixed JSON blob;
  keys: a key batch; ping: empty).
- :data:`STATUS_OVERLOAD`: empty.  The server shed the request under
  admission control -- explicit backpressure instead of queueing.
- :data:`STATUS_ERROR`: ``u16`` length + utf-8 message.  The request
  was understood but could not be served (e.g. an unknown pulse key);
  the connection remains usable.

A :data:`MODE_SAMPLES` fetch item carries one decoded waveform::

    u16 name-length + name utf-8 + f64 dt + u32 n-samples
    + n complex128 LE samples

so the client-side :class:`~repro.pulses.waveform.Waveform` is
bit-identical to the server's decoded copy (the identity gate of
``BENCH_network.json`` holds the whole wire path to that).  A
:data:`MODE_RECORD` item is the pulse's raw ``CQW1`` record, byte-equal
to :meth:`repro.store.ShardedStore.read_record_bytes`.

Parsing is **total**: every decoder consumes its exact byte span and
raises :class:`~repro.errors.ProtocolError` on truncation, trailing
bytes, out-of-range counts, unknown types or statuses, and length
prefixes beyond the frame bound.  Nothing in this module touches a
socket; the server and clients share these pure encoders/decoders.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ProtocolError
from repro.pulses.waveform import Waveform

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "MSG_FETCH",
    "MSG_PING",
    "MSG_STATS",
    "MSG_KEYS",
    "MSG_METRICS",
    "MSG_TRACES",
    "MSG_FETCH_TRACED",
    "MSG_REPLY",
    "OBS_EXT_VERSION",
    "MAX_TRACES_PER_REQUEST",
    "MODE_RECORD",
    "MODE_SAMPLES",
    "STATUS_OK",
    "STATUS_OVERLOAD",
    "STATUS_ERROR",
    "MAX_FRAME_BYTES",
    "MAX_REQUEST_FRAME_BYTES",
    "MAX_KEYS_PER_REQUEST",
    "FetchRequest",
    "PingRequest",
    "StatsRequest",
    "KeysRequest",
    "MetricsRequest",
    "TracesRequest",
    "Reply",
    "frame",
    "parse_frame_length",
    "encode_fetch",
    "encode_ping",
    "encode_stats",
    "encode_keys",
    "encode_metrics",
    "encode_traces",
    "decode_request",
    "encode_reply_fetch",
    "encode_reply_ping",
    "encode_reply_stats",
    "encode_reply_keys",
    "encode_reply_metrics",
    "encode_reply_traces",
    "encode_reply_overload",
    "encode_reply_error",
    "decode_reply",
    "encode_samples_item",
    "decode_samples_item",
]

PROTOCOL_MAGIC = "CQN1"
PROTOCOL_VERSION = 1

MSG_FETCH = 0x01
MSG_PING = 0x02
MSG_STATS = 0x03
MSG_KEYS = 0x04
MSG_METRICS = 0x05
MSG_TRACES = 0x06
MSG_FETCH_TRACED = 0x07
MSG_REPLY = 0x81

#: Version byte leading every telemetry-extension request body; a
#: server that does not speak the version rejects the frame instead of
#: guessing at its layout.
OBS_EXT_VERSION = 1

#: Largest number of recent traces one TRACES request may ask for.
MAX_TRACES_PER_REQUEST = 1024

_REQUEST_TYPES = (
    MSG_FETCH,
    MSG_PING,
    MSG_STATS,
    MSG_KEYS,
    MSG_METRICS,
    MSG_TRACES,
    MSG_FETCH_TRACED,
)

MODE_RECORD = 0
MODE_SAMPLES = 1

STATUS_OK = 0
STATUS_OVERLOAD = 1
STATUS_ERROR = 2

#: Hard bound on any frame this implementation will read (responses
#: carrying whole decoded batches are the large direction).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Server-side bound on inbound request frames; a length prefix past
#: this closes the connection (the stream can no longer be trusted).
MAX_REQUEST_FRAME_BYTES = 1 * 1024 * 1024

#: Largest key batch one FETCH may carry.
MAX_KEYS_PER_REQUEST = 4096

_Key = Tuple[str, Tuple[int, ...]]

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """A decoded FETCH: serve these pulse keys in this mode.

    ``trace_id``/``parent_span_id`` are set when the frame was a
    ``FETCH_TRACED``: the client sampled this request, and the
    server's spans should attach under the client's fetch span.
    """

    mode: int
    keys: Tuple[_Key, ...]
    trace_id: Optional[int] = None
    parent_span_id: int = 0


@dataclass(frozen=True, slots=True)
class PingRequest:
    """A liveness probe; the reply carries no body."""


@dataclass(frozen=True, slots=True)
class StatsRequest:
    """Ask the server for its counter snapshot (JSON body in the reply)."""


@dataclass(frozen=True, slots=True)
class KeysRequest:
    """Ask the server for the store's full key inventory."""


@dataclass(frozen=True, slots=True)
class MetricsRequest:
    """Ask the server for its merged registry snapshot (JSON reply)."""


@dataclass(frozen=True, slots=True)
class TracesRequest:
    """Ask the server for its most recent completed traces (JSON reply)."""

    limit: int


@dataclass(frozen=True, slots=True)
class Reply:
    """A decoded server reply.

    ``echo_type`` / ``mode`` / ``items`` are populated for
    :data:`STATUS_OK`; ``message`` for :data:`STATUS_ERROR`.
    """

    status: int
    echo_type: int = 0
    mode: int = MODE_SAMPLES
    items: Tuple[bytes, ...] = ()
    keys: Tuple[_Key, ...] = ()
    message: str = ""


class _Cursor:
    """A bounds-checked reader over one payload's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise ProtocolError(
                f"truncated payload: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after payload"
            )


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """Wrap a payload in its u32 length prefix."""
    if not payload:
        raise ProtocolError("cannot frame an empty payload")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return _U32.pack(len(payload)) + payload


def parse_frame_length(header: bytes, max_frame: int = MAX_FRAME_BYTES) -> int:
    """Validate a 4-byte length prefix; returns the payload length."""
    if len(header) != 4:
        raise ProtocolError(f"frame header is {len(header)} bytes, expected 4")
    (length,) = _U32.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte bound"
        )
    return length


# ---------------------------------------------------------------------------
# Keys.
# ---------------------------------------------------------------------------


def _encode_key(gate: str, qubits: Sequence[int]) -> bytes:
    gate_bytes = gate.encode("utf-8")
    if not gate_bytes or len(gate_bytes) > 0xFFFF:
        raise ProtocolError(f"gate name {gate!r} does not fit the wire key")
    qubits = tuple(int(q) for q in qubits)
    if len(qubits) > 0xFF:
        raise ProtocolError(f"{len(qubits)} qubits exceed the u8 key bound")
    if any(not 0 <= q <= 0xFFFF for q in qubits):
        raise ProtocolError(f"qubit indices {qubits} do not fit u16")
    parts = [_U16.pack(len(gate_bytes)), gate_bytes, bytes([len(qubits)])]
    parts.extend(_U16.pack(q) for q in qubits)
    return b"".join(parts)


def _decode_key(cursor: _Cursor) -> _Key:
    gate_len = cursor.u16()
    if gate_len == 0:
        raise ProtocolError("wire key has an empty gate name")
    try:
        gate = cursor.take(gate_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"wire key gate is not utf-8: {exc}") from None
    n_qubits = cursor.u8()
    qubits = tuple(cursor.u16() for _ in range(n_qubits))
    return (gate, qubits)


def _encode_key_batch(keys: Sequence[Tuple[str, Sequence[int]]]) -> bytes:
    if not keys:
        raise ProtocolError("a key batch must name at least one pulse")
    if len(keys) > MAX_KEYS_PER_REQUEST:
        raise ProtocolError(
            f"{len(keys)} keys exceed the {MAX_KEYS_PER_REQUEST}-key bound"
        )
    parts = [_U16.pack(len(keys))]
    parts.extend(_encode_key(gate, qubits) for gate, qubits in keys)
    return b"".join(parts)


def _decode_key_batch(cursor: _Cursor) -> Tuple[_Key, ...]:
    n_keys = cursor.u16()
    if n_keys == 0:
        raise ProtocolError("a key batch must name at least one pulse")
    if n_keys > MAX_KEYS_PER_REQUEST:
        raise ProtocolError(
            f"{n_keys} keys exceed the {MAX_KEYS_PER_REQUEST}-key bound"
        )
    return tuple(_decode_key(cursor) for _ in range(n_keys))


# ---------------------------------------------------------------------------
# Requests.
# ---------------------------------------------------------------------------


def encode_fetch(
    keys: Sequence[Tuple[str, Sequence[int]]],
    mode: int = MODE_SAMPLES,
    trace: Optional[Tuple[int, int]] = None,
) -> bytes:
    """Encode a FETCH request frame for a batch of pulse keys.

    With ``trace=(trace_id, parent_span_id)`` the frame is a
    ``FETCH_TRACED`` carrying that context; without it the bytes are
    identical to the pre-extension ``FETCH`` frame.
    """
    if mode not in (MODE_RECORD, MODE_SAMPLES):
        raise ProtocolError(f"unknown fetch mode {mode}")
    if trace is None:
        return frame(bytes([MSG_FETCH, mode]) + _encode_key_batch(keys))
    trace_id, parent_span_id = trace
    if not 0 < trace_id <= 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"trace id {trace_id} does not fit a non-zero u64")
    if not 0 <= parent_span_id <= 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"parent span id {parent_span_id} does not fit u64")
    return frame(
        bytes([MSG_FETCH_TRACED, OBS_EXT_VERSION, mode])
        + _U64.pack(trace_id)
        + _U64.pack(parent_span_id)
        + _encode_key_batch(keys)
    )


def encode_ping() -> bytes:
    return frame(bytes([MSG_PING]))


def encode_stats() -> bytes:
    return frame(bytes([MSG_STATS]))


def encode_keys() -> bytes:
    return frame(bytes([MSG_KEYS]))


def encode_metrics() -> bytes:
    """Encode a METRICS request (versioned telemetry extension)."""
    return frame(bytes([MSG_METRICS, OBS_EXT_VERSION]))


def encode_traces(limit: int = 16) -> bytes:
    """Encode a TRACES request for up to ``limit`` recent traces."""
    if not 1 <= limit <= MAX_TRACES_PER_REQUEST:
        raise ProtocolError(
            f"traces limit must be in [1, {MAX_TRACES_PER_REQUEST}], got {limit}"
        )
    return frame(bytes([MSG_TRACES, OBS_EXT_VERSION]) + _U16.pack(limit))


Request = Union[
    FetchRequest, PingRequest, StatsRequest, KeysRequest, MetricsRequest, TracesRequest
]


def _check_ext_version(cursor: _Cursor, msg_type: int) -> None:
    version = cursor.u8()
    if version != OBS_EXT_VERSION:
        raise ProtocolError(
            f"request 0x{msg_type:02x} speaks telemetry extension version "
            f"{version}; this server speaks {OBS_EXT_VERSION}"
        )


def decode_request(payload: bytes) -> Request:
    """Decode one request payload (total: malformed bytes raise)."""
    cursor = _Cursor(payload)
    msg_type = cursor.u8()
    if msg_type not in _REQUEST_TYPES:
        raise ProtocolError(f"unknown request type 0x{msg_type:02x}")
    if msg_type in (MSG_FETCH, MSG_FETCH_TRACED):
        trace_id = None
        parent_span_id = 0
        if msg_type == MSG_FETCH_TRACED:
            _check_ext_version(cursor, msg_type)
            mode = cursor.u8()
            trace_id = cursor.u64()
            if trace_id == 0:
                raise ProtocolError("traced fetch carries a zero trace id")
            parent_span_id = cursor.u64()
        else:
            mode = cursor.u8()
        if mode not in (MODE_RECORD, MODE_SAMPLES):
            raise ProtocolError(f"unknown fetch mode {mode}")
        keys = _decode_key_batch(cursor)
        cursor.finish()
        return FetchRequest(
            mode=mode, keys=keys, trace_id=trace_id, parent_span_id=parent_span_id
        )
    if msg_type == MSG_METRICS:
        _check_ext_version(cursor, msg_type)
        cursor.finish()
        return MetricsRequest()
    if msg_type == MSG_TRACES:
        _check_ext_version(cursor, msg_type)
        limit = cursor.u16()
        if not 1 <= limit <= MAX_TRACES_PER_REQUEST:
            raise ProtocolError(
                f"traces limit must be in [1, {MAX_TRACES_PER_REQUEST}], got {limit}"
            )
        cursor.finish()
        return TracesRequest(limit=limit)
    cursor.finish()
    if msg_type == MSG_PING:
        return PingRequest()
    if msg_type == MSG_STATS:
        return StatsRequest()
    return KeysRequest()


# ---------------------------------------------------------------------------
# Replies.
# ---------------------------------------------------------------------------


def encode_reply_fetch(mode: int, items: Sequence[bytes]) -> bytes:
    """Encode an OK fetch reply carrying one payload blob per key."""
    if mode not in (MODE_RECORD, MODE_SAMPLES):
        raise ProtocolError(f"unknown fetch mode {mode}")
    parts = [bytes([MSG_REPLY, STATUS_OK, MSG_FETCH, mode]), _U32.pack(len(items))]
    for item in items:
        parts.append(_U32.pack(len(item)))
        parts.append(item)
    return frame(b"".join(parts))


def encode_reply_ping() -> bytes:
    return frame(bytes([MSG_REPLY, STATUS_OK, MSG_PING]))


def encode_reply_stats(stats_json: bytes) -> bytes:
    return frame(
        bytes([MSG_REPLY, STATUS_OK, MSG_STATS])
        + _U32.pack(len(stats_json))
        + stats_json
    )


def encode_reply_keys(keys: Sequence[Tuple[str, Sequence[int]]]) -> bytes:
    return frame(bytes([MSG_REPLY, STATUS_OK, MSG_KEYS]) + _encode_key_batch(keys))


def encode_reply_metrics(metrics_json: bytes) -> bytes:
    """OK reply to METRICS: one length-prefixed JSON blob (STATS shape)."""
    return frame(
        bytes([MSG_REPLY, STATUS_OK, MSG_METRICS])
        + _U32.pack(len(metrics_json))
        + metrics_json
    )


def encode_reply_traces(traces_json: bytes) -> bytes:
    """OK reply to TRACES: one length-prefixed JSON blob (STATS shape)."""
    return frame(
        bytes([MSG_REPLY, STATUS_OK, MSG_TRACES])
        + _U32.pack(len(traces_json))
        + traces_json
    )


def encode_reply_overload() -> bytes:
    """Explicit admission-control shed: no body, the client backs off."""
    return frame(bytes([MSG_REPLY, STATUS_OVERLOAD]))


def encode_reply_error(message: str) -> bytes:
    data = message.encode("utf-8")[:0xFFFF]
    return frame(bytes([MSG_REPLY, STATUS_ERROR]) + _U16.pack(len(data)) + data)


def decode_reply(payload: bytes) -> Reply:
    """Decode one reply payload (total: malformed bytes raise)."""
    cursor = _Cursor(payload)
    msg_type = cursor.u8()
    if msg_type != MSG_REPLY:
        raise ProtocolError(f"expected a reply frame, got type 0x{msg_type:02x}")
    status = cursor.u8()
    if status == STATUS_OVERLOAD:
        cursor.finish()
        return Reply(status=STATUS_OVERLOAD)
    if status == STATUS_ERROR:
        length = cursor.u16()
        try:
            message = cursor.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"error reply is not utf-8: {exc}") from None
        cursor.finish()
        return Reply(status=STATUS_ERROR, message=message)
    if status != STATUS_OK:
        raise ProtocolError(f"unknown reply status {status}")
    echo_type = cursor.u8()
    if echo_type == MSG_FETCH:
        mode = cursor.u8()
        if mode not in (MODE_RECORD, MODE_SAMPLES):
            raise ProtocolError(f"unknown fetch mode {mode}")
        n_items = cursor.u32()
        if n_items > MAX_KEYS_PER_REQUEST:
            raise ProtocolError(
                f"{n_items} reply items exceed the "
                f"{MAX_KEYS_PER_REQUEST}-key bound"
            )
        items = tuple(cursor.take(cursor.u32()) for _ in range(n_items))
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_FETCH, mode=mode, items=items)
    if echo_type in (MSG_STATS, MSG_METRICS, MSG_TRACES):
        blob = cursor.take(cursor.u32())
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=echo_type, items=(blob,))
    if echo_type == MSG_KEYS:
        keys = _decode_key_batch(cursor)
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_KEYS, keys=keys)
    if echo_type == MSG_PING:
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_PING)
    raise ProtocolError(f"reply echoes unknown request type 0x{echo_type:02x}")


# ---------------------------------------------------------------------------
# Decoded-sample items.
# ---------------------------------------------------------------------------


def encode_samples_item(waveform: Waveform) -> bytes:
    """Serialize one decoded waveform as a fetch-reply item.

    The complex128 sample bytes go over the wire verbatim, so the
    client-side reconstruction is bit-identical to the server's decoded
    waveform -- no re-quantization anywhere on the path.
    """
    name_bytes = waveform.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ProtocolError(f"waveform name {waveform.name!r} does not fit u16")
    samples = np.ascontiguousarray(waveform.samples, dtype=np.complex128)
    return b"".join(
        (
            _U16.pack(len(name_bytes)),
            name_bytes,
            _F64.pack(float(waveform.dt)),
            _U32.pack(samples.size),
            samples.tobytes(),
        )
    )


def decode_samples_item(
    item: bytes, gate: str, qubits: Tuple[int, ...]
) -> Waveform:
    """Rebuild a decoded waveform from its fetch-reply item bytes."""
    cursor = _Cursor(item)
    name_len = cursor.u16()
    try:
        name = cursor.take(name_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"waveform name is not utf-8: {exc}") from None
    dt = cursor.f64()
    n_samples = cursor.u32()
    raw = cursor.take(n_samples * 16)
    cursor.finish()
    samples = np.frombuffer(raw, dtype=np.complex128).copy()
    try:
        return Waveform(
            name=name, samples=samples, dt=dt, gate=gate, qubits=qubits
        )
    except Exception as exc:
        raise ProtocolError(f"reply samples are not a valid waveform: {exc}") from None
