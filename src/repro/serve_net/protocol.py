"""The ``CQN1`` wire protocol: length-prefixed binary frames.

Every message travels as one frame::

    +----------------+---------------------------------------+
    | u32 LE length  | payload (length bytes)                |
    +----------------+---------------------------------------+

and every payload starts with a one-byte message type::

    requests                         responses
    0x01 FETCH   mode + key batch    0x81 REPLY  status + body
    0x02 PING    (empty)
    0x03 STATS   (empty)
    0x04 KEYS    (empty)

A ``FETCH`` body is ``u8 mode`` (:data:`MODE_RECORD` for raw ``CQW1``
record bytes, :data:`MODE_SAMPLES` for decoded sample payloads) and a
``u16`` key count followed by the keys; a key is
``u16 gate-length + gate utf-8 + u8 qubit-count + u16 qubit...`` -- the
same ``(gate, qubits)`` channel binding every in-process layer uses.

A ``REPLY`` body is ``u8 status``:

- :data:`STATUS_OK`: ``u8`` echoed request type, then the
  type-specific body (fetch: ``u8 mode`` + ``u32`` item count +
  ``u32``-length-prefixed items; stats: one length-prefixed JSON blob;
  keys: a key batch; ping: empty).
- :data:`STATUS_OVERLOAD`: empty.  The server shed the request under
  admission control -- explicit backpressure instead of queueing.
- :data:`STATUS_ERROR`: ``u16`` length + utf-8 message.  The request
  was understood but could not be served (e.g. an unknown pulse key);
  the connection remains usable.

A :data:`MODE_SAMPLES` fetch item carries one decoded waveform::

    u16 name-length + name utf-8 + f64 dt + u32 n-samples
    + n complex128 LE samples

so the client-side :class:`~repro.pulses.waveform.Waveform` is
bit-identical to the server's decoded copy (the identity gate of
``BENCH_network.json`` holds the whole wire path to that).  A
:data:`MODE_RECORD` item is the pulse's raw ``CQW1`` record, byte-equal
to :meth:`repro.store.ShardedStore.read_record_bytes`.

Parsing is **total**: every decoder consumes its exact byte span and
raises :class:`~repro.errors.ProtocolError` on truncation, trailing
bytes, out-of-range counts, unknown types or statuses, and length
prefixes beyond the frame bound.  Nothing in this module touches a
socket; the server and clients share these pure encoders/decoders.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import ProtocolError
from repro.pulses.waveform import Waveform

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "MSG_FETCH",
    "MSG_PING",
    "MSG_STATS",
    "MSG_KEYS",
    "MSG_REPLY",
    "MODE_RECORD",
    "MODE_SAMPLES",
    "STATUS_OK",
    "STATUS_OVERLOAD",
    "STATUS_ERROR",
    "MAX_FRAME_BYTES",
    "MAX_REQUEST_FRAME_BYTES",
    "MAX_KEYS_PER_REQUEST",
    "FetchRequest",
    "PingRequest",
    "StatsRequest",
    "KeysRequest",
    "Reply",
    "frame",
    "parse_frame_length",
    "encode_fetch",
    "encode_ping",
    "encode_stats",
    "encode_keys",
    "decode_request",
    "encode_reply_fetch",
    "encode_reply_ping",
    "encode_reply_stats",
    "encode_reply_keys",
    "encode_reply_overload",
    "encode_reply_error",
    "decode_reply",
    "encode_samples_item",
    "decode_samples_item",
]

PROTOCOL_MAGIC = "CQN1"
PROTOCOL_VERSION = 1

MSG_FETCH = 0x01
MSG_PING = 0x02
MSG_STATS = 0x03
MSG_KEYS = 0x04
MSG_REPLY = 0x81

_REQUEST_TYPES = (MSG_FETCH, MSG_PING, MSG_STATS, MSG_KEYS)

MODE_RECORD = 0
MODE_SAMPLES = 1

STATUS_OK = 0
STATUS_OVERLOAD = 1
STATUS_ERROR = 2

#: Hard bound on any frame this implementation will read (responses
#: carrying whole decoded batches are the large direction).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Server-side bound on inbound request frames; a length prefix past
#: this closes the connection (the stream can no longer be trusted).
MAX_REQUEST_FRAME_BYTES = 1 * 1024 * 1024

#: Largest key batch one FETCH may carry.
MAX_KEYS_PER_REQUEST = 4096

_Key = Tuple[str, Tuple[int, ...]]

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """A decoded FETCH: serve these pulse keys in this mode."""

    mode: int
    keys: Tuple[_Key, ...]


@dataclass(frozen=True, slots=True)
class PingRequest:
    """A liveness probe; the reply carries no body."""


@dataclass(frozen=True, slots=True)
class StatsRequest:
    """Ask the server for its counter snapshot (JSON body in the reply)."""


@dataclass(frozen=True, slots=True)
class KeysRequest:
    """Ask the server for the store's full key inventory."""


@dataclass(frozen=True, slots=True)
class Reply:
    """A decoded server reply.

    ``echo_type`` / ``mode`` / ``items`` are populated for
    :data:`STATUS_OK`; ``message`` for :data:`STATUS_ERROR`.
    """

    status: int
    echo_type: int = 0
    mode: int = MODE_SAMPLES
    items: Tuple[bytes, ...] = ()
    keys: Tuple[_Key, ...] = ()
    message: str = ""


class _Cursor:
    """A bounds-checked reader over one payload's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise ProtocolError(
                f"truncated payload: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after payload"
            )


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """Wrap a payload in its u32 length prefix."""
    if not payload:
        raise ProtocolError("cannot frame an empty payload")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return _U32.pack(len(payload)) + payload


def parse_frame_length(header: bytes, max_frame: int = MAX_FRAME_BYTES) -> int:
    """Validate a 4-byte length prefix; returns the payload length."""
    if len(header) != 4:
        raise ProtocolError(f"frame header is {len(header)} bytes, expected 4")
    (length,) = _U32.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte bound"
        )
    return length


# ---------------------------------------------------------------------------
# Keys.
# ---------------------------------------------------------------------------


def _encode_key(gate: str, qubits: Sequence[int]) -> bytes:
    gate_bytes = gate.encode("utf-8")
    if not gate_bytes or len(gate_bytes) > 0xFFFF:
        raise ProtocolError(f"gate name {gate!r} does not fit the wire key")
    qubits = tuple(int(q) for q in qubits)
    if len(qubits) > 0xFF:
        raise ProtocolError(f"{len(qubits)} qubits exceed the u8 key bound")
    if any(not 0 <= q <= 0xFFFF for q in qubits):
        raise ProtocolError(f"qubit indices {qubits} do not fit u16")
    parts = [_U16.pack(len(gate_bytes)), gate_bytes, bytes([len(qubits)])]
    parts.extend(_U16.pack(q) for q in qubits)
    return b"".join(parts)


def _decode_key(cursor: _Cursor) -> _Key:
    gate_len = cursor.u16()
    if gate_len == 0:
        raise ProtocolError("wire key has an empty gate name")
    try:
        gate = cursor.take(gate_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"wire key gate is not utf-8: {exc}") from None
    n_qubits = cursor.u8()
    qubits = tuple(cursor.u16() for _ in range(n_qubits))
    return (gate, qubits)


def _encode_key_batch(keys: Sequence[Tuple[str, Sequence[int]]]) -> bytes:
    if not keys:
        raise ProtocolError("a key batch must name at least one pulse")
    if len(keys) > MAX_KEYS_PER_REQUEST:
        raise ProtocolError(
            f"{len(keys)} keys exceed the {MAX_KEYS_PER_REQUEST}-key bound"
        )
    parts = [_U16.pack(len(keys))]
    parts.extend(_encode_key(gate, qubits) for gate, qubits in keys)
    return b"".join(parts)


def _decode_key_batch(cursor: _Cursor) -> Tuple[_Key, ...]:
    n_keys = cursor.u16()
    if n_keys == 0:
        raise ProtocolError("a key batch must name at least one pulse")
    if n_keys > MAX_KEYS_PER_REQUEST:
        raise ProtocolError(
            f"{n_keys} keys exceed the {MAX_KEYS_PER_REQUEST}-key bound"
        )
    return tuple(_decode_key(cursor) for _ in range(n_keys))


# ---------------------------------------------------------------------------
# Requests.
# ---------------------------------------------------------------------------


def encode_fetch(
    keys: Sequence[Tuple[str, Sequence[int]]], mode: int = MODE_SAMPLES
) -> bytes:
    """Encode a FETCH request frame for a batch of pulse keys."""
    if mode not in (MODE_RECORD, MODE_SAMPLES):
        raise ProtocolError(f"unknown fetch mode {mode}")
    return frame(bytes([MSG_FETCH, mode]) + _encode_key_batch(keys))


def encode_ping() -> bytes:
    return frame(bytes([MSG_PING]))


def encode_stats() -> bytes:
    return frame(bytes([MSG_STATS]))


def encode_keys() -> bytes:
    return frame(bytes([MSG_KEYS]))


Request = Union[FetchRequest, PingRequest, StatsRequest, KeysRequest]


def decode_request(payload: bytes) -> Request:
    """Decode one request payload (total: malformed bytes raise)."""
    cursor = _Cursor(payload)
    msg_type = cursor.u8()
    if msg_type not in _REQUEST_TYPES:
        raise ProtocolError(f"unknown request type 0x{msg_type:02x}")
    if msg_type == MSG_FETCH:
        mode = cursor.u8()
        if mode not in (MODE_RECORD, MODE_SAMPLES):
            raise ProtocolError(f"unknown fetch mode {mode}")
        keys = _decode_key_batch(cursor)
        cursor.finish()
        return FetchRequest(mode=mode, keys=keys)
    cursor.finish()
    if msg_type == MSG_PING:
        return PingRequest()
    if msg_type == MSG_STATS:
        return StatsRequest()
    return KeysRequest()


# ---------------------------------------------------------------------------
# Replies.
# ---------------------------------------------------------------------------


def encode_reply_fetch(mode: int, items: Sequence[bytes]) -> bytes:
    """Encode an OK fetch reply carrying one payload blob per key."""
    if mode not in (MODE_RECORD, MODE_SAMPLES):
        raise ProtocolError(f"unknown fetch mode {mode}")
    parts = [bytes([MSG_REPLY, STATUS_OK, MSG_FETCH, mode]), _U32.pack(len(items))]
    for item in items:
        parts.append(_U32.pack(len(item)))
        parts.append(item)
    return frame(b"".join(parts))


def encode_reply_ping() -> bytes:
    return frame(bytes([MSG_REPLY, STATUS_OK, MSG_PING]))


def encode_reply_stats(stats_json: bytes) -> bytes:
    return frame(
        bytes([MSG_REPLY, STATUS_OK, MSG_STATS])
        + _U32.pack(len(stats_json))
        + stats_json
    )


def encode_reply_keys(keys: Sequence[Tuple[str, Sequence[int]]]) -> bytes:
    return frame(bytes([MSG_REPLY, STATUS_OK, MSG_KEYS]) + _encode_key_batch(keys))


def encode_reply_overload() -> bytes:
    """Explicit admission-control shed: no body, the client backs off."""
    return frame(bytes([MSG_REPLY, STATUS_OVERLOAD]))


def encode_reply_error(message: str) -> bytes:
    data = message.encode("utf-8")[:0xFFFF]
    return frame(bytes([MSG_REPLY, STATUS_ERROR]) + _U16.pack(len(data)) + data)


def decode_reply(payload: bytes) -> Reply:
    """Decode one reply payload (total: malformed bytes raise)."""
    cursor = _Cursor(payload)
    msg_type = cursor.u8()
    if msg_type != MSG_REPLY:
        raise ProtocolError(f"expected a reply frame, got type 0x{msg_type:02x}")
    status = cursor.u8()
    if status == STATUS_OVERLOAD:
        cursor.finish()
        return Reply(status=STATUS_OVERLOAD)
    if status == STATUS_ERROR:
        length = cursor.u16()
        try:
            message = cursor.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"error reply is not utf-8: {exc}") from None
        cursor.finish()
        return Reply(status=STATUS_ERROR, message=message)
    if status != STATUS_OK:
        raise ProtocolError(f"unknown reply status {status}")
    echo_type = cursor.u8()
    if echo_type == MSG_FETCH:
        mode = cursor.u8()
        if mode not in (MODE_RECORD, MODE_SAMPLES):
            raise ProtocolError(f"unknown fetch mode {mode}")
        n_items = cursor.u32()
        if n_items > MAX_KEYS_PER_REQUEST:
            raise ProtocolError(
                f"{n_items} reply items exceed the "
                f"{MAX_KEYS_PER_REQUEST}-key bound"
            )
        items = tuple(cursor.take(cursor.u32()) for _ in range(n_items))
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_FETCH, mode=mode, items=items)
    if echo_type == MSG_STATS:
        blob = cursor.take(cursor.u32())
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_STATS, items=(blob,))
    if echo_type == MSG_KEYS:
        keys = _decode_key_batch(cursor)
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_KEYS, keys=keys)
    if echo_type == MSG_PING:
        cursor.finish()
        return Reply(status=STATUS_OK, echo_type=MSG_PING)
    raise ProtocolError(f"reply echoes unknown request type 0x{echo_type:02x}")


# ---------------------------------------------------------------------------
# Decoded-sample items.
# ---------------------------------------------------------------------------


def encode_samples_item(waveform: Waveform) -> bytes:
    """Serialize one decoded waveform as a fetch-reply item.

    The complex128 sample bytes go over the wire verbatim, so the
    client-side reconstruction is bit-identical to the server's decoded
    waveform -- no re-quantization anywhere on the path.
    """
    name_bytes = waveform.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ProtocolError(f"waveform name {waveform.name!r} does not fit u16")
    samples = np.ascontiguousarray(waveform.samples, dtype=np.complex128)
    return b"".join(
        (
            _U16.pack(len(name_bytes)),
            name_bytes,
            _F64.pack(float(waveform.dt)),
            _U32.pack(samples.size),
            samples.tobytes(),
        )
    )


def decode_samples_item(
    item: bytes, gate: str, qubits: Tuple[int, ...]
) -> Waveform:
    """Rebuild a decoded waveform from its fetch-reply item bytes."""
    cursor = _Cursor(item)
    name_len = cursor.u16()
    try:
        name = cursor.take(name_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"waveform name is not utf-8: {exc}") from None
    dt = cursor.f64()
    n_samples = cursor.u32()
    raw = cursor.take(n_samples * 16)
    cursor.finish()
    samples = np.frombuffer(raw, dtype=np.complex128).copy()
    try:
        return Waveform(
            name=name, samples=samples, dt=dt, gate=gate, qubits=qubits
        )
    except Exception as exc:
        raise ProtocolError(f"reply samples are not a valid waveform: {exc}") from None
