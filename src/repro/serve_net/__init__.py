"""The CQN1 network serving tier: a socket in front of the pulse store.

Everything below :mod:`repro.store` is in-process; this package is the
room-temperature side of the link a scaled control stack assumes
between gate issue and the compressed waveform memory -- a real server
on a real socket, with the serving-tier policies that keep it stable
under load:

- :mod:`repro.serve_net.protocol` -- the ``CQN1`` length-prefixed
  binary wire protocol (request = pulse-key batch, response = status +
  raw ``CQW1`` record bytes or decoded-sample payloads) with a total
  parser: malformed bytes always raise
  :class:`~repro.errors.ProtocolError`, never yield garbage.
- :mod:`repro.serve_net.server` -- :class:`NetPulseServer`, an asyncio
  front end over :class:`~repro.store.PulseServer` with bounded
  admission control (explicit overload responses, no unbounded
  queueing), event-loop-level request coalescing layered on the store's
  per-shard single-flight, and graceful drain-on-shutdown.
- :mod:`repro.serve_net.client` -- :class:`PulseClient` (blocking
  sockets) and :class:`AsyncPulseClient` (asyncio), the redesigned
  public client API, with optional seeded retry-with-backoff on
  overload replies.
- :mod:`repro.serve_net.workers` -- :class:`DecodePool`, a
  multi-process decode pool with shared-memory result handoff that
  takes cold-miss fills off the serving process's cores.
- :mod:`repro.serve_net.loadgen` -- closed- and open-loop load
  generators reporting p50/p95/p99 latency, throughput, overload and
  retry counts; the measurement half of ``BENCH_network.json``.

Quickstart::

    from repro.serve_net import PulseClient, serve_in_thread
    from repro.store import PulseServer, open_store

    with PulseServer(open_store("guadalupe.cqs")) as serving:
        with serve_in_thread(serving) as handle:
            with PulseClient(*handle.address) as client:
                pulse = client.fetch("sx", (0,))
"""

from repro.serve_net.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    OBS_EXT_VERSION,
    MODE_RECORD,
    MODE_SAMPLES,
    STATUS_OK,
    STATUS_OVERLOAD,
    STATUS_ERROR,
    MAX_FRAME_BYTES,
    MAX_REQUEST_FRAME_BYTES,
    MAX_KEYS_PER_REQUEST,
    MAX_TRACES_PER_REQUEST,
)
from repro.serve_net.server import (
    NetPulseServer,
    NetServerHandle,
    NetServerStats,
    serve_in_thread,
)
from repro.serve_net.client import AsyncPulseClient, PulseClient, parse_address
from repro.serve_net.workers import DEFAULT_SHM_LIMIT, DecodePool, PoolStats
from repro.serve_net.loadgen import (
    LoadReport,
    latency_summary,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "MODE_RECORD",
    "MODE_SAMPLES",
    "STATUS_OK",
    "STATUS_OVERLOAD",
    "STATUS_ERROR",
    "MAX_FRAME_BYTES",
    "MAX_REQUEST_FRAME_BYTES",
    "MAX_KEYS_PER_REQUEST",
    "MAX_TRACES_PER_REQUEST",
    "OBS_EXT_VERSION",
    "NetPulseServer",
    "NetServerHandle",
    "NetServerStats",
    "serve_in_thread",
    "PulseClient",
    "AsyncPulseClient",
    "parse_address",
    "DecodePool",
    "PoolStats",
    "DEFAULT_SHM_LIMIT",
    "LoadReport",
    "latency_summary",
    "run_closed_loop",
    "run_open_loop",
]
