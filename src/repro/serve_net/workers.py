"""Multi-process decode workers with shared-memory sample handoff.

COMPAQT's scaling argument is that *decode bandwidth*, not storage, is
the bottleneck for qubit-control waveform memory -- and the serving
tier mirrors that: a single Python process tops out on the cold-miss
path because the fused parse walk and CQN1 framing hold the GIL even
though the numpy inverse kernels release it.  This module fans the
cold path out across real processes, the software analogue of the
parallel decode lanes the controller-scaling literature puts behind
one front end.

Architecture (one :class:`DecodePool`, ``N`` workers)::

    caller threads                 parent                    workers
    --------------     --------------------------    -------------------
    decode(keys) ----> slot acquire (condition)
                       job -> request pipe  ------>  open store handle
                                                     fused decode_many
                                                     samples -> shm slab
                       dispatcher thread  <--------  ("ok", metas) pipe
                       future resolves
    materialize from slab (read-only view)
    slot released  <-- only after materialize

Design points:

* **No sample bytes through a pipe.**  Each worker owns one
  parent-created ``multiprocessing.shared_memory`` slab; decoded
  complex128 buffers are written at 16-byte-aligned offsets and only
  tiny ``(name, dt, gate, qubits, offset, n)`` metadata tuples cross
  the pipe.  Jobs whose samples exceed the slab fall back to sending
  bytes through the pipe -- correct, counted, just slower.
* **One job in flight per worker.**  A slot is reacquirable only
  after the *caller* finishes materializing from the slab, so a slab
  is never overwritten while a reader still points at it.
* **Crash containment via channel isolation.**  Each worker talks
  over its own pair of ``Pipe`` connections -- never a shared
  ``multiprocessing.Queue``, whose cross-process feeder locks a dying
  worker can leave held forever (the reason
  ``ProcessPoolExecutor`` declares the whole pool broken on one
  death).  A dead worker can only corrupt its own channels, and a
  respawn replaces them wholesale: the dispatcher thread multiplexes
  results with :func:`multiprocessing.connection.wait`, reads death
  as EOF, fails only that worker's in-flight keys with a typed
  :class:`~repro.errors.DecodeWorkerError`, and restarts the lane on
  fresh pipes.  Coalesced waiters never hang.
* **Typed errors end to end.**  Worker-side failures are shipped as
  ``(type name, message)`` and mapped back onto the
  :mod:`repro.errors` hierarchy in the parent; anything unknown
  arrives as :class:`~repro.errors.DecodeWorkerError`.

``workers=0`` at the serving layer means "no pool at all" -- the
in-process fill path is untouched.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from multiprocessing import connection, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.errors as _errors
from repro.errors import DecodeWorkerError, StoreError
from repro.obs import DEFAULT_SIZE_BOUNDS, MetricsRegistry, merge_snapshots
from repro.obs import trace as obs_trace
from repro.pulses.waveform import Waveform
from repro.store.sharded import StoreHandle

__all__ = ["DEFAULT_SHM_LIMIT", "DecodePool", "PoolStats"]

#: Default per-worker shared-memory slab, sized for serving batches:
#: the largest catalog pulses run ~500 complex128 samples (8 KB), so
#: 8 MiB holds a 64-pulse batch with two orders of magnitude to spare.
DEFAULT_SHM_LIMIT = 8 << 20

_ALIGN = 16  # complex128 itemsize; keeps frombuffer offsets aligned.

_Key = Tuple[str, Tuple[int, ...]]

#: Worker -> parent error mapping: every public exception class in
#: :mod:`repro.errors` can round-trip by name; anything else is
#: wrapped in :class:`DecodeWorkerError` on arrival.
_TYPED_ERRORS: Dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, _errors.ReproError)
}


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _fail(future: Future, exc: BaseException) -> bool:
    """Fail ``future`` unless a resolution already won the race.

    A worker can die immediately *after* shipping its result: the
    dispatcher then sees both the "ok" message and the EOF for the
    same slot (the caller has not released it yet), and the death
    path must not re-resolve the finished future -- the
    ``InvalidStateError`` would kill the dispatcher thread, and a
    dead dispatcher strands every later job forever.

    Returns whether this call resolved the future: the caller that
    wins the race owns the job's ok/failed accounting.
    """
    try:
        future.set_exception(exc)
        return True
    except InvalidStateError:
        return False


def _pack_results(waveforms, buf, limit: int):
    """Lay decoded sample buffers into the slab (or a fallback payload).

    Returns ``(metas, used_shm, payload)`` where each meta is
    ``(name, dt, gate, qubits, byte_offset, n_samples)`` and offsets
    index into the slab when ``used_shm`` else into ``payload``.
    """
    total = 0
    for waveform in waveforms:
        total = _aligned(total) + waveform.samples.nbytes
    if total <= limit:
        metas = []
        offset = 0
        for waveform in waveforms:
            offset = _aligned(offset)
            raw = waveform.samples.tobytes()
            buf[offset : offset + len(raw)] = raw
            metas.append(
                (
                    waveform.name,
                    waveform.dt,
                    waveform.gate,
                    tuple(waveform.qubits),
                    offset,
                    waveform.samples.size,
                )
            )
            offset += len(raw)
        return metas, True, None
    # Slab overflow: ship the bytes through the pipe instead.  Same
    # layout discipline so the parent materializer is shared.
    metas = []
    chunks = []
    offset = 0
    for waveform in waveforms:
        aligned = _aligned(offset)
        if aligned != offset:
            chunks.append(b"\x00" * (aligned - offset))
            offset = aligned
        raw = waveform.samples.tobytes()
        chunks.append(raw)
        metas.append(
            (
                waveform.name,
                waveform.dt,
                waveform.gate,
                tuple(waveform.qubits),
                offset,
                waveform.samples.size,
            )
        )
        offset += len(raw)
    return metas, False, b"".join(chunks)


def _materialize(metas, buf) -> List[Waveform]:
    """Rebuild waveforms from a packed buffer as immutable-by-aliasing.

    Each sample array is copied out of the (transient) slab into a
    private owner, flagged read-only, and served as a *view over that
    read-only owner* -- exactly the shape
    :func:`repro.store.cache._lock_samples` treats as already safe, so
    cache insertion takes the zero-copy path.
    """
    out = []
    for name, dt, gate, qubits, offset, n_samples in metas:
        owned = np.frombuffer(
            buf, dtype=np.complex128, count=n_samples, offset=offset
        ).copy()
        owned.setflags(write=False)
        samples = owned[:]
        waveform = object.__new__(Waveform)
        set_ = object.__setattr__
        set_(waveform, "name", name)
        set_(waveform, "samples", samples)
        set_(waveform, "dt", dt)
        set_(waveform, "gate", gate)
        set_(waveform, "qubits", tuple(qubits))
        set_(waveform, "metadata", {})
        out.append(waveform)
    return out


def _worker_main(
    handle: StoreHandle,
    request_conn,
    result_conn,
    shm_name: str,
    shm_limit: int,
) -> None:
    """Worker loop: attach the slab, open the store, serve decode jobs.

    Runs in a child process (must stay module-level and fully picklable
    for ``spawn``).  Every failure inside a job is shipped back typed;
    the loop itself exits on the ``stop`` sentinel or parent-side EOF.
    """
    # Python 3.11's SharedMemory registers *attached* segments with the
    # resource tracker too (no ``track=False`` until 3.13).  The parent
    # owns creation and unlink; letting the attach register would either
    # log spurious leak warnings at worker shutdown (spawn: own tracker)
    # or -- worse -- strip the parent's registration when a worker-side
    # unregister reaches the shared fork tracker.  So registration is
    # suppressed for the duration of the attach.
    from multiprocessing import resource_tracker

    register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = register
    store = handle.open()
    # Per-lane telemetry: a private registry whose *cumulative*
    # snapshot rides back on every result message.  The dispatcher
    # keeps the latest snapshot per lane and folds a dead lane's last
    # snapshot into a retired total, so pool-wide aggregation survives
    # worker death.
    lane_metrics = MetricsRegistry()
    lane_jobs = lane_metrics.counter("pool.worker.jobs")
    lane_pulses = lane_metrics.counter("pool.worker.pulses")
    lane_decode_s = lane_metrics.histogram("pool.worker.decode_seconds")
    try:
        while True:
            try:
                message = request_conn.recv()
            except (EOFError, OSError):
                break  # parent went away: exit quietly.
            if message[0] == "stop":
                break
            _, job_id, keys, crash, traced = message
            if crash:
                # Deterministic crash seam for lifecycle tests and the
                # chaos harness: die exactly as an OOM-killed or
                # segfaulted worker would -- no cleanup, no reply.
                os._exit(1)
            try:
                started = time.perf_counter()
                waveforms = store.decode_many(keys)
                metas, used_shm, payload = _pack_results(
                    waveforms, shm.buf, shm_limit
                )
                duration = time.perf_counter() - started
                lane_jobs.inc()
                lane_pulses.inc(len(keys))
                lane_decode_s.observe(duration)
                # perf_counter is CLOCK_MONOTONIC on Linux -- system-
                # wide, so this start/duration pair is directly
                # comparable to spans measured in the parent.
                span = (
                    ("pool.worker", started, duration, {"pid": os.getpid()})
                    if traced
                    else None
                )
                result_conn.send(
                    (
                        "ok",
                        job_id,
                        metas,
                        used_shm,
                        payload,
                        span,
                        lane_metrics.snapshot(),
                    )
                )
            except BaseException as exc:  # ship *everything* back typed
                result_conn.send(
                    (
                        "err",
                        job_id,
                        type(exc).__name__,
                        str(exc),
                        lane_metrics.snapshot(),
                    )
                )
    finally:
        store.close()
        shm.close()
        request_conn.close()
        result_conn.close()


@dataclass(frozen=True, slots=True)
class PoolStats:
    """A point-in-time snapshot of one pool's counters."""

    workers: int
    start_method: str
    shm_limit: int
    jobs_ok: int
    jobs_failed: int
    shm_jobs: int
    fallback_jobs: int
    worker_deaths: int
    respawns: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "shm_limit": self.shm_limit,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "shm_jobs": self.shm_jobs,
            "fallback_jobs": self.fallback_jobs,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
        }

    to_dict = as_dict


class _Slot:
    """One worker lane: process + private pipes + shm slab.

    The pipes belong to exactly one worker generation; a respawn
    replaces them, so a killed process can never wedge its successor.
    """

    __slots__ = (
        "index",
        "shm",
        "process",
        "request_conn",
        "result_conn",
        "job_id",
        "future",
        "metrics",
    )

    def __init__(self, index: int, shm) -> None:
        self.index = index
        self.shm = shm
        self.process = None
        self.request_conn = None  # parent-side write end
        self.result_conn = None  # parent-side read end
        self.job_id: Optional[int] = None  # current in-flight job
        self.future: Optional[Future] = None
        self.metrics: Optional[Dict] = None  # latest lane registry snapshot


class DecodePool:
    """A pool of decode worker processes behind one serving parent.

    Args:
        handle: Picklable recipe for the store each worker reopens
            read-only (see :meth:`repro.store.sharded.ShardedStore.handle`).
        workers: Number of worker processes (>= 1; the serving layer's
            ``workers=0`` means "do not construct a pool at all").
        shm_limit: Per-worker shared-memory slab in bytes.  Jobs whose
            decoded samples exceed it fall back to pipe transport
            (counted in ``fallback_jobs``), so a tiny limit degrades
            throughput, never correctness.
        start_method: ``"fork"``, ``"spawn"``, ``"forkserver"``, or
            ``None`` for the platform default.
        metrics: Registry for the parent-side ``pool.*`` counters
            (private by default; the serving layer passes its own so
            one registry covers the whole server).  Worker-side
            ``pool.worker.*`` metrics live in per-lane registries and
            are merged via :meth:`lane_metrics_snapshot`.
    """

    def __init__(
        self,
        handle: StoreHandle,
        workers: int,
        shm_limit: int = DEFAULT_SHM_LIMIT,
        start_method: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise StoreError(f"DecodePool needs workers >= 1, got {workers}")
        if shm_limit < _ALIGN:
            raise StoreError(
                f"shm_limit must be >= {_ALIGN} bytes, got {shm_limit}"
            )
        self._handle = handle
        self._ctx = multiprocessing.get_context(start_method)
        self.workers = workers
        self.shm_limit = shm_limit
        self.start_method = self._ctx.get_start_method()
        self._cond = threading.Condition()
        self._idle: List[int] = []
        self._slots: List[_Slot] = []
        self._closed = False
        self._next_job_id = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._jobs_submitted = self.metrics.counter("pool.jobs_submitted")
        self._jobs_ok = self.metrics.counter("pool.jobs_ok")
        self._jobs_failed = self.metrics.counter("pool.jobs_failed")
        self._shm_jobs = self.metrics.counter("pool.shm_jobs")
        self._fallback_jobs = self.metrics.counter("pool.fallback_jobs")
        self._worker_deaths = self.metrics.counter("pool.worker_deaths")
        self._respawns = self.metrics.counter("pool.respawns")
        self._decode_seconds = self.metrics.histogram("pool.decode_seconds")
        self._decode_pulses = self.metrics.histogram(
            "pool.decode_batch_pulses", DEFAULT_SIZE_BOUNDS
        )
        self._retired_lane_metrics: Dict = merge_snapshots()
        try:
            for index in range(workers):
                shm = shared_memory.SharedMemory(create=True, size=shm_limit)
                slot = _Slot(index, shm)
                self._slots.append(slot)
                self._spawn(slot)
                self._idle.append(index)
        except BaseException:
            self._teardown_segments()
            raise
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="decode-pool-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- worker lifecycle -----------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        """Start a fresh worker generation on ``slot`` with fresh pipes."""
        request_read, request_write = self._ctx.Pipe(duplex=False)
        result_read, result_write = self._ctx.Pipe(duplex=False)
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._handle,
                request_read,
                result_write,
                slot.shm.name,
                self.shm_limit,
            ),
            name=f"decode-worker-{slot.index}",
            daemon=True,
        )
        slot.process.start()
        # The child owns its ends now; keeping our copies open would
        # mask worker death (no EOF on the result pipe).
        request_read.close()
        result_write.close()
        slot.request_conn = request_write
        slot.result_conn = result_read

    @property
    def pids(self) -> List[int]:
        """Live worker PIDs (the chaos harness kills from this list)."""
        with self._cond:
            return [
                slot.process.pid
                for slot in self._slots
                if slot.process is not None and slot.process.pid is not None
            ]

    # -- the decode path ------------------------------------------------------

    def decode(
        self,
        keys: Sequence[Tuple[str, Sequence[int]]],
        *,
        _crash_worker: bool = False,
    ) -> List[Waveform]:
        """Fused-decode ``keys`` in a worker; results in request order.

        Thread-safe; callers block while all lanes are busy (one job in
        flight per worker).  Raises the worker's typed error on decode
        failure, or :class:`~repro.errors.DecodeWorkerError` if the
        worker died mid-job or the pool is closed.

        ``_crash_worker`` is the deterministic crash seam: the worker
        ``os._exit(1)``'s instead of decoding (tests + chaos only).
        """
        if not keys:
            return []
        slot = self._acquire_slot()
        try:
            future: Future = Future()
            with self._cond:
                if self._closed:
                    raise DecodeWorkerError("decode pool is closed")
                job_id = self._next_job_id
                self._next_job_id += 1
                slot.job_id = job_id
                slot.future = future
                request_conn = slot.request_conn
                self._jobs_submitted.inc()
            started = time.perf_counter()
            with obs_trace.span("pool.decode", lane=slot.index, keys=len(keys)) as sp:
                try:
                    request_conn.send(
                        ("job", job_id, list(keys), _crash_worker, sp is not None)
                    )
                except (BrokenPipeError, EOFError, OSError):
                    # The worker died under us; the dispatcher will see
                    # the EOF on its result pipe and fail this future
                    # typed.
                    pass
                metas, used_shm, payload, worker_span = future.result()
                if sp is not None and worker_span is not None:
                    # Graft the worker-measured decode span into the
                    # live trace (same perf_counter domain on Linux).
                    stage, span_start, span_duration, tags = worker_span
                    sp.add_finished_child(stage, span_start, span_duration, **tags)
                buf = slot.shm.buf if used_shm else payload
                out = _materialize(metas, buf)
            self._decode_seconds.observe(time.perf_counter() - started)
            self._decode_pulses.observe(len(keys))
            return out
        finally:
            # Release *after* materializing -- the slab must not be
            # overwritten by the next job while we still read from it.
            self._release_slot(slot)

    def _acquire_slot(self) -> _Slot:
        with self._cond:
            while not self._idle and not self._closed:
                self._cond.wait()
            if self._closed:
                raise DecodeWorkerError("decode pool is closed")
            return self._slots[self._idle.pop()]

    def _release_slot(self, slot: _Slot) -> None:
        with self._cond:
            slot.job_id = None
            slot.future = None
            if not self._closed:
                self._idle.append(slot.index)
                self._cond.notify()

    # -- the dispatcher thread ------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Multiplex result pipes; turn EOF into contained worker death.

        Containment of last resort: if the loop itself ever raises, a
        silently dead dispatcher would strand every waiter forever, so
        ``_abort`` fails all in-flight futures typed, wakes blocked
        slot acquirers, and tears the lanes down before re-raising.
        """
        try:
            self._dispatch()
        except BaseException:
            self._abort("decode pool dispatcher crashed; pool is closed")
            raise

    def _dispatch(self) -> None:
        while True:
            with self._cond:
                if self._closed and all(
                    slot.future is None for slot in self._slots
                ):
                    return
                by_conn = {
                    slot.result_conn: slot
                    for slot in self._slots
                    if slot.result_conn is not None
                }
            try:
                ready = connection.wait(list(by_conn), timeout=0.05)
            except OSError:
                ready = []
            if not ready:
                self._reap_dead_workers()
                continue
            for conn in ready:
                slot = by_conn[conn]
                with self._cond:
                    if slot.result_conn is not conn:
                        continue  # lane respawned since we polled
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._handle_death(slot)
                    continue
                self._handle_result(slot, message)

    def _handle_result(self, slot: _Slot, message) -> None:
        kind, job_id = message[0], message[1]
        with self._cond:
            if slot.job_id != job_id or slot.future is None:
                return  # stale result from before a respawn: drop it.
            future = slot.future
            if kind == "ok":
                _, _, metas, used_shm, payload, worker_span, lane_snap = message
            else:
                _, _, exc_name, exc_message, lane_snap = message
            slot.metrics = lane_snap
        # Job accounting follows the future's *resolution*: whoever
        # resolves it (this handler, close(), _abort(), or the death
        # path) counts it, so ``jobs_ok + jobs_failed ==
        # jobs_submitted`` holds exactly even across shutdown races --
        # the chaos invariant checker enforces that law.
        if kind == "ok":
            try:
                future.set_result((metas, used_shm, payload, worker_span))
            except InvalidStateError:
                return  # close() failed it while the result was in the pipe
            self._jobs_ok.inc()
            if used_shm:
                self._shm_jobs.inc()
            else:
                self._fallback_jobs.inc()
        else:
            exc_type = _TYPED_ERRORS.get(exc_name)
            if exc_type is None:
                exc: BaseException = DecodeWorkerError(
                    f"decode worker failed: {exc_name}: {exc_message}"
                )
            else:
                exc = exc_type(exc_message)
            if _fail(future, exc):
                self._jobs_failed.inc()

    def _handle_death(self, slot: _Slot) -> None:
        """Fail a dead worker's in-flight keys; respawn it on its slot."""
        with self._cond:
            process = slot.process
            if process is None:
                return
            self._worker_deaths.inc()
            future = slot.future
            slot.job_id = None
            slot.future = None
            # Fold the lane's last-known snapshot into the retired
            # total so pool-wide aggregation survives the death; the
            # respawned generation starts its own snapshot from zero.
            if slot.metrics is not None:
                self._retired_lane_metrics = merge_snapshots(
                    self._retired_lane_metrics, slot.metrics
                )
                slot.metrics = None
            pid = process.pid
            process.join()
            for conn in (slot.request_conn, slot.result_conn):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            slot.request_conn = None
            slot.result_conn = None
            if self._closed:
                # Draining: fail the job but do not replace the lane.
                slot.process = None
            else:
                self._spawn(slot)
                self._respawns.inc()
        # Resolve outside the lock: the waiter's next move is
        # reacquiring it in _release_slot.  A future already resolved
        # means the worker shipped its result and died afterwards: the
        # job *succeeded* and was counted by whoever resolved it.
        if future is not None and _fail(
            future,
            DecodeWorkerError(
                f"decode worker {slot.index} (pid {pid}) died "
                "mid-job; its in-flight keys failed and the worker "
                "was respawned"
            ),
        ):
            self._jobs_failed.inc()

    def _abort(self, reason: str) -> None:
        """Fail everything and tear down -- never leave waiters hanging."""
        with self._cond:
            self._closed = True
            self._idle.clear()
            futures = [
                slot.future for slot in self._slots if slot.future is not None
            ]
            for slot in self._slots:
                slot.job_id = None
                slot.future = None
            self._cond.notify_all()
        for future in futures:
            if _fail(future, DecodeWorkerError(reason)):
                self._jobs_failed.inc()
        for slot in self._slots:
            process = slot.process
            slot.process = None
            if process is not None:
                process.terminate()
                process.join(timeout=2.0)
            for conn in (slot.request_conn, slot.result_conn):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            slot.request_conn = None
            slot.result_conn = None
        self._teardown_segments()

    def _reap_dead_workers(self) -> None:
        """Liveness sweep between polls (catches death without EOF)."""
        for slot in self._slots:
            with self._cond:
                process = slot.process
                if process is None or process.is_alive():
                    continue
            self._handle_death(slot)

    # -- shutdown -------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Graceful drain: finish in-flight jobs, stop workers, unlink shm.

        Idempotent.  Callers blocked waiting for a slot are woken with
        :class:`~repro.errors.DecodeWorkerError`; jobs already in
        flight are allowed ``timeout`` seconds to finish before their
        futures fail typed (never hang).
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._idle.clear()
            self._cond.notify_all()
        pause = threading.Event()
        waited = 0.0
        step = 0.02
        while waited < timeout:
            with self._cond:
                if all(slot.future is None for slot in self._slots):
                    break
            pause.wait(step)
            waited += step
        # Fail anything still in flight (worker wedged past the drain
        # window), then stop the lanes.
        for slot in self._slots:
            with self._cond:
                future = slot.future
                slot.job_id = None
                slot.future = None
            if future is not None and _fail(
                future,
                DecodeWorkerError("decode pool closed while job in flight"),
            ):
                self._jobs_failed.inc()
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=2.0)
        for slot in self._slots:
            if slot.request_conn is not None:
                try:
                    slot.request_conn.send(("stop",))
                except (BrokenPipeError, EOFError, OSError):
                    pass
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for slot in self._slots:
            for conn in (slot.request_conn, slot.result_conn):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            slot.request_conn = None
            slot.result_conn = None
        self._teardown_segments()

    def _teardown_segments(self) -> None:
        for slot in self._slots:
            try:
                slot.shm.close()
                slot.shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "DecodePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bookkeeping ----------------------------------------------------------

    def lane_metrics_snapshot(self) -> Dict:
        """Merged ``pool.worker.*`` metrics across all lanes, ever.

        The latest cumulative snapshot of each live lane plus the
        retired totals of every lane generation that died.  Merging is
        associative and order-independent (see
        :func:`repro.obs.merge_snapshots`), so the aggregate is exact
        no matter how deaths and respawns interleave.
        """
        with self._cond:
            live = [slot.metrics for slot in self._slots if slot.metrics is not None]
            retired = self._retired_lane_metrics
        return merge_snapshots(retired, *live)

    def metrics_snapshot(self) -> Dict:
        """Parent-side ``pool.*`` metrics merged with all worker lanes."""
        return merge_snapshots(self.metrics.snapshot(), self.lane_metrics_snapshot())

    def stats(self) -> PoolStats:
        """Frozen :class:`PoolStats` view over the registry counters."""
        with self._cond:
            return PoolStats(
                workers=self.workers,
                start_method=self.start_method,
                shm_limit=self.shm_limit,
                jobs_ok=self._jobs_ok.value,
                jobs_failed=self._jobs_failed.value,
                shm_jobs=self._shm_jobs.value,
                fallback_jobs=self._fallback_jobs.value,
                worker_deaths=self._worker_deaths.value,
                respawns=self._respawns.value,
            )
