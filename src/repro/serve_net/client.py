"""The redesigned public client API: ``PulseClient`` / ``AsyncPulseClient``.

Both clients speak the ``CQN1`` protocol against a
:class:`~repro.serve_net.server.NetPulseServer` and expose the same
surface as the in-process :class:`~repro.store.PulseServer` --
``fetch`` / ``fetch_batch`` returning decoded
:class:`~repro.pulses.waveform.Waveform` objects bit-identical to the
server's copies -- plus the wire-only extras (raw record fetches,
ping, remote stats, remote key inventory).

Overload is a first-class outcome, not an exception to hide: when the
server sheds a request under admission control, clients raise
:class:`~repro.errors.ServerOverloadedError` so callers can back off,
retry, or (in the load generator's case) count.  Both clients can also
do the backing off themselves: construct with ``retries=N`` and shed
fetches are retried with seeded exponential backoff + jitter before
the error is surfaced (``retries_performed`` counts what that cost).

Connections are lazy: the first request dials the server, ``close``
hangs up, and both clients are context managers.  One client drives
one connection, and requests on it are strictly serialized
(request/response, in order) -- for concurrency, open more clients;
the :mod:`~repro.serve_net.loadgen` module does exactly that.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError, ServerOverloadedError, StoreError
from repro.obs import Tracer
from repro.pulses.waveform import Waveform
from repro.serve_net import protocol

__all__ = ["PulseClient", "AsyncPulseClient", "parse_address"]

_Key = Tuple[str, Tuple[int, ...]]

_Request = Tuple[str, Sequence[int]]


def parse_address(
    address: Union[str, Tuple[str, int]], port: Optional[int] = None
) -> Tuple[str, int]:
    """Normalize ``("host", port)`` / ``"host:port"`` / host+port args."""
    if port is not None:
        if not isinstance(address, str):
            raise StoreError(f"host must be a string, got {address!r}")
        return (address, int(port))
    if isinstance(address, tuple) and len(address) == 2:
        return (str(address[0]), int(address[1]))
    if isinstance(address, str) and ":" in address:
        host, _, port_text = address.rpartition(":")
        try:
            return (host, int(port_text))
        except ValueError:
            raise StoreError(f"bad port in address {address!r}") from None
    raise StoreError(
        f"expected ('host', port) or 'host:port', got {address!r}"
    )


def _check_reply(reply: protocol.Reply, expected_type: int) -> protocol.Reply:
    if reply.status == protocol.STATUS_OVERLOAD:
        raise ServerOverloadedError(
            "server shed the request under admission control"
        )
    if reply.status == protocol.STATUS_ERROR:
        raise StoreError(f"server error: {reply.message}")
    if reply.echo_type != expected_type:
        raise ProtocolError(
            f"reply echoes type 0x{reply.echo_type:02x}, "
            f"expected 0x{expected_type:02x}"
        )
    return reply


def _decode_fetch_reply(
    reply: protocol.Reply, keys: Sequence[_Key], mode: int
) -> List:
    reply = _check_reply(reply, protocol.MSG_FETCH)
    if reply.mode != mode:
        raise ProtocolError(
            f"reply mode {reply.mode} does not match request mode {mode}"
        )
    if len(reply.items) != len(keys):
        raise ProtocolError(
            f"reply carries {len(reply.items)} items for {len(keys)} keys"
        )
    if mode == protocol.MODE_RECORD:
        return list(reply.items)
    return [
        protocol.decode_samples_item(item, gate, qubits)
        for item, (gate, qubits) in zip(reply.items, keys)
    ]


def _normalize(requests: Sequence[_Request]) -> List[_Key]:
    return [(gate, tuple(int(q) for q in qubits)) for gate, qubits in requests]


def _validate_retry(retries: int, backoff: float) -> None:
    if retries < 0:
        raise StoreError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise StoreError(f"backoff must be >= 0, got {backoff}")


def _retry_delay(rng: random.Random, backoff: float, attempt: int) -> float:
    """Exponential backoff with jitter in [0.5x, 1.5x) of the step.

    Jitter is driven by the client's seeded RNG so load tests are
    reproducible while real fleets still decorrelate their retries.
    """
    return backoff * (2**attempt) * (0.5 + rng.random())


class PulseClient:
    """Blocking ``CQN1`` client over a plain TCP socket.

    Args:
        address: ``("host", port)``, ``"host:port"``, or a host string
            combined with the ``port`` argument.
        port: Port when ``address`` is a bare host name.
        timeout: Socket timeout in seconds for connect and each
            request/response round trip.
        retries: How many times a fetch shed with ``STATUS_OVERLOAD``
            is retried before :class:`~repro.errors.ServerOverloadedError`
            surfaces.  0 (the default) preserves raise-immediately.
        backoff: Base delay in seconds for the exponential backoff
            schedule (doubles per attempt, jittered).
        seed: Seed for the jitter RNG (``None`` = nondeterministic).
        tracer: Optional :class:`~repro.obs.Tracer`.  Sampled fetches
            open a ``client.fetch`` root span and propagate its ids to
            the server in a ``FETCH_TRACED`` frame, so the server-side
            stage spans land in the same trace.  ``None`` disables
            client-side tracing (and the frames stay byte-identical to
            the pre-extension protocol).
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        port: Optional[int] = None,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        _validate_retry(retries, backoff)
        self.address = parse_address(address, port)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retries_performed = 0
        self.tracer = tracer
        self._rng = random.Random(seed)
        self._sock: Optional[socket.socket] = None

    # -- lifecycle -------------------------------------------------------------

    def connect(self) -> "PulseClient":
        """Dial the server (no-op if already connected)."""
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    self.address, timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError as exc:
                self._sock = None
                raise StoreError(
                    f"cannot connect to {self.address[0]}:{self.address[1]}: {exc}"
                ) from None
        return self

    def close(self) -> None:
        """Hang up (idempotent); the next request reconnects."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "PulseClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire I/O --------------------------------------------------------------

    def _roundtrip(self, request_frame: bytes) -> protocol.Reply:
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(request_frame)
            header = self._read_exact(4)
            length = protocol.parse_frame_length(header)
            payload = self._read_exact(length)
        except (OSError, ProtocolError):
            # The connection state is unknown after any I/O or framing
            # failure; drop it so the next request redials.
            self.close()
            raise
        return protocol.decode_reply(payload)

    def _read_exact(self, n: int) -> bytes:
        assert self._sock is not None
        chunks: List[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise ProtocolError(
                    f"timed out waiting for {remaining} of {n} reply bytes"
                ) from None
            if not chunk:
                raise ProtocolError(
                    f"server closed the connection mid-frame "
                    f"({n - remaining} of {n} bytes read)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- the client API ----------------------------------------------------------

    def fetch(self, gate: str, qubits: Sequence[int]) -> Waveform:
        """One decoded pulse over the wire."""
        return self.fetch_batch([(gate, qubits)])[0]

    def fetch_batch(self, requests: Sequence[_Request]) -> List[Waveform]:
        """A batch of decoded pulses, in request order.

        Raises :class:`~repro.errors.ServerOverloadedError` when the
        server sheds the request (after ``retries`` backed-off
        attempts), :class:`~repro.errors.StoreError` on server-side
        errors (e.g. unknown keys).
        """
        return self._fetch(requests, protocol.MODE_SAMPLES)

    def fetch_records(self, requests: Sequence[_Request]) -> List[bytes]:
        """Raw ``CQW1`` record bytes per key (no decode on either side)."""
        return self._fetch(requests, protocol.MODE_RECORD)

    def _fetch(self, requests: Sequence[_Request], mode: int) -> List:
        keys = _normalize(requests)
        sp = None
        if self.tracer is not None:
            sp = self.tracer.start_trace(
                "client.fetch", keys=len(keys), mode=mode
            )
        trace = None if sp is None else (sp.trace_id, sp.span_id)
        frame = protocol.encode_fetch(keys, mode, trace=trace)
        attempt = 0
        try:
            while True:
                try:
                    return _decode_fetch_reply(
                        self._roundtrip(frame), keys, mode
                    )
                except ServerOverloadedError:
                    if attempt >= self.retries:
                        raise
                    delay = _retry_delay(self._rng, self.backoff, attempt)
                    attempt += 1
                    self.retries_performed += 1
                    time.sleep(delay)
        finally:
            if sp is not None:
                sp.tags["retries"] = attempt
                sp.finish()

    def ping(self) -> float:
        """Round-trip a PING; returns the latency in seconds."""
        start = time.perf_counter()
        _check_reply(self._roundtrip(protocol.encode_ping()), protocol.MSG_PING)
        return time.perf_counter() - start

    def stats(self) -> Dict:
        """The server's counter snapshot (see ``NetServerStats.as_dict``)."""
        reply = _check_reply(
            self._roundtrip(protocol.encode_stats()), protocol.MSG_STATS
        )
        try:
            return json.loads(reply.items[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"stats reply is not JSON: {exc}") from None

    def keys(self) -> List[_Key]:
        """The remote store's full pulse-key inventory."""
        reply = _check_reply(
            self._roundtrip(protocol.encode_keys()), protocol.MSG_KEYS
        )
        return list(reply.keys)

    def metrics(self) -> Dict:
        """The server's merged metrics-registry snapshot.

        Shape: ``{"counters": ..., "gauges": ..., "histograms": ...}``
        (see :meth:`repro.obs.MetricsRegistry.snapshot`), aggregated
        across the network tier, serving layer, cache, decode-worker
        lanes, and the process-wide default registry.
        """
        reply = _check_reply(
            self._roundtrip(protocol.encode_metrics()), protocol.MSG_METRICS
        )
        try:
            return json.loads(reply.items[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"metrics reply is not JSON: {exc}") from None

    def traces(self, limit: int = 16) -> List[Dict]:
        """Up to ``limit`` recent completed traces, newest last."""
        reply = _check_reply(
            self._roundtrip(protocol.encode_traces(limit)), protocol.MSG_TRACES
        )
        try:
            return json.loads(reply.items[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"traces reply is not JSON: {exc}") from None


class AsyncPulseClient:
    """Asyncio ``CQN1`` client; the coroutine twin of :class:`PulseClient`.

    One instance drives one connection and serializes its requests with
    an internal lock, so it is safe to share across tasks -- concurrent
    callers simply queue client-side.  For true request concurrency
    (and to exercise the server's admission control), open several
    clients.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        port: Optional[int] = None,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        _validate_retry(retries, backoff)
        self.address = parse_address(address, port)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retries_performed = 0
        self.tracer = tracer
        self._rng = random.Random(seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    # -- lifecycle -------------------------------------------------------------

    async def connect(self) -> "AsyncPulseClient":
        if self._writer is None:
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(*self.address), timeout=self.timeout
                )
            except (OSError, asyncio.TimeoutError) as exc:
                self._reader = self._writer = None
                raise StoreError(
                    f"cannot connect to {self.address[0]}:{self.address[1]}: {exc}"
                ) from None
        return self

    async def aclose(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncPulseClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- wire I/O --------------------------------------------------------------

    async def _roundtrip(self, request_frame: bytes) -> protocol.Reply:
        async with self._lock:
            await self.connect()
            assert self._reader is not None and self._writer is not None
            try:
                self._writer.write(request_frame)
                await self._writer.drain()
                header = await asyncio.wait_for(
                    self._reader.readexactly(4), timeout=self.timeout
                )
                length = protocol.parse_frame_length(header)
                payload = await asyncio.wait_for(
                    self._reader.readexactly(length), timeout=self.timeout
                )
            except (
                OSError,
                ProtocolError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ) as exc:
                await self.aclose()
                if isinstance(exc, (ProtocolError, OSError)):
                    raise
                if isinstance(exc, asyncio.IncompleteReadError):
                    raise ProtocolError(
                        "server closed the connection mid-frame"
                    ) from None
                raise ProtocolError("timed out waiting for the reply") from None
            return protocol.decode_reply(payload)

    # -- the client API ----------------------------------------------------------

    async def fetch(self, gate: str, qubits: Sequence[int]) -> Waveform:
        return (await self.fetch_batch([(gate, qubits)]))[0]

    async def fetch_batch(self, requests: Sequence[_Request]) -> List[Waveform]:
        return await self._fetch(requests, protocol.MODE_SAMPLES)

    async def fetch_records(self, requests: Sequence[_Request]) -> List[bytes]:
        return await self._fetch(requests, protocol.MODE_RECORD)

    async def _fetch(self, requests: Sequence[_Request], mode: int) -> List:
        keys = _normalize(requests)
        sp = None
        if self.tracer is not None:
            sp = self.tracer.start_trace(
                "client.fetch", keys=len(keys), mode=mode
            )
        trace = None if sp is None else (sp.trace_id, sp.span_id)
        frame = protocol.encode_fetch(keys, mode, trace=trace)
        attempt = 0
        try:
            while True:
                try:
                    return _decode_fetch_reply(
                        await self._roundtrip(frame), keys, mode
                    )
                except ServerOverloadedError:
                    if attempt >= self.retries:
                        raise
                    delay = _retry_delay(self._rng, self.backoff, attempt)
                    attempt += 1
                    self.retries_performed += 1
                    await asyncio.sleep(delay)
        finally:
            if sp is not None:
                sp.tags["retries"] = attempt
                sp.finish()

    async def ping(self) -> float:
        start = time.perf_counter()
        _check_reply(await self._roundtrip(protocol.encode_ping()), protocol.MSG_PING)
        return time.perf_counter() - start

    async def stats(self) -> Dict:
        reply = _check_reply(
            await self._roundtrip(protocol.encode_stats()), protocol.MSG_STATS
        )
        try:
            return json.loads(reply.items[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"stats reply is not JSON: {exc}") from None

    async def keys(self) -> List[_Key]:
        reply = _check_reply(
            await self._roundtrip(protocol.encode_keys()), protocol.MSG_KEYS
        )
        return list(reply.keys)

    async def metrics(self) -> Dict:
        reply = _check_reply(
            await self._roundtrip(protocol.encode_metrics()),
            protocol.MSG_METRICS,
        )
        try:
            return json.loads(reply.items[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"metrics reply is not JSON: {exc}") from None

    async def traces(self, limit: int = 16) -> List[Dict]:
        reply = _check_reply(
            await self._roundtrip(protocol.encode_traces(limit)),
            protocol.MSG_TRACES,
        )
        try:
            return json.loads(reply.items[0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"traces reply is not JSON: {exc}") from None
