"""Fixed-point sample quantization.

Waveform memory stores 16-bit I and 16-bit Q per sample (32 bits total,
Table I's ``Ns`` for IBM).  Envelopes are synthesized in float and
quantized once at compile time; all compression operates on the integer
samples, exactly as COMPAQT's software module would.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SAMPLE_BITS", "FULL_SCALE", "quantize", "dequantize", "quantize_iq"]

#: Bits per channel (I or Q).
SAMPLE_BITS = 16

#: Integer value representing amplitude 1.0.
FULL_SCALE = (1 << (SAMPLE_BITS - 1)) - 1  # 32767


def quantize(values: np.ndarray, full_scale: int = FULL_SCALE) -> np.ndarray:
    """Map floats in [-1, 1] to int16 codes (round-to-nearest, saturating)."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.rint(values * full_scale)
    return np.clip(codes, -full_scale - 1, full_scale).astype(np.int16)


def dequantize(codes: np.ndarray, full_scale: int = FULL_SCALE) -> np.ndarray:
    """Map int16 codes back to floats (inverse of :func:`quantize`)."""
    return np.asarray(codes, dtype=np.float64) / full_scale


def quantize_iq(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split complex samples into quantized (I, Q) int16 channels."""
    samples = np.asarray(samples, dtype=np.complex128)
    return quantize(samples.real), quantize(samples.imag)
