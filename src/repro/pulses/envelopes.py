"""Pulse envelope generators for superconducting qubit control.

These are the waveform families used by IBM/Google control stacks and
referenced throughout the paper (Section II-A):

- :func:`gaussian` / :func:`lifted_gaussian`: symmetric bell shapes for
  simple single-qubit gates;
- :func:`drag`: Derivative Removal by Adiabatic Gate -- the standard
  single-qubit pulse (Fig 8's input waveform).  The quadrature component
  is the scaled derivative of the in-phase Gaussian, so it *crosses
  zero* at the pulse center, which is what defeats the delta-compression
  baseline (Fig 7a);
- :func:`gaussian_square`: flat-top pulse with Gaussian ramps, used for
  cross-resonance two-qubit gates and readout (Fig 13a);
- :func:`cosine_tapered` and :func:`constant`: additional families used
  by the fluxonium device model and tests.

All generators return complex ``float64`` arrays (I = real part,
Q = imaginary part) with magnitudes in [-1, 1].
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian",
    "lifted_gaussian",
    "drag",
    "gaussian_square",
    "cosine_tapered",
    "constant",
]


def _check_duration(duration: int) -> None:
    if duration < 1:
        raise ValueError(f"duration must be >= 1 sample, got {duration}")


def gaussian(duration: int, amp: float, sigma: float) -> np.ndarray:
    """Plain Gaussian envelope (not lifted; edges are non-zero).

    Args:
        duration: Length in samples.
        amp: Peak amplitude.
        sigma: Standard deviation in samples.
    """
    _check_duration(duration)
    t = np.arange(duration, dtype=np.float64)
    center = (duration - 1) / 2
    return (amp * np.exp(-0.5 * ((t - center) / sigma) ** 2)).astype(np.complex128)


def lifted_gaussian(duration: int, amp: float, sigma: float) -> np.ndarray:
    """Gaussian lifted so the first/last samples sit exactly at zero.

    This matches Qiskit Pulse's ``Gaussian``: subtract the value one
    sample outside the window and rescale, which keeps the spectrum
    tight (no step discontinuity at the edges).
    """
    _check_duration(duration)
    t = np.arange(duration, dtype=np.float64)
    center = (duration - 1) / 2
    body = np.exp(-0.5 * ((t - center) / sigma) ** 2)
    edge = np.exp(-0.5 * ((-1 - center) / sigma) ** 2)
    lifted = (body - edge) / (1.0 - edge)
    return (amp * lifted).astype(np.complex128)


def drag(duration: int, amp: float, sigma: float, beta: float) -> np.ndarray:
    """DRAG pulse: lifted Gaussian I, derivative Q (zero-crossing).

    Args:
        duration: Length in samples.
        amp: Peak in-phase amplitude.
        sigma: Gaussian width in samples.
        beta: DRAG coefficient; Q(t) = beta * dI/dt (per-sample units).
    """
    _check_duration(duration)
    i_part = lifted_gaussian(duration, amp, sigma).real
    t = np.arange(duration, dtype=np.float64)
    center = (duration - 1) / 2
    # d/dt of the (unlifted) Gaussian; the lift constant differentiates
    # away.  Same convention as Qiskit Pulse's Drag.
    q_part = beta * (-(t - center) / sigma**2) * amp * np.exp(
        -0.5 * ((t - center) / sigma) ** 2
    )
    return i_part + 1j * q_part


def gaussian_square(
    duration: int, amp: float, sigma: float, width: int
) -> np.ndarray:
    """Flat-top pulse: Gaussian rise, constant plateau, Gaussian fall.

    Args:
        duration: Total length in samples.
        amp: Plateau amplitude.
        sigma: Ramp Gaussian width in samples.
        width: Plateau length in samples; ramps split the remainder.
    """
    _check_duration(duration)
    if not 0 <= width <= duration:
        raise ValueError(f"width {width} outside [0, {duration}]")
    ramp_total = duration - width
    rise_len = ramp_total // 2
    fall_len = ramp_total - rise_len
    envelope = np.full(duration, float(amp), dtype=np.float64)
    if rise_len:
        rise = lifted_gaussian(2 * rise_len, amp, sigma).real[:rise_len]
        envelope[:rise_len] = rise
    if fall_len:
        fall = lifted_gaussian(2 * fall_len, amp, sigma).real[fall_len:]
        envelope[duration - fall_len :] = fall
    return envelope.astype(np.complex128)


def cosine_tapered(duration: int, amp: float, taper_fraction: float = 0.5) -> np.ndarray:
    """Tukey-style envelope: raised-cosine ramps around a flat center.

    ``taper_fraction=1`` gives a pure Hann window; smaller values grow
    the flat plateau.  Used by the fluxonium pulse family.
    """
    _check_duration(duration)
    if not 0.0 < taper_fraction <= 1.0:
        raise ValueError(f"taper_fraction must be in (0, 1], got {taper_fraction}")
    t = np.arange(duration, dtype=np.float64)
    envelope = np.full(duration, float(amp), dtype=np.float64)
    edge = max(1, int(taper_fraction * duration / 2))
    ramp = 0.5 * (1 - np.cos(np.pi * (t[:edge] + 0.5) / edge))
    envelope[:edge] = amp * ramp
    envelope[duration - edge :] = amp * ramp[::-1]
    return envelope.astype(np.complex128)


def constant(duration: int, amp: float) -> np.ndarray:
    """Rectangular envelope (the degenerate flat-top)."""
    _check_duration(duration)
    return np.full(duration, complex(amp), dtype=np.complex128)
