"""The :class:`Waveform` type: a named, timed complex envelope.

A waveform is the paper's unit of storage: the I/Q envelope of one gate
pulse on one qubit (or qubit pair), sampled at the DAC rate.  Sizes and
bandwidth are always derived from ``n_samples`` and the per-sample bit
width, mirroring Section III's memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.pulses.quantization import SAMPLE_BITS, dequantize, quantize_iq

__all__ = ["Waveform"]


@dataclass(frozen=True)
class Waveform:
    """An I/Q pulse envelope bound to a gate and qubit(s).

    Attributes:
        name: Human-readable identifier, e.g. ``"x_q3"`` or ``"cx_q1_q4"``.
        samples: Complex envelope, |samples| <= 1 (I = real, Q = imag).
        dt: Sample period in seconds (1 / DAC sampling rate).
        gate: Gate this waveform implements ("x", "sx", "cx", "measure",
            ...).
        qubits: Qubit indices the pulse acts on.
        metadata: Free-form extra calibration data.
    """

    name: str
    samples: np.ndarray
    dt: float
    gate: str = ""
    qubits: Tuple[int, ...] = ()
    metadata: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.complex128)
        samples.setflags(write=False)
        object.__setattr__(self, "samples", samples)
        if samples.ndim != 1 or samples.size == 0:
            raise ValueError(f"waveform needs 1-D non-empty samples, got {samples.shape}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        peak = float(np.max(np.abs(samples)))
        if peak > 1.0 + 1e-9:
            raise ValueError(f"waveform amplitude {peak:.4f} exceeds 1.0")

    # -- basic geometry ----------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of complex samples."""
        return int(self.samples.size)

    @property
    def duration(self) -> float:
        """Pulse length in seconds."""
        return self.n_samples * self.dt

    @property
    def duration_ns(self) -> float:
        """Pulse length in nanoseconds."""
        return self.duration * 1e9

    # -- memory accounting (Section III) ------------------------------------

    @property
    def sample_bits(self) -> int:
        """Bits per complex sample (16-bit I + 16-bit Q)."""
        return 2 * SAMPLE_BITS

    @property
    def memory_bits(self) -> int:
        """Uncompressed storage footprint in bits (fs * Ns * tau)."""
        return self.n_samples * self.sample_bits

    @property
    def memory_bytes(self) -> float:
        return self.memory_bits / 8

    # -- channels ------------------------------------------------------------

    @property
    def i_channel(self) -> np.ndarray:
        """In-phase (X-rotation) component."""
        return self.samples.real

    @property
    def q_channel(self) -> np.ndarray:
        """Quadrature (Y-rotation) component."""
        return self.samples.imag

    def to_fixed_point(self) -> Tuple[np.ndarray, np.ndarray]:
        """Quantized (I, Q) int16 channel pair -- what memory stores."""
        return quantize_iq(self.samples)

    def with_samples(self, samples: np.ndarray, name: Optional[str] = None) -> "Waveform":
        """Copy of this waveform with new samples (same timing/binding)."""
        return Waveform(
            name=name or self.name,
            samples=samples,
            dt=self.dt,
            gate=self.gate,
            qubits=self.qubits,
            metadata=dict(self.metadata),
        )

    @staticmethod
    def from_fixed_point(
        i_codes: np.ndarray,
        q_codes: np.ndarray,
        dt: float,
        name: str = "reconstructed",
        gate: str = "",
        qubits: Tuple[int, ...] = (),
    ) -> "Waveform":
        """Rebuild a float waveform from quantized channels."""
        samples = dequantize(i_codes) + 1j * dequantize(q_codes)
        # Saturation during decompression can push codes past full scale
        # by a fraction of an LSB; clamp so the invariant holds.
        magnitude = np.abs(samples)
        over = magnitude > 1.0
        if np.any(over):
            samples = samples.copy()
            samples[over] /= magnitude[over]
        return Waveform(name=name, samples=samples, dt=dt, gate=gate, qubits=qubits)

    # -- comparison ----------------------------------------------------------

    def mse(self, other: "Waveform") -> float:
        """Mean squared error between two waveforms (I and Q combined).

        This is the distortion metric Fig 7(c) reports and Algorithm 1
        drives to a target.
        """
        if other.n_samples != self.n_samples:
            raise ValueError(
                f"length mismatch: {self.n_samples} vs {other.n_samples}"
            )
        diff = self.samples - other.samples
        return float(np.mean(diff.real**2 + diff.imag**2))
