"""Waveform synthesis: envelopes, fixed-point samples, pulse libraries."""

from repro.pulses.envelopes import (
    gaussian,
    lifted_gaussian,
    drag,
    gaussian_square,
    cosine_tapered,
    constant,
)
from repro.pulses.quantization import (
    SAMPLE_BITS,
    FULL_SCALE,
    quantize,
    dequantize,
    quantize_iq,
)
from repro.pulses.waveform import Waveform
from repro.pulses.library import PulseLibrary

__all__ = [
    "gaussian",
    "lifted_gaussian",
    "drag",
    "gaussian_square",
    "cosine_tapered",
    "constant",
    "SAMPLE_BITS",
    "FULL_SCALE",
    "quantize",
    "dequantize",
    "quantize_iq",
    "Waveform",
    "PulseLibrary",
]
