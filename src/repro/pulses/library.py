"""Pulse libraries: the device-wide waveform inventory.

A :class:`PulseLibrary` is what the waveform memory holds -- one entry
per (gate, qubit-tuple) pair.  Section III's capacity model is a sum
over exactly this inventory, and the COMPAQT compiler walks it entry by
entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import DeviceError
from repro.pulses.waveform import Waveform

__all__ = ["PulseLibrary"]

_Key = Tuple[str, Tuple[int, ...]]


@dataclass
class PulseLibrary:
    """An ordered collection of waveforms keyed by (gate, qubits).

    Attributes:
        device_name: The device these pulses were "calibrated" for.
    """

    device_name: str = ""
    _entries: Dict[_Key, Waveform] = field(default_factory=dict)

    def add(self, waveform: Waveform) -> None:
        """Insert (or replace) the entry for ``(waveform.gate, waveform.qubits)``."""
        if not waveform.gate:
            raise DeviceError(f"waveform {waveform.name!r} has no gate binding")
        self._entries[(waveform.gate, tuple(waveform.qubits))] = waveform

    def waveform(self, gate: str, qubits: Tuple[int, ...]) -> Waveform:
        """Look up one waveform; raises :class:`DeviceError` if missing."""
        key = (gate, tuple(qubits))
        try:
            return self._entries[key]
        except KeyError:
            raise DeviceError(
                f"no waveform for gate {gate!r} on qubits {tuple(qubits)} "
                f"in library {self.device_name!r}"
            ) from None

    def __contains__(self, key: _Key) -> bool:
        return (key[0], tuple(key[1])) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Waveform]:
        return iter(self._entries.values())

    def keys(self) -> List[_Key]:
        return list(self._entries.keys())

    def gates(self) -> List[str]:
        """Distinct gate names present, in insertion order."""
        seen: Dict[str, None] = {}
        for gate, _qubits in self._entries:
            seen.setdefault(gate, None)
        return list(seen)

    def for_gate(self, gate: str) -> List[Waveform]:
        """All waveforms implementing ``gate``."""
        return [w for (g, _q), w in self._entries.items() if g == gate]

    def for_qubit(self, qubit: int) -> List[Waveform]:
        """All waveforms touching ``qubit`` (1Q, 2Q, readout)."""
        return [w for (_g, qubits), w in self._entries.items() if qubit in qubits]

    # -- memory accounting ---------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Sum of sample counts across all entries."""
        return sum(w.n_samples for w in self)

    @property
    def total_bits(self) -> int:
        """Uncompressed footprint of the whole library in bits."""
        return sum(w.memory_bits for w in self)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    def subset(self, keys: List[_Key]) -> "PulseLibrary":
        """A new library restricted to ``keys`` (used for per-circuit
        working sets, e.g. the qft-4 inventory of Fig 7b)."""
        out = PulseLibrary(device_name=self.device_name)
        for key in keys:
            out.add(self.waveform(*key))
        return out
