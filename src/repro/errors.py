"""Exception hierarchy for the COMPAQT reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompressionError(ReproError):
    """A waveform could not be compressed or decompressed.

    Raised for invalid window sizes, corrupt encoded streams, or when
    fidelity-aware compression cannot satisfy the requested error target.
    """


class DeviceError(ReproError):
    """A device model was queried for something it does not have.

    Raised for unknown device names, out-of-range qubit indices, or gates
    missing from a device's basis set.
    """


class StoreError(ReproError):
    """A sharded pulse store could not be written, opened, or served.

    Raised for corrupt or missing CQS1 manifests, shard files that do
    not match their manifest, and lookups of pulses the store does not
    hold.
    """


class DecodeWorkerError(StoreError):
    """A multiprocess decode worker failed to serve its job.

    Raised by :class:`repro.serve_net.workers.DecodePool` when a worker
    process dies mid-decode (the pool fails only that worker's in-flight
    keys and respawns a replacement), when the pool is closed with jobs
    still queued, or when a worker reports a failure that does not map
    back onto a known typed error.
    """


class ProtocolError(ReproError):
    """A CQN1 network frame could not be encoded or decoded.

    Raised for truncated frames, length prefixes beyond the negotiated
    bound, unknown message types, and any payload whose bytes do not
    parse exactly (the wire parser is total: malformed input always
    raises, never yields garbage).
    """


class ServerOverloadedError(ReproError):
    """The serving tier shed a request under admission control.

    The ``CQN1`` server answers with an explicit overload status instead
    of queueing unboundedly; clients surface that as this exception so
    callers (and the open-loop load generator) can count and retry.
    """


class ChaosError(ReproError):
    """A chaos/soak invariant was violated under fault injection.

    Raised by the :mod:`repro.chaos` harness when a served waveform
    diverges from the scalar oracle, a cache counter law breaks, or an
    injected fault escapes the stack as something other than a typed
    :class:`StoreError` / :class:`CompressionError` /
    :class:`ProtocolError`.
    """


class ScheduleError(ReproError):
    """A circuit could not be scheduled onto a device."""


class SimulationError(ReproError):
    """A quantum simulation received invalid inputs."""
