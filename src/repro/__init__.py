"""COMPAQT: Compressed Waveform Memory Architecture for Scalable Qubit Control.

A full Python reproduction of the MICRO 2022 paper by Maurya and Tannu.

The package is organized bottom-up:

- :mod:`repro.transforms` -- DCT / integer-DCT / RLE / baseline codecs.
- :mod:`repro.pulses` -- waveform envelopes and pulse libraries.
- :mod:`repro.devices` -- synthetic superconducting device models.
- :mod:`repro.compression` -- the compression pipelines (DCT-N, DCT-W,
  int-DCT-W) and memory packing.
- :mod:`repro.core` -- the COMPAQT compiler module, adaptive compression,
  fidelity-aware thresholding, controller and scalability models.
- :mod:`repro.store` -- the CQS1 sharded pulse store, decoded LRU
  cache, and concurrent serving front end.
- :mod:`repro.microarch` -- cycle-level decompression pipeline, banked
  memory, resource / timing / power models.
- :mod:`repro.quantum` -- statevector and pulse-level simulation,
  randomized benchmarking.
- :mod:`repro.circuits` -- circuit IR, transpiler, scheduler, benchmark
  circuits.
- :mod:`repro.qec` -- surface-code patches and syndrome-extraction
  circuits.
- :mod:`repro.analysis` -- capacity/bandwidth scaling models and report
  helpers.

The stable import surface is :mod:`repro.api` -- one namespace holding
the whole compile -> store -> serve -> client -> measure chain.

Quickstart::

    from repro.api import compile_library, compress_waveform, ibm_device

    device = ibm_device("guadalupe")
    waveform = device.pulse_library().waveform("sx", (0,))
    result = compress_waveform(waveform, window_size=16)
    print(result.compression_ratio, result.mse)

    compiled = compile_library("guadalupe")  # whole library in one call
"""

from repro.version import __version__
from repro.errors import (
    ReproError,
    CompressionError,
    DeviceError,
    ScheduleError,
    SimulationError,
    StoreError,
)
from repro.pulses import Waveform
from repro.devices import ibm_device, google_device, fluxonium_device
from repro.compression import (
    CompressionResult,
    compress_waveform,
    decompress_waveform,
)
from repro.core import (
    CompaqtCompiler,
    CompressedPulseLibrary,
    fidelity_aware_compress,
    adaptive_compress,
    RfsocModel,
    qubits_supported,
)
from repro.store import (
    PulseCache,
    PulseServer,
    ShardedStore,
    open_store,
    save_store,
)

# The blessed façade (late import: repro.api re-exports from the
# subpackages above, so it must come after they are importable).
from repro import api
from repro.api import (
    AsyncPulseClient,
    NetPulseServer,
    PulseClient,
    compile_library,
    serve_in_thread,
)

__all__ = [
    "api",
    "compile_library",
    "PulseClient",
    "AsyncPulseClient",
    "NetPulseServer",
    "serve_in_thread",
    "__version__",
    "ReproError",
    "CompressionError",
    "DeviceError",
    "ScheduleError",
    "SimulationError",
    "StoreError",
    "Waveform",
    "ibm_device",
    "google_device",
    "fluxonium_device",
    "CompressionResult",
    "compress_waveform",
    "decompress_waveform",
    "CompaqtCompiler",
    "CompressedPulseLibrary",
    "fidelity_aware_compress",
    "adaptive_compress",
    "RfsocModel",
    "qubits_supported",
    "ShardedStore",
    "PulseCache",
    "PulseServer",
    "save_store",
    "open_store",
]
