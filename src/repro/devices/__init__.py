"""Synthetic device models (IBM heavy-hex family, Google grid, fluxonium)."""

from repro.devices.topology import (
    CouplingMap,
    linear_topology,
    grid_topology,
    heavy_hex_rows,
    FALCON_27_EDGES,
    GUADALUPE_16_EDGES,
)
from repro.devices.backend import DeviceModel, QubitCalibration, EdgeCalibration
from repro.devices.ibm import ibm_device, IBM_DEVICE_NAMES, IBM_SAMPLING_RATE, IBM_DT
from repro.devices.google import google_device, GOOGLE_SAMPLING_RATE, GOOGLE_DT
from repro.devices.fluxonium import fluxonium_device, FLUXONIUM_DT, FLUXONIUM_GATES
from repro.devices.multiqubit_gates import (
    itoffoli_waveform,
    toffoli_waveform,
    ccz_waveform,
    complex_gate_library,
)

__all__ = [
    "CouplingMap",
    "linear_topology",
    "grid_topology",
    "heavy_hex_rows",
    "FALCON_27_EDGES",
    "GUADALUPE_16_EDGES",
    "DeviceModel",
    "QubitCalibration",
    "EdgeCalibration",
    "ibm_device",
    "IBM_DEVICE_NAMES",
    "IBM_SAMPLING_RATE",
    "IBM_DT",
    "google_device",
    "GOOGLE_SAMPLING_RATE",
    "GOOGLE_DT",
    "fluxonium_device",
    "FLUXONIUM_DT",
    "FLUXONIUM_GATES",
    "itoffoli_waveform",
    "toffoli_waveform",
    "ccz_waveform",
    "complex_gate_library",
]
