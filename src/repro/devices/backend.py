"""Device models: per-qubit calibrations and pulse-library synthesis.

A :class:`DeviceModel` plays the role of an IBM/Google backend object:
it owns a coupling map, per-qubit and per-edge calibration data, and
synthesizes the full waveform inventory (:meth:`DeviceModel.pulse_library`)
that the COMPAQT compiler compresses.

Every qubit gets *unique* pulse parameters (drawn from a seeded RNG), so
the libraries show the per-qubit diversity of Fig 4 and the per-qubit
compression scatter of Fig 14 -- the paper's point that waveform memory
cannot be shared across qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DeviceError
from repro.devices.topology import CouplingMap
from repro.pulses.envelopes import drag, gaussian_square
from repro.pulses.library import PulseLibrary
from repro.pulses.waveform import Waveform

__all__ = ["QubitCalibration", "EdgeCalibration", "DeviceModel"]


@dataclass(frozen=True)
class QubitCalibration:
    """Calibrated single-qubit and readout pulse parameters.

    Durations and widths are in samples; amplitudes are in DAC full-scale
    units (<= 1).
    """

    qubit: int
    frequency: float  # Hz, resonant drive frequency
    anharmonicity: float  # Hz, transmon anharmonicity (negative)
    x_duration: int
    x_amp: float
    x_sigma: float
    x_beta: float
    sx_amp: float
    sx_beta: float
    meas_duration: int
    meas_amp: float
    meas_sigma: float
    meas_width: int


@dataclass(frozen=True)
class EdgeCalibration:
    """Calibrated cross-resonance pulse for one *directed* qubit pair."""

    control: int
    target: int
    duration: int
    amp: float
    sigma: float
    width: int
    phase: float  # radians; rotates the envelope into I+jQ


class DeviceModel:
    """A synthetic superconducting device with a full pulse inventory.

    Args:
        name: Device identifier (e.g. ``"ibm_guadalupe"``).
        topology: Qubit coupling map.
        dt: Sample period in seconds (1 / DAC rate).
        qubit_calibrations: One :class:`QubitCalibration` per qubit.
        edge_calibrations: One :class:`EdgeCalibration` per directed edge.
        sample_bits: Bits per stored complex sample (32 for IBM:
            16-bit I + 16-bit Q), used by capacity accounting.
        single_qubit_gates: Names of calibrated 1Q pulse gates.
        two_qubit_gate: Name of the calibrated 2Q pulse gate.
    """

    def __init__(
        self,
        name: str,
        topology: CouplingMap,
        dt: float,
        qubit_calibrations: Sequence[QubitCalibration],
        edge_calibrations: Dict[Tuple[int, int], EdgeCalibration],
        sample_bits: int = 32,
        single_qubit_gates: Tuple[str, ...] = ("x", "sx"),
        two_qubit_gate: str = "cx",
    ) -> None:
        if len(qubit_calibrations) != topology.n_qubits:
            raise DeviceError(
                f"{name}: {len(qubit_calibrations)} calibrations for "
                f"{topology.n_qubits} qubits"
            )
        self.name = name
        self.topology = topology
        self.dt = float(dt)
        self.sample_bits = int(sample_bits)
        self.single_qubit_gates = tuple(single_qubit_gates)
        self.two_qubit_gate = two_qubit_gate
        self._qubit_cals = {cal.qubit: cal for cal in qubit_calibrations}
        self._edge_cals = dict(edge_calibrations)
        self._library: Optional[PulseLibrary] = None

    # -- basic queries ---------------------------------------------------

    @property
    def n_qubits(self) -> int:
        return self.topology.n_qubits

    @property
    def sampling_rate(self) -> float:
        """DAC sampling rate fs in samples/second."""
        return 1.0 / self.dt

    @property
    def basis_gates(self) -> Tuple[str, ...]:
        """Physical + virtual basis: calibrated pulses plus virtual RZ."""
        return self.single_qubit_gates + ("rz", self.two_qubit_gate)

    def qubit_calibration(self, qubit: int) -> QubitCalibration:
        try:
            return self._qubit_cals[qubit]
        except KeyError:
            raise DeviceError(f"{self.name}: no calibration for qubit {qubit}") from None

    def edge_calibration(self, control: int, target: int) -> EdgeCalibration:
        try:
            return self._edge_cals[(control, target)]
        except KeyError:
            raise DeviceError(
                f"{self.name}: no CR calibration for edge ({control}, {target})"
            ) from None

    # -- durations ---------------------------------------------------------

    def gate_duration_samples(self, gate: str, qubits: Tuple[int, ...]) -> int:
        """Pulse length in samples for ``gate`` on ``qubits``.

        Virtual RZ gates take zero time (software Z, Section II-A).
        """
        if gate == "rz":
            return 0
        if gate in self.single_qubit_gates:
            return self.qubit_calibration(qubits[0]).x_duration
        if gate == self.two_qubit_gate:
            return self.edge_calibration(*qubits).duration
        if gate == "measure":
            return self.qubit_calibration(qubits[0]).meas_duration
        raise DeviceError(f"{self.name}: unknown gate {gate!r}")

    def gate_duration(self, gate: str, qubits: Tuple[int, ...]) -> float:
        """Pulse length in seconds."""
        return self.gate_duration_samples(gate, qubits) * self.dt

    # -- pulse synthesis ----------------------------------------------------

    def pulse_library(self) -> PulseLibrary:
        """The device's full waveform inventory (built once, cached).

        Contains one waveform per (1Q gate, qubit), one per directed
        coupled pair for the 2Q gate, and one readout pulse per qubit --
        the same inventory Section III's capacity model sums over.
        """
        if self._library is None:
            self._library = self._build_library()
        return self._library

    def _build_library(self) -> PulseLibrary:
        library = PulseLibrary(device_name=self.name)
        for qubit in range(self.n_qubits):
            cal = self.qubit_calibration(qubit)
            library.add(
                Waveform(
                    name=f"x_q{qubit}",
                    samples=drag(cal.x_duration, cal.x_amp, cal.x_sigma, cal.x_beta),
                    dt=self.dt,
                    gate="x",
                    qubits=(qubit,),
                )
            )
            library.add(
                Waveform(
                    name=f"sx_q{qubit}",
                    samples=drag(cal.x_duration, cal.sx_amp, cal.x_sigma, cal.sx_beta),
                    dt=self.dt,
                    gate="sx",
                    qubits=(qubit,),
                )
            )
            library.add(
                Waveform(
                    name=f"measure_q{qubit}",
                    samples=gaussian_square(
                        cal.meas_duration, cal.meas_amp, cal.meas_sigma, cal.meas_width
                    ),
                    dt=self.dt,
                    gate="measure",
                    qubits=(qubit,),
                )
            )
        for (control, target), cal in sorted(self._edge_cals.items()):
            envelope = gaussian_square(cal.duration, cal.amp, cal.sigma, cal.width)
            rotated = envelope * np.exp(1j * cal.phase)
            library.add(
                Waveform(
                    name=f"{self.two_qubit_gate}_q{control}_q{target}",
                    samples=rotated,
                    dt=self.dt,
                    gate=self.two_qubit_gate,
                    qubits=(control, target),
                )
            )
        return library

    # -- capacity accounting (Section III) ----------------------------------

    def memory_per_qubit_bytes(self) -> float:
        """Average uncompressed waveform memory per qubit device.

        This is the paper's "18KB per qubit" estimate for IBM machines:
        1Q gates + directed CR pulses + readout, averaged over qubits.
        """
        return self.pulse_library().total_bytes / self.n_qubits

    def __repr__(self) -> str:
        return (
            f"DeviceModel(name={self.name!r}, qubits={self.n_qubits}, "
            f"fs={self.sampling_rate / 1e9:.2f} GS/s)"
        )
