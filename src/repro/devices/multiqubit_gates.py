"""Complex multi-qubit gate pulses (Table IX).

The paper checks that COMPAQT's insight extends beyond basis gates by
compressing three-qubit pulses from the literature:

- **iToffoli** [34]: simultaneous cross-resonance drives -- long smooth
  flat-top envelopes, the most compressible entry (R ~ 8.3);
- **Toffoli / CCZ** [81]: machine-learned single-shot pulses -- piecewise
  optimal-control solutions with more spectral content, hence lower
  ratios (R ~ 5.3-5.6).

We synthesize each family accordingly: the iToffoli as a Gaussian-square
drive, and the machine-learned pulses as band-limited random Fourier
envelopes (smooth but wiggly), which lands their compressibility in the
same band the paper reports.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from repro.devices.ibm import IBM_DT
from repro.pulses.envelopes import gaussian_square, lifted_gaussian
from repro.pulses.waveform import Waveform

__all__ = ["itoffoli_waveform", "toffoli_waveform", "ccz_waveform", "complex_gate_library"]


def itoffoli_waveform(dt: float = IBM_DT) -> Waveform:
    """Simultaneous-CR iToffoli pulse (Kim et al. [34]): smooth flat-top.

    ~350 ns drive on the middle qubit of a three-qubit chain.
    """
    duration = 1584
    envelope = gaussian_square(duration, 0.45, 64.0, duration - 256)
    samples = envelope * np.exp(1j * 0.35)
    return Waveform(
        name="itoffoli", samples=samples, dt=dt, gate="itoffoli", qubits=(0, 1, 2)
    )


def _optimal_control_envelope(
    duration: int, amp: float, n_modes: int, seed: int
) -> np.ndarray:
    """Band-limited random-Fourier envelope mimicking learned pulses.

    A sum of the first ``n_modes`` half-sine modes with random weights,
    windowed by a lifted Gaussian so the edges are smooth.  More modes =
    more spectral content = lower compressibility.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(duration) / duration
    window = lifted_gaussian(duration, 1.0, duration / 3.5).real
    i_part = np.zeros(duration)
    q_part = np.zeros(duration)
    for mode in range(1, n_modes + 1):
        basis = np.sin(np.pi * mode * t)
        i_part += rng.normal(0, 1.0 / mode) * basis
        q_part += rng.normal(0, 1.0 / mode) * basis
    envelope = (i_part + 1j * q_part) * window
    peak = np.max(np.abs(envelope))
    return envelope * (amp / peak)


def toffoli_waveform(dt: float = IBM_DT) -> Waveform:
    """Machine-learned single-shot Toffoli pulse (Zahedinejad et al. [81])."""
    samples = _optimal_control_envelope(
        duration=1200, amp=0.55, n_modes=10, seed=zlib.crc32(b"toffoli")
    )
    return Waveform(
        name="toffoli", samples=samples, dt=dt, gate="toffoli", qubits=(0, 1, 2)
    )


def ccz_waveform(dt: float = IBM_DT) -> Waveform:
    """Machine-learned single-shot CCZ pulse (Zahedinejad et al. [81])."""
    samples = _optimal_control_envelope(
        duration=1200, amp=0.5, n_modes=9, seed=zlib.crc32(b"ccz")
    )
    return Waveform(name="ccz", samples=samples, dt=dt, gate="ccz", qubits=(0, 1, 2))


def complex_gate_library(dt: float = IBM_DT) -> Tuple[Waveform, ...]:
    """All Table IX transmon entries, in paper order."""
    return (itoffoli_waveform(dt), toffoli_waveform(dt), ccz_waveform(dt))
