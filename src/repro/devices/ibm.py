"""Synthetic IBM-family devices.

These stand in for the real machines the paper measured (Bogota,
Guadalupe, Toronto, Hanoi, Montreal, Mumbai, Lima, Brooklyn, Washington).
Topologies are the published coupling maps (27-qubit Falcon and 16-qubit
Guadalupe maps verbatim; 65/127-qubit lattices generated with the exact
row/bridge heavy-hex structure).  Calibration parameters are drawn from
a per-device seeded RNG around realistic IBM values, giving each qubit a
unique pulse -- the property Figs 4 and 14 rely on.

Timing follows Table I: fs = 4.54 GS/s, ~30 ns single-qubit gates,
~300 ns CR and readout pulses, 32-bit samples.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DeviceError
from repro.devices.backend import DeviceModel, EdgeCalibration, QubitCalibration
from repro.devices.topology import (
    CouplingMap,
    FALCON_27_EDGES,
    GUADALUPE_16_EDGES,
    heavy_hex_rows,
    linear_topology,
)

__all__ = ["IBM_DEVICE_NAMES", "ibm_device", "IBM_SAMPLING_RATE", "IBM_DT"]

#: Table I: IBM DAC sampling rate.
IBM_SAMPLING_RATE = 4.54e9

#: Sample period in seconds.
IBM_DT = 1.0 / IBM_SAMPLING_RATE

#: Single-qubit pulse length in samples (~31.7 ns, Table I's ~30 ns,
#: kept a multiple of 16 like real IBM backends).
_X_DURATION = 144

#: Base CR / readout pulse length in samples (~300 ns).
_CR_DURATION = 1360
_MEAS_DURATION = 1360

#: Gaussian-square ramp sigma in samples.
_RAMP_SIGMA = 64.0


def _lima_topology() -> CouplingMap:
    """5-qubit T-shaped map (Lima/Belem/Quito class)."""
    return CouplingMap(n_qubits=5, edges=((0, 1), (1, 2), (1, 3), (3, 4)))


_CATALOG = {
    "bogota": lambda: linear_topology(5),
    "lima": _lima_topology,
    "guadalupe": lambda: CouplingMap(n_qubits=16, edges=GUADALUPE_16_EDGES),
    "toronto": lambda: CouplingMap(n_qubits=27, edges=FALCON_27_EDGES),
    "hanoi": lambda: CouplingMap(n_qubits=27, edges=FALCON_27_EDGES),
    "montreal": lambda: CouplingMap(n_qubits=27, edges=FALCON_27_EDGES),
    "mumbai": lambda: CouplingMap(n_qubits=27, edges=FALCON_27_EDGES),
    "brooklyn": lambda: heavy_hex_rows(5, 11),
    "washington": lambda: heavy_hex_rows(7, 15),
}

IBM_DEVICE_NAMES: Tuple[str, ...] = tuple(sorted(_CATALOG))


def ibm_device(name: str, seed: Optional[int] = None) -> DeviceModel:
    """Build a synthetic IBM device by name.

    Args:
        name: One of :data:`IBM_DEVICE_NAMES` (case-insensitive; an
            optional ``"ibm_"``/``"ibmq_"`` prefix is accepted).
        seed: Override the calibration RNG seed (defaults to a stable
            hash of the device name, so libraries are reproducible).

    Returns:
        A fully calibrated :class:`DeviceModel`.
    """
    key = name.lower()
    for prefix in ("ibmq_", "ibm_"):
        if key.startswith(prefix):
            key = key[len(prefix) :]
    if key not in _CATALOG:
        raise DeviceError(
            f"unknown IBM device {name!r}; available: {', '.join(IBM_DEVICE_NAMES)}"
        )
    topology = _CATALOG[key]()
    rng_seed = seed if seed is not None else zlib.crc32(key.encode())
    rng = np.random.default_rng(rng_seed)
    qubit_cals = [_draw_qubit_calibration(qubit, rng) for qubit in range(topology.n_qubits)]
    edge_cals: Dict[Tuple[int, int], EdgeCalibration] = {}
    for control, target in sorted(topology.directed_edges):
        edge_cals[(control, target)] = _draw_edge_calibration(control, target, rng)
    return DeviceModel(
        name=f"ibm_{key}",
        topology=topology,
        dt=IBM_DT,
        qubit_calibrations=qubit_cals,
        edge_calibrations=edge_cals,
        sample_bits=32,
    )


def _draw_qubit_calibration(qubit: int, rng: np.random.Generator) -> QubitCalibration:
    """Realistic per-qubit scatter around IBM-typical pulse parameters."""
    x_amp = float(np.clip(rng.normal(0.18, 0.025), 0.10, 0.30))
    return QubitCalibration(
        qubit=qubit,
        frequency=float(rng.uniform(4.8e9, 5.3e9)),
        anharmonicity=float(rng.normal(-330e6, 15e6)),
        x_duration=_X_DURATION,
        x_amp=x_amp,
        x_sigma=_X_DURATION / 4,
        x_beta=float(rng.normal(-0.6, 0.35)),
        sx_amp=float(np.clip(x_amp / 2 + rng.normal(0, 0.005), 0.04, 0.2)),
        sx_beta=float(rng.normal(-0.6, 0.35)),
        meas_duration=_MEAS_DURATION,
        meas_amp=float(np.clip(rng.normal(0.3, 0.04), 0.15, 0.5)),
        meas_sigma=_RAMP_SIGMA,
        meas_width=_MEAS_DURATION - int(4 * _RAMP_SIGMA),
    )


def _draw_edge_calibration(
    control: int, target: int, rng: np.random.Generator
) -> EdgeCalibration:
    """Per-directed-edge cross-resonance pulse parameters.

    CR durations differ slightly between edges (as on real hardware,
    where weaker couplings need longer drives); all are multiples of 16
    samples.
    """
    duration = int(_CR_DURATION + 16 * rng.integers(-8, 9))
    return EdgeCalibration(
        control=control,
        target=target,
        duration=duration,
        amp=float(np.clip(rng.normal(0.42, 0.09), 0.15, 0.75)),
        sigma=_RAMP_SIGMA,
        width=duration - int(4 * _RAMP_SIGMA),
        phase=float(rng.uniform(-np.pi, np.pi)),
    )
