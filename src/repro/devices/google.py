"""Synthetic Google-style device (Table I's second row).

Grid connectivity, 1 GS/s DACs, very short gates (25 ns 1Q, ~30 ns 2Q),
long 500 ns readout, 28-bit samples.  Used by the capacity/bandwidth
scaling study (Fig 5a) -- Google's per-qubit memory footprint (~3 KB) is
much smaller than IBM's because the gates are shorter and the DAC slower.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.devices.backend import DeviceModel, EdgeCalibration, QubitCalibration
from repro.devices.topology import grid_topology

__all__ = ["google_device", "GOOGLE_SAMPLING_RATE", "GOOGLE_DT"]

GOOGLE_SAMPLING_RATE = 1.0e9
GOOGLE_DT = 1.0 / GOOGLE_SAMPLING_RATE

_X_DURATION = 25  # 25 ns
_TQ_DURATION = 32  # ~30 ns iSWAP-family flat-top
_MEAS_DURATION = 500  # 500 ns readout


def google_device(
    rows: int = 6, cols: int = 9, seed: Optional[int] = None
) -> DeviceModel:
    """Build a Sycamore-like grid device (default 54 qubits).

    Args:
        rows: Grid rows.
        cols: Grid columns.
        seed: Calibration RNG seed (defaults to a stable hash).
    """
    topology = grid_topology(rows, cols)
    rng_seed = seed if seed is not None else zlib.crc32(f"google{rows}x{cols}".encode())
    rng = np.random.default_rng(rng_seed)
    qubit_cals = []
    for qubit in range(topology.n_qubits):
        amp = float(np.clip(rng.normal(0.45, 0.05), 0.2, 0.8))
        qubit_cals.append(
            QubitCalibration(
                qubit=qubit,
                frequency=float(rng.uniform(5.5e9, 6.8e9)),
                anharmonicity=float(rng.normal(-210e6, 10e6)),
                x_duration=_X_DURATION,
                x_amp=amp,
                x_sigma=_X_DURATION / 4,
                x_beta=float(rng.normal(-0.4, 0.2)),
                sx_amp=amp / 2,
                sx_beta=float(rng.normal(-0.4, 0.2)),
                meas_duration=_MEAS_DURATION,
                meas_amp=float(np.clip(rng.normal(0.35, 0.05), 0.15, 0.6)),
                meas_sigma=20.0,
                meas_width=_MEAS_DURATION - 80,
            )
        )
    edge_cals: Dict[Tuple[int, int], EdgeCalibration] = {}
    for control, target in sorted(topology.directed_edges):
        edge_cals[(control, target)] = EdgeCalibration(
            control=control,
            target=target,
            duration=_TQ_DURATION,
            amp=float(np.clip(rng.normal(0.5, 0.08), 0.2, 0.9)),
            sigma=4.0,
            width=_TQ_DURATION - 16,
            phase=float(rng.uniform(-np.pi, np.pi)),
        )
    return DeviceModel(
        name=f"google_{rows}x{cols}",
        topology=topology,
        dt=GOOGLE_DT,
        qubit_calibrations=qubit_cals,
        edge_calibrations=edge_cals,
        sample_bits=28,
        two_qubit_gate="iswap",
    )
