"""Synthetic fluxonium device (Table IX's emerging-qubit row).

Fluxonium qubits are driven at much lower frequencies with longer,
smoother pulses (the paper cites trajectory-optimized X, X/2, Z/2, Y/2
pulses from Propson et al. [59]).  We model those as long raised-cosine
envelopes with a slow intra-pulse modulation; Table IX reports they
compress ~7.2x with int-DCT-W at WS=16, and the smoothness of these
envelopes reproduces that.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from repro.pulses.envelopes import cosine_tapered
from repro.pulses.library import PulseLibrary
from repro.pulses.waveform import Waveform

__all__ = ["fluxonium_device", "FLUXONIUM_DT", "FLUXONIUM_GATES"]

#: Fluxonium control uses ~1 GS/s AWGs.
FLUXONIUM_DT = 1.0e-9

#: Trajectory-optimized single-qubit gate set from [59].
FLUXONIUM_GATES = ("x", "x90", "y90", "z90")

_DURATION = 320  # 320 ns single-qubit pulses (fluxonium gates are slow)


class FluxoniumDevice:
    """A small fluxonium processor exposing only a pulse library.

    Fluxonium enters the paper solely through Table IX (compressibility
    of its gate pulses), so this model is intentionally lean: a named
    pulse library plus dt.
    """

    def __init__(self, n_qubits: int = 5, seed: Optional[int] = None) -> None:
        self.name = f"fluxonium_{n_qubits}"
        self.n_qubits = n_qubits
        self.dt = FLUXONIUM_DT
        rng_seed = seed if seed is not None else zlib.crc32(self.name.encode())
        self._rng = np.random.default_rng(rng_seed)
        self._library: Optional[PulseLibrary] = None

    def pulse_library(self) -> PulseLibrary:
        """One waveform per (gate, qubit); built once and cached."""
        if self._library is None:
            self._library = self._build()
        return self._library

    def _build(self) -> PulseLibrary:
        library = PulseLibrary(device_name=self.name)
        for qubit in range(self.n_qubits):
            for gate in FLUXONIUM_GATES:
                library.add(self._gate_waveform(gate, qubit))
        return library

    def _gate_waveform(self, gate: str, qubit: int) -> Waveform:
        rng = self._rng
        amp = float(np.clip(rng.normal(0.5, 0.06), 0.2, 0.9))
        if gate in ("x90", "y90", "z90"):
            amp /= 2
        envelope = cosine_tapered(_DURATION, amp, taper_fraction=0.7).real
        # Slow intra-pulse modulation: optimal-control solutions are not
        # pure windows but stay band-limited, which keeps them highly
        # compressible (Table IX: R ~ 7.2).
        t = np.arange(_DURATION) / _DURATION
        wobble = 1.0 + 0.02 * np.sin(2 * np.pi * (1.0 + rng.uniform(-0.2, 0.2)) * t)
        i_part = envelope * wobble
        phase = {"x": 0.0, "x90": 0.0, "y90": np.pi / 2, "z90": np.pi / 4}[gate]
        samples = i_part * np.exp(1j * phase)
        samples = samples / max(1.0, np.max(np.abs(samples)))
        return Waveform(
            name=f"{gate}_q{qubit}",
            samples=samples,
            dt=self.dt,
            gate=gate,
            qubits=(qubit,),
        )


def fluxonium_device(n_qubits: int = 5, seed: Optional[int] = None) -> FluxoniumDevice:
    """Build a fluxonium device with trajectory-optimized pulse shapes."""
    return FluxoniumDevice(n_qubits=n_qubits, seed=seed)
