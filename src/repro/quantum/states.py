"""Statevector primitives.

States live as rank-n tensors of shape ``(2,) * n``; qubit ``q`` is
tensor axis ``q``.  Flattened indices therefore read as bitstrings
``q0 q1 ... q_{n-1}`` with qubit 0 most significant.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "zero_state",
    "basis_state",
    "apply_unitary",
    "probabilities",
    "sample_counts",
    "bitstring_of_index",
]


def zero_state(n_qubits: int) -> np.ndarray:
    """|0...0> as a flat complex vector of length 2**n."""
    if n_qubits < 1:
        raise SimulationError(f"need at least 1 qubit, got {n_qubits}")
    state = np.zeros(2**n_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(bits: str) -> np.ndarray:
    """Computational basis state from a bitstring like ``"0101"``."""
    if not bits or any(b not in "01" for b in bits):
        raise SimulationError(f"invalid bitstring {bits!r}")
    index = int(bits, 2)
    state = np.zeros(2 ** len(bits), dtype=complex)
    state[index] = 1.0
    return state


def apply_unitary(
    state: np.ndarray, unitary: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit unitary to the given qubits of a flat state."""
    n = state.size.bit_length() - 1
    if 2**n != state.size:
        raise SimulationError(f"state length {state.size} is not a power of two")
    k = len(qubits)
    if unitary.shape != (2**k, 2**k):
        raise SimulationError(
            f"unitary shape {unitary.shape} does not match {k} qubits"
        )
    for q in qubits:
        if not 0 <= q < n:
            raise SimulationError(f"qubit {q} outside 0..{n - 1}")
    tensor = state.reshape((2,) * n)
    axes = list(qubits)
    # Contract the unitary's input indices against the targeted axes.
    tensor = np.tensordot(
        unitary.reshape((2,) * (2 * k)), tensor, axes=(range(k, 2 * k), axes)
    )
    # tensordot leaves the unitary's output indices first, followed by
    # the untouched axes in their original relative order; move each
    # axis back to its home position.
    current_homes = axes + [a for a in range(n) if a not in axes]
    tensor = np.moveaxis(tensor, range(n), current_homes)
    return tensor.reshape(-1)


def probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement probabilities in the computational basis."""
    probs = np.abs(state) ** 2
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise SimulationError(f"state is not normalized (sum p = {total:.6f})")
    return probs / total


def bitstring_of_index(index: int, n_qubits: int) -> str:
    """Bitstring label (qubit 0 first) for a flat state index."""
    return format(index, f"0{n_qubits}b")


def sample_counts(
    state: np.ndarray,
    shots: int,
    rng: Optional[np.random.Generator] = None,
    readout_flip: float = 0.0,
) -> Dict[str, int]:
    """Sample measurement outcomes, optionally with readout error.

    Args:
        state: Flat statevector.
        shots: Number of samples.
        rng: Random generator (fresh default if omitted).
        readout_flip: Per-qubit symmetric assignment-error probability.
    """
    if shots < 1:
        raise SimulationError(f"shots must be >= 1, got {shots}")
    rng = rng or np.random.default_rng()
    n = state.size.bit_length() - 1
    probs = probabilities(state)
    outcomes = rng.choice(probs.size, size=shots, p=probs)
    counts: Dict[str, int] = {}
    if readout_flip > 0.0:
        flips = rng.random((shots, n)) < readout_flip
        weights = 2 ** np.arange(n - 1, -1, -1)
        flip_masks = (flips * weights).sum(axis=1)
        outcomes = outcomes ^ flip_masks.astype(outcomes.dtype)
    for outcome in outcomes:
        key = bitstring_of_index(int(outcome), n)
        counts[key] = counts.get(key, 0) + 1
    return counts
