"""Clifford groups for randomized benchmarking.

Built by breadth-first search over generator sets, with unitaries
deduplicated up to global phase: 24 single-qubit Cliffords from {H, S}
and 11520 two-qubit Cliffords from {H0, H1, S0, S1, CX}.  Each element
stores its shortest generator word, which the RB driver replays through
the noisy simulator (H costs one physical SX pulse, S is a virtual Z,
CX is the physical two-qubit pulse).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.quantum import gates

__all__ = [
    "CliffordGroup",
    "one_qubit_cliffords",
    "two_qubit_cliffords",
    "GENERATORS_1Q",
    "GENERATORS_2Q",
]

GENERATORS_1Q: Tuple[Tuple[str, np.ndarray], ...] = (
    ("h", gates.H),
    ("s", gates.S),
)

GENERATORS_2Q: Tuple[Tuple[str, np.ndarray], ...] = (
    ("h0", np.kron(gates.H, gates.I2)),
    ("h1", np.kron(gates.I2, gates.H)),
    ("s0", np.kron(gates.S, gates.I2)),
    ("s1", np.kron(gates.I2, gates.S)),
    ("cx", gates.CX),
)


def _phase_canonical_key(unitary: np.ndarray) -> bytes:
    """Hashable key invariant under global phase."""
    flat = unitary.ravel()
    pivot = flat[np.argmax(np.abs(flat) > 1e-8)]
    normalized = flat * (pivot.conjugate() / abs(pivot))
    # ``+ 0.0`` collapses IEEE -0.0 to +0.0 so byte keys compare equal.
    return (np.round(normalized, 6) + 0.0).tobytes()


@dataclass(frozen=True)
class CliffordGroup:
    """A finite unitary group with generator words.

    Attributes:
        unitaries: One matrix per element (phase-representative).
        words: Shortest generator word per element, in circuit order.
        generator_names: Names usable in words.
    """

    unitaries: Tuple[np.ndarray, ...]
    words: Tuple[Tuple[str, ...], ...]
    generator_names: Tuple[str, ...]
    _index: Dict[bytes, int]

    def __len__(self) -> int:
        return len(self.unitaries)

    def index_of(self, unitary: np.ndarray) -> int:
        """Element index of a unitary (up to global phase)."""
        try:
            return self._index[_phase_canonical_key(unitary)]
        except KeyError:
            raise SimulationError("unitary is not in the Clifford group") from None

    def inverse_index(self, element: int) -> int:
        """Index of the inverse element."""
        return self.index_of(self.unitaries[element].conj().T)

    def random_element(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, len(self)))

    @property
    def mean_word_length(self) -> float:
        return float(np.mean([len(w) for w in self.words]))

    @property
    def mean_cx_count(self) -> float:
        """Average physical CX gates per element (2Q group only)."""
        return float(np.mean([w.count("cx") for w in self.words]))


def _bfs_group(
    generators: Tuple[Tuple[str, np.ndarray], ...], expected_order: int
) -> CliffordGroup:
    dim = generators[0][1].shape[0]
    identity = np.eye(dim, dtype=complex)
    index: Dict[bytes, int] = {_phase_canonical_key(identity): 0}
    unitaries: List[np.ndarray] = [identity]
    words: List[Tuple[str, ...]] = [()]
    frontier = [0]
    while frontier:
        next_frontier: List[int] = []
        for element in frontier:
            for name, generator in generators:
                candidate = generator @ unitaries[element]
                key = _phase_canonical_key(candidate)
                if key in index:
                    continue
                index[key] = len(unitaries)
                unitaries.append(candidate)
                words.append(words[element] + (name,))
                next_frontier.append(len(unitaries) - 1)
        frontier = next_frontier
    if len(unitaries) != expected_order:
        raise SimulationError(
            f"Clifford BFS found {len(unitaries)} elements, expected {expected_order}"
        )
    return CliffordGroup(
        unitaries=tuple(unitaries),
        words=tuple(words),
        generator_names=tuple(name for name, _g in generators),
        _index=index,
    )


@lru_cache(maxsize=1)
def one_qubit_cliffords() -> CliffordGroup:
    """The 24-element single-qubit Clifford group."""
    return _bfs_group(GENERATORS_1Q, 24)


@lru_cache(maxsize=1)
def two_qubit_cliffords() -> CliffordGroup:
    """The 11520-element two-qubit Clifford group (built once, ~1 s)."""
    return _bfs_group(GENERATORS_2Q, 11520)
