"""Statevector circuit simulation (ideal and Monte Carlo noisy).

This is the reproduction's stand-in for running circuits on IBM
hardware: the same transpiled circuits the scheduler sees are executed
here, with optional depolarizing/readout noise and optional *coherent*
per-gate error unitaries derived from decompressed waveforms
(:mod:`repro.quantum.pulse_sim`).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.circuits.circuit import Circuit
from repro.quantum.gates import gate_unitary
from repro.quantum.noise import NOISELESS, NoiseModel
from repro.quantum.states import (
    apply_unitary,
    probabilities,
    sample_counts,
    zero_state,
)

__all__ = ["StatevectorSimulator", "GateErrorMap"]

#: Coherent error unitaries keyed by (gate name, qubits); the special
#: key ("*", ()) applies to every physical gate of matching arity.
GateErrorMap = Mapping[Tuple[str, Tuple[int, ...]], np.ndarray]

#: Gates that are software-only and therefore noise-free.
_VIRTUAL_GATES = frozenset({"rz", "i"})


class StatevectorSimulator:
    """Runs :class:`Circuit` objects on a dense statevector.

    Args:
        noise: Stochastic noise model (defaults to noiseless).
        gate_errors: Optional coherent error unitaries appended after
            matching gates -- this is how compressed-waveform distortion
            enters the simulation.
        seed: RNG seed for Monte Carlo trajectories and sampling.
    """

    def __init__(
        self,
        noise: NoiseModel = NOISELESS,
        gate_errors: Optional[GateErrorMap] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.noise = noise
        self.gate_errors = dict(gate_errors or {})
        self._rng = np.random.default_rng(seed)

    # -- core execution ---------------------------------------------------

    def final_state(self, circuit: Circuit, trajectory: bool = False) -> np.ndarray:
        """Run the circuit's gates (measurements ignored) to a state.

        Args:
            circuit: The circuit to run.
            trajectory: Sample one stochastic noise trajectory (for
                Monte Carlo); False gives the ideal coherent evolution
                (gate errors still applied if configured).
        """
        state = zero_state(circuit.n_qubits)
        for inst in circuit.gate_instructions:
            state = apply_unitary(
                state, gate_unitary(inst.name, inst.params), inst.qubits
            )
            state = self._apply_gate_error(state, inst.name, inst.qubits)
            if trajectory and inst.name not in _VIRTUAL_GATES:
                state = self.noise.apply_after_gate(state, inst.qubits, self._rng)
        return state

    def ideal_distribution(self, circuit: Circuit) -> np.ndarray:
        """Noise-free output probabilities over measured bitstrings."""
        ideal = StatevectorSimulator()
        return probabilities(ideal.final_state(circuit))

    def sample(self, circuit: Circuit, shots: int) -> Dict[str, int]:
        """Monte Carlo sampling with noise trajectories.

        Each trajectory is reused for a batch of shots (standard
        variance/runtime tradeoff); readout error is applied per shot.
        """
        if shots < 1:
            raise SimulationError(f"shots must be >= 1, got {shots}")
        if self.noise.is_noiseless and not self.gate_errors:
            state = self.final_state(circuit)
            return sample_counts(state, shots, self._rng)
        batch = max(1, shots // 64)
        counts: Dict[str, int] = {}
        remaining = shots
        while remaining > 0:
            take = min(batch, remaining)
            state = self.final_state(circuit, trajectory=True)
            for key, value in sample_counts(
                state, take, self._rng, readout_flip=self.noise.readout
            ).items():
                counts[key] = counts.get(key, 0) + value
            remaining -= take
        return counts

    def distribution(self, circuit: Circuit, shots: int) -> Dict[str, float]:
        """Empirical output distribution from :meth:`sample`."""
        counts = self.sample(circuit, shots)
        return {key: value / shots for key, value in counts.items()}

    # -- internals -----------------------------------------------------------

    def _apply_gate_error(
        self, state: np.ndarray, name: str, qubits: Tuple[int, ...]
    ) -> np.ndarray:
        if not self.gate_errors or name in _VIRTUAL_GATES:
            return state
        error = self.gate_errors.get((name, qubits))
        if error is None:
            error = self.gate_errors.get((name, ()))
        if error is None:
            return state
        return apply_unitary(state, error, qubits)
