"""Two-qubit randomized benchmarking (paper Section IV-D, Fig 9,
Table III).

The experiment: random Clifford sequences of growing length, each
closed by the group inverse, survival probability of |00> fitted to
``A * alpha^m + B``; error per Clifford is ``EPC = (3/4)(1 - alpha)``.

Physical model: each Clifford is replayed as its generator word.  ``h``
generators cost one physical SX pulse (plus virtual Zs), ``s`` is
virtual, ``cx`` is the physical CR pulse.  Stochastic noise and the
coherent compression-error unitaries enter per physical gate, exactly
where waveform distortion would strike on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

from repro.errors import SimulationError
from repro.quantum import gates
from repro.quantum.cliffords import GENERATORS_2Q, two_qubit_cliffords
from repro.quantum.noise import IBM_LIKE_NOISE, NoiseModel
from repro.quantum.states import zero_state

__all__ = ["RBConfig", "RBResult", "run_two_qubit_rb", "fit_rb_decay", "rb_errors_from_gate_errors"]

_GENERATOR_UNITARIES: Dict[str, np.ndarray] = {name: u for name, u in GENERATORS_2Q}

#: Generator -> qubits it drives physically (h: one SX; cx: the pair).
#: s gates are virtual Zs and carry no noise.
_GENERATOR_QUBITS: Dict[str, Tuple[int, ...]] = {
    "h0": (0,),
    "h1": (1,),
    "s0": (),
    "s1": (),
    "cx": (0, 1),
}

#: Precomputed 4x4 Pauli operators for fast Monte Carlo depolarizing:
#: single-qubit Paulis on each wire, and all 15 non-identity two-qubit
#: Pauli strings.
_PAULIS_1Q: Dict[int, Tuple[np.ndarray, ...]] = {
    0: tuple(np.kron(p, gates.I2) for p in (gates.X, gates.Y, gates.Z)),
    1: tuple(np.kron(gates.I2, p) for p in (gates.X, gates.Y, gates.Z)),
}
_PAULIS_2Q: Tuple[np.ndarray, ...] = tuple(
    np.kron(a, b)
    for a in (gates.I2, gates.X, gates.Y, gates.Z)
    for b in (gates.I2, gates.X, gates.Y, gates.Z)
)[1:]


@dataclass(frozen=True)
class RBConfig:
    """Randomized-benchmarking experiment parameters.

    ``trajectories_per_sequence`` averages several stochastic noise
    realizations over each fixed Clifford sequence -- the Monte Carlo
    analogue of taking many shots per sequence on hardware.
    """

    lengths: Tuple[int, ...] = (1, 5, 10, 20, 35, 50, 75, 100)
    n_sequences: int = 40
    trajectories_per_sequence: int = 8
    noise: NoiseModel = IBM_LIKE_NOISE
    seed: int = 2022

    def __post_init__(self) -> None:
        if not self.lengths or min(self.lengths) < 1:
            raise SimulationError(f"invalid RB lengths: {self.lengths}")
        if self.n_sequences < 1:
            raise SimulationError(f"need >= 1 sequence, got {self.n_sequences}")
        if self.trajectories_per_sequence < 1:
            raise SimulationError(
                f"need >= 1 trajectory, got {self.trajectories_per_sequence}"
            )


@dataclass(frozen=True)
class RBResult:
    """Fitted RB outcome."""

    lengths: Tuple[int, ...]
    survival: Tuple[float, ...]
    amplitude: float
    alpha: float
    offset: float

    @property
    def epc(self) -> float:
        """Error per Clifford: (d-1)/d * (1 - alpha) with d = 4."""
        return 0.75 * (1.0 - self.alpha)

    @property
    def fidelity(self) -> float:
        """RB sequence fidelity (1 - EPC), the Table III number."""
        return 1.0 - self.epc


def rb_errors_from_gate_errors(
    sx_error_q0: Optional[np.ndarray] = None,
    sx_error_q1: Optional[np.ndarray] = None,
    cx_error: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Adapt per-gate compression errors to RB generator errors.

    Args:
        sx_error_q0 / sx_error_q1: 2x2 coherent errors of the SX pulses
            on the two RB qubits.
        cx_error: 4x4 coherent error of the CR pulse.
    """
    errors: Dict[str, np.ndarray] = {}
    if sx_error_q0 is not None:
        errors["h0"] = np.kron(sx_error_q0, gates.I2)
    if sx_error_q1 is not None:
        errors["h1"] = np.kron(gates.I2, sx_error_q1)
    if cx_error is not None:
        errors["cx"] = cx_error
    return errors


def _apply_word(
    state: np.ndarray,
    word: Sequence[str],
    noise: NoiseModel,
    gate_errors: Mapping[str, np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Replay one Clifford's generator word on a 4-dim statevector.

    Uses direct 4x4 mat-vec products (the RB hot loop); semantically
    identical to :func:`repro.quantum.states.apply_unitary`.
    """
    for name in word:
        state = _GENERATOR_UNITARIES[name] @ state
        error = gate_errors.get(name)
        if error is not None:
            state = error @ state
        physical = _GENERATOR_QUBITS[name]
        if not physical:
            continue
        if len(physical) == 1:
            if noise.p1 > 0 and rng.random() < noise.p1:
                paulis = _PAULIS_1Q[physical[0]]
                state = paulis[rng.integers(0, 3)] @ state
        else:
            if noise.p2 > 0 and rng.random() < noise.p2:
                state = _PAULIS_2Q[rng.integers(0, 15)] @ state
    return state


def _observed_survival(state: np.ndarray, readout: float) -> float:
    """P(observe 00) including symmetric readout flips."""
    probs = np.abs(state) ** 2
    keep = 1.0 - readout
    weights = np.array(
        [keep * keep, keep * readout, readout * keep, readout * readout]
    )
    return float(probs @ weights)


def run_two_qubit_rb(
    config: RBConfig = RBConfig(),
    gate_errors: Optional[Mapping[str, np.ndarray]] = None,
) -> RBResult:
    """Run the full RB experiment and fit the decay.

    Args:
        config: Lengths, sequence count, noise, seed.
        gate_errors: Coherent per-generator errors (e.g. from
            :func:`rb_errors_from_gate_errors`); None = ideal pulses.
    """
    group = two_qubit_cliffords()
    gate_errors = dict(gate_errors or {})
    rng = np.random.default_rng(config.seed)
    survivals = []
    for length in config.lengths:
        acc = 0.0
        for _seq in range(config.n_sequences):
            elements = [group.random_element(rng) for _ in range(length)]
            composite = np.eye(4, dtype=complex)
            for element in elements:
                composite = group.unitaries[element] @ composite
            inverse = group.inverse_index(group.index_of(composite))
            words = [group.words[e] for e in elements] + [group.words[inverse]]
            for _traj in range(config.trajectories_per_sequence):
                state = zero_state(2)
                for word in words:
                    state = _apply_word(
                        state, word, config.noise, gate_errors, rng
                    )
                acc += _observed_survival(state, config.noise.readout)
        survivals.append(
            acc / (config.n_sequences * config.trajectories_per_sequence)
        )
    # The depolarized floor is exactly 1/4 for two qubits (symmetric
    # readout preserves it); pinning it stabilizes the alpha fit.
    amplitude, alpha, offset = fit_rb_decay(
        config.lengths, survivals, fixed_offset=0.25
    )
    return RBResult(
        lengths=tuple(config.lengths),
        survival=tuple(survivals),
        amplitude=amplitude,
        alpha=alpha,
        offset=offset,
    )


def fit_rb_decay(
    lengths: Sequence[int],
    survival: Sequence[float],
    fixed_offset: Optional[float] = None,
) -> Tuple[float, float, float]:
    """Fit ``A * alpha^m + B``; returns (A, alpha, B).

    Args:
        lengths: Clifford sequence lengths.
        survival: Mean survival probability per length.
        fixed_offset: Pin B (e.g. 0.25 for 2Q RB); None fits it freely.
    """
    lengths = np.asarray(lengths, dtype=float)
    survival = np.asarray(survival, dtype=float)
    if lengths.size != survival.size or lengths.size < 3:
        raise SimulationError("need >= 3 (length, survival) points to fit RB")

    if fixed_offset is not None:

        def model_fixed(m, amplitude, alpha):
            return amplitude * alpha**m + fixed_offset

        params, _cov = curve_fit(
            model_fixed,
            lengths,
            survival,
            p0=(0.75, 0.98),
            bounds=([0.0, 0.5], [1.0, 1.0]),
            maxfev=20000,
        )
        return float(params[0]), float(params[1]), float(fixed_offset)

    def model(m, amplitude, alpha, offset):
        return amplitude * alpha**m + offset

    params, _cov = curve_fit(
        model,
        lengths,
        survival,
        p0=(0.75, 0.98, 0.25),
        bounds=([0.0, 0.5, 0.0], [1.0, 1.0, 1.0]),
        maxfev=20000,
    )
    return float(params[0]), float(params[1]), float(params[2])
