"""Fidelity metrics (paper Equation 3 and Section VII-B).

The paper scores application benchmarks with Total Variational Distance
between ideal and measured output distributions, ``F = 1 - TVD``; QAOA
benchmarks use a normalized (polarization-rescaled) fidelity so that a
maximally mixed outcome scores 0.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Union

import numpy as np

from repro.errors import SimulationError
from repro.quantum.states import bitstring_of_index

__all__ = [
    "distribution_from_array",
    "total_variation_distance",
    "tvd_fidelity",
    "hellinger_fidelity",
    "normalized_fidelity",
    "average_gate_fidelity",
]

Distribution = Mapping[str, float]


def distribution_from_array(probs: np.ndarray) -> Dict[str, float]:
    """Convert a probability vector to a bitstring-keyed distribution."""
    probs = np.asarray(probs, dtype=float)
    n = probs.size.bit_length() - 1
    if 2**n != probs.size:
        raise SimulationError(f"length {probs.size} is not a power of two")
    return {
        bitstring_of_index(i, n): float(p) for i, p in enumerate(probs) if p > 0
    }


def _as_distribution(dist: Union[Distribution, np.ndarray]) -> Distribution:
    if isinstance(dist, np.ndarray):
        return distribution_from_array(dist)
    return dist


def total_variation_distance(
    p: Union[Distribution, np.ndarray], q: Union[Distribution, np.ndarray]
) -> float:
    """TVD(P, Q) = 0.5 * sum |P(x) - Q(x)| over the union support."""
    p = _as_distribution(p)
    q = _as_distribution(q)
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def tvd_fidelity(
    ideal: Union[Distribution, np.ndarray], measured: Union[Distribution, np.ndarray]
) -> float:
    """Paper Equation 3: F(P, Q) = 1 - TVD(P, Q)."""
    return 1.0 - total_variation_distance(ideal, measured)


def hellinger_fidelity(
    p: Union[Distribution, np.ndarray], q: Union[Distribution, np.ndarray]
) -> float:
    """Classical Hellinger fidelity (sum of sqrt(p*q))^2."""
    p = _as_distribution(p)
    q = _as_distribution(q)
    keys = set(p) | set(q)
    overlap = sum(math.sqrt(p.get(k, 0.0) * q.get(k, 0.0)) for k in keys)
    return overlap**2


def normalized_fidelity(
    ideal: Union[Distribution, np.ndarray],
    measured: Union[Distribution, np.ndarray],
    n_qubits: int,
) -> float:
    """Polarization-rescaled fidelity (Lubinski et al. [43]).

    Rescales so the uniform (fully depolarized) distribution scores 0
    and the ideal distribution scores 1; used for the QAOA rows of
    Fig 15.  Clipped below at 0.
    """
    ideal = _as_distribution(ideal)
    measured = _as_distribution(measured)
    uniform = {
        bitstring_of_index(i, n_qubits): 1.0 / 2**n_qubits
        for i in range(2**n_qubits)
    }
    raw = hellinger_fidelity(ideal, measured)
    floor = hellinger_fidelity(ideal, uniform)
    if floor >= 1.0:
        return 1.0  # ideal *is* uniform; any outcome matches
    return max(0.0, (raw - floor) / (1.0 - floor))


def average_gate_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Average gate fidelity between two unitaries of dimension d."""
    if u.shape != v.shape or u.shape[0] != u.shape[1]:
        raise SimulationError(f"shape mismatch: {u.shape} vs {v.shape}")
    d = u.shape[0]
    overlap = abs(np.trace(u.conj().T @ v)) ** 2
    return float((overlap + d) / (d * (d + 1)))
