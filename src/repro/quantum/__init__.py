"""Quantum simulation substrate: statevector, pulses, Cliffords, RB."""

from repro.quantum.gates import gate_unitary, zx_rotation
from repro.quantum.states import (
    zero_state,
    basis_state,
    apply_unitary,
    probabilities,
    sample_counts,
    bitstring_of_index,
)
from repro.quantum.noise import NoiseModel, IBM_LIKE_NOISE, NOISELESS
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.pulse_sim import (
    single_qubit_unitary,
    cross_resonance_unitary,
    calibrate_scale,
    gate_error_unitary,
    compression_error_map,
    TARGET_ANGLES,
)
from repro.quantum.cliffords import (
    CliffordGroup,
    one_qubit_cliffords,
    two_qubit_cliffords,
)
from repro.quantum.rb import (
    RBConfig,
    RBResult,
    run_two_qubit_rb,
    fit_rb_decay,
    rb_errors_from_gate_errors,
)
from repro.quantum.fidelity import (
    total_variation_distance,
    tvd_fidelity,
    hellinger_fidelity,
    normalized_fidelity,
    average_gate_fidelity,
    distribution_from_array,
)
from repro.quantum.qutrit import (
    qutrit_unitary,
    leakage_of,
    qubit_block_angle,
    calibrate_qutrit_scale,
    pulse_leakage,
)

__all__ = [
    "gate_unitary",
    "zx_rotation",
    "zero_state",
    "basis_state",
    "apply_unitary",
    "probabilities",
    "sample_counts",
    "bitstring_of_index",
    "NoiseModel",
    "IBM_LIKE_NOISE",
    "NOISELESS",
    "StatevectorSimulator",
    "single_qubit_unitary",
    "cross_resonance_unitary",
    "calibrate_scale",
    "gate_error_unitary",
    "compression_error_map",
    "TARGET_ANGLES",
    "CliffordGroup",
    "one_qubit_cliffords",
    "two_qubit_cliffords",
    "RBConfig",
    "RBResult",
    "run_two_qubit_rb",
    "fit_rb_decay",
    "rb_errors_from_gate_errors",
    "total_variation_distance",
    "tvd_fidelity",
    "hellinger_fidelity",
    "normalized_fidelity",
    "average_gate_fidelity",
    "distribution_from_array",
    "qutrit_unitary",
    "leakage_of",
    "qubit_block_angle",
    "calibrate_qutrit_scale",
    "pulse_leakage",
]
