"""Three-level (qutrit) pulse simulation: leakage out of the qubit.

Transmons are weakly anharmonic oscillators, not true two-level
systems: a drive that rotates |0>-|1> also couples |1>-|2| with
sqrt(2) strength, detuned only by the anharmonicity.  This is *why*
control waveforms must be smooth and band-limited (Section IX: "any
spurious frequencies in the control pulse can introduce control error,
crosstalk, and leakage errors") -- and therefore why they compress so
well.  DRAG's derivative quadrature exists precisely to cancel this
leakage.

The model: in the frame rotating at the drive frequency (resonant with
the 0-1 transition),

    H(t)/2pi = anharmonicity * |2><2|
               + lam/2 * [I(t) (X01 + sqrt(2) X12) + Q(t) (Y01 + sqrt(2) Y12)]

integrated sample by sample with 3x3 matrix exponentials.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import expm
from scipy.optimize import brentq

from repro.errors import SimulationError
from repro.pulses.waveform import Waveform

__all__ = [
    "qutrit_unitary",
    "leakage_of",
    "qubit_block_angle",
    "calibrate_qutrit_scale",
    "pulse_leakage",
]

# Ladder coupling operators in the {|0>, |1>, |2>} basis.
_X01 = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=complex)
_Y01 = np.array([[0, -1j, 0], [1j, 0, 0], [0, 0, 0]], dtype=complex)
_X12 = np.array([[0, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=complex) * math.sqrt(2)
_Y12 = np.array([[0, 0, 0], [0, 0, -1j], [0, 1j, 0]], dtype=complex) * math.sqrt(2)
_N2 = np.diag([0.0, 0.0, 1.0]).astype(complex)


def qutrit_unitary(
    waveform: Waveform, scale: float, anharmonicity: float = -330e6
) -> np.ndarray:
    """Propagator of a driven three-level transmon.

    Args:
        waveform: Drive envelope (I/Q in [-1, 1]).
        scale: Drive strength in Hz per unit amplitude (lam).
        anharmonicity: f12 - f01 in Hz (negative for transmons).

    Returns:
        The 3x3 unitary after the full pulse.
    """
    if scale <= 0:
        raise SimulationError(f"drive scale must be positive, got {scale}")
    dt = waveform.dt
    unitary = np.eye(3, dtype=complex)
    static = 2 * math.pi * anharmonicity * _N2
    for i_amp, q_amp in zip(waveform.i_channel, waveform.q_channel):
        drive = math.pi * scale * (
            i_amp * (_X01 + _X12) + q_amp * (_Y01 + _Y12)
        )
        unitary = expm(-1j * (static + drive) * dt) @ unitary
    return unitary


def leakage_of(unitary: np.ndarray) -> float:
    """Average population left in |2> starting from the qubit subspace."""
    if unitary.shape != (3, 3):
        raise SimulationError(f"expected a 3x3 unitary, got {unitary.shape}")
    return float((abs(unitary[2, 0]) ** 2 + abs(unitary[2, 1]) ** 2) / 2)


def qubit_block_angle(unitary: np.ndarray) -> float:
    """Rotation angle realized inside the {|0>, |1>} subspace.

    The block is unitarized (polar decomposition, absorbing the tiny
    leakage-induced contraction) and the angle read off its eigenvalue
    splitting -- monotone in drive strength up to 2*pi, unlike the
    |trace| form which folds at pi.
    """
    block = unitary[:2, :2]
    w, _s, vh = np.linalg.svd(block)
    closest_unitary = w @ vh
    eigs = np.linalg.eigvals(closest_unitary)
    if np.min(np.abs(eigs)) < 1e-9:
        raise SimulationError("qubit subspace block is singular (full leakage?)")
    split = np.angle(eigs[0] / eigs[1])
    return abs(float(split)) % (2 * math.pi)


def calibrate_qutrit_scale(
    waveform: Waveform,
    target_angle: float = math.pi,
    anharmonicity: float = -330e6,
) -> float:
    """Drive scale giving ``target_angle`` in the qubit subspace.

    Eigenphase splitting folds at pi, so the angle is unfolded with a
    local slope check (angle still rising with scale -> below pi;
    falling -> past pi, reported as ``2*pi - angle``).
    """
    area = float(np.sum(np.abs(waveform.samples))) * waveform.dt
    if area <= 0:
        raise SimulationError(f"waveform {waveform.name!r} has zero drive area")
    nominal = target_angle / (2 * math.pi * area)

    def angle_at(scale: float) -> float:
        return qubit_block_angle(qutrit_unitary(waveform, scale, anharmonicity))

    if target_angle >= math.pi - 0.05:
        # The folded angle peaks at exactly pi; calibrating a pi pulse
        # means finding that peak.
        from scipy.optimize import minimize_scalar

        result = minimize_scalar(
            lambda s: -angle_at(s),
            bounds=(nominal * 0.6, nominal * 1.5),
            method="bounded",
            options={"xatol": 1e-6 * nominal},
        )
        return float(result.x)

    def angle_error(scale: float) -> float:
        return angle_at(scale) - target_angle

    lo, hi = nominal * 0.2, nominal * 1.15
    for _ in range(30):
        if angle_error(hi) > 0:
            break
        hi *= 1.2
    else:
        raise SimulationError(f"cannot calibrate {waveform.name!r}")
    return float(brentq(angle_error, lo, hi, xtol=1e-5 * nominal))


def pulse_leakage(
    waveform: Waveform,
    target_angle: float = math.pi,
    anharmonicity: float = -330e6,
) -> float:
    """Leakage of a calibrated gate pulse (the DRAG figure of merit).

    Calibrates the drive to the target qubit rotation, then reports the
    |2>-state population it leaves behind.
    """
    scale = calibrate_qutrit_scale(waveform, target_angle, anharmonicity)
    return leakage_of(qutrit_unitary(waveform, scale, anharmonicity))
