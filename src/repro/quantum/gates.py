"""Gate unitaries.

Matrix conventions: for a two-qubit gate on (control, target) the
control is the *first* tensor factor.  ``gate_unitary`` resolves a
circuit instruction name + params to its matrix.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "CX",
    "CZ",
    "SWAP",
    "ISWAP",
    "CCX",
    "rx",
    "ry",
    "rz",
    "cp",
    "rzz",
    "u3",
    "zx_rotation",
    "gate_unitary",
]

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
TDG = T.conj().T
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)
CCX = np.eye(8, dtype=complex)
CCX[6, 6] = CCX[7, 7] = 0
CCX[6, 7] = CCX[7, 6] = 1


def rx(theta: float) -> np.ndarray:
    """Rotation about X by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about Y by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(phi: float) -> np.ndarray:
    """Rotation about Z by ``phi`` (the virtual-Z gate)."""
    return np.array(
        [[np.exp(-1j * phi / 2), 0], [0, np.exp(1j * phi / 2)]], dtype=complex
    )


def cp(lam: float) -> np.ndarray:
    """Controlled phase."""
    return np.diag([1, 1, 1, np.exp(1j * lam)]).astype(complex)


def rzz(theta: float) -> np.ndarray:
    """ZZ interaction exp(-i theta/2 Z@Z) (QAOA's cost gate)."""
    phase = np.exp(-1j * theta / 2)
    return np.diag([phase, phase.conjugate(), phase.conjugate(), phase]).astype(
        complex
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit rotation (IBM U convention)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def zx_rotation(theta: float) -> np.ndarray:
    """exp(-i theta/2 Z@X): the cross-resonance interaction.

    ``zx_rotation(pi/2)`` is the maximally entangling CR gate IBM builds
    CNOTs from.
    """
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    block_plus = np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    block_minus = np.array([[c, 1j * s], [1j * s, c]], dtype=complex)
    out = np.zeros((4, 4), dtype=complex)
    out[:2, :2] = block_plus
    out[2:, 2:] = block_minus
    return out


_FIXED = {
    "i": I2,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "cx": CX,
    "cz": CZ,
    "swap": SWAP,
    "iswap": ISWAP,
    "ccx": CCX,
}

_PARAMETRIC = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "cp": cp,
    "rzz": rzz,
    "u3": u3,
}


def gate_unitary(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Resolve an instruction to its unitary matrix.

    Raises:
        SimulationError: For unknown names or wrong parameter counts.
    """
    if name in _FIXED:
        if params:
            raise SimulationError(f"gate {name!r} takes no parameters")
        return _FIXED[name]
    if name in _PARAMETRIC:
        try:
            return _PARAMETRIC[name](*params)
        except TypeError:
            raise SimulationError(
                f"gate {name!r} got wrong parameter count: {params}"
            ) from None
    raise SimulationError(f"unknown gate {name!r}")
