"""Stochastic noise models for Monte Carlo circuit simulation.

The fidelity experiments need a realistic error floor so that the
*relative* effect of waveform compression can be measured against it
(paper Section VI: baseline fidelities of 0.98-ish for 2Q RB).  We use
depolarizing noise after each gate plus symmetric readout assignment
error -- the standard NISQ error model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.quantum import gates
from repro.quantum.states import apply_unitary

__all__ = ["NoiseModel", "IBM_LIKE_NOISE", "NOISELESS"]

_PAULIS = (gates.X, gates.Y, gates.Z)


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing + readout noise.

    Attributes:
        p1: Depolarizing probability after each 1Q physical gate.
        p2: Depolarizing probability after each 2Q physical gate.
        readout: Per-qubit symmetric readout flip probability.
    """

    p1: float = 0.0
    p2: float = 0.0
    readout: float = 0.0

    def __post_init__(self) -> None:
        for name, p in (("p1", self.p1), ("p2", self.p2), ("readout", self.readout)):
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name} must be a probability, got {p}")

    @property
    def is_noiseless(self) -> bool:
        return self.p1 == 0.0 and self.p2 == 0.0 and self.readout == 0.0

    def apply_after_gate(
        self,
        state: np.ndarray,
        qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Monte Carlo depolarizing: with probability p, apply a uniform
        random non-identity Pauli string on the gate's qubits."""
        p = self.p1 if len(qubits) == 1 else self.p2
        if p <= 0.0 or rng.random() >= p:
            return state
        while True:
            choices = [int(rng.integers(0, 4)) for _ in qubits]
            if any(choices):
                break
        for qubit, choice in zip(qubits, choices):
            if choice:
                state = apply_unitary(state, _PAULIS[choice - 1], (qubit,))
        return state


#: Calibrated so two-qubit RB lands near the paper's baselines
#: (EPC ~1.6e-2, RB fidelity ~0.978 on IBM Guadalupe).
IBM_LIKE_NOISE = NoiseModel(p1=8e-4, p2=1.0e-2, readout=0.02)

NOISELESS = NoiseModel()
