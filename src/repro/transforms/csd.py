"""Canonical signed-digit (CSD) decomposition of constant multipliers.

The int-DCT-W decompression engine replaces every fixed/floating-point
multiplier with shift-and-add networks (Section V-B, Table IV).  This
module provides:

- :func:`csd_digits`: the minimal signed-digit form of an integer, i.e.
  ``c == sum(sign << shift)`` with no two adjacent non-zero digits;
- :func:`shift_add_multiply`: a bit-exact multiplierless product used by
  the hardware-faithful IDCT reference path;
- :func:`multiplier_cost` and :func:`shared_multiplier_cost`: adder /
  shifter counts for one constant and for a constant bank with greedy
  common-subexpression sharing (how Table IV's counts arise).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "OpCount",
    "csd_digits",
    "shift_add_multiply",
    "multiplier_cost",
    "shared_multiplier_cost",
]


@dataclass(frozen=True)
class OpCount:
    """Hardware operation tally for a dataflow graph.

    Attributes:
        multipliers: True two-input multipliers (zero for int-DCT-W).
        adders: Two-input adders/subtractors.
        shifters: Constant-shift units (free wiring in an ASIC, but the
            paper counts them for FPGA mapping, so we do too).
    """

    multipliers: int = 0
    adders: int = 0
    shifters: int = 0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.multipliers + other.multipliers,
            self.adders + other.adders,
            self.shifters + other.shifters,
        )


@lru_cache(maxsize=4096)
def csd_digits(value: int) -> Tuple[Tuple[int, int], ...]:
    """Return the CSD form of ``value`` as ``((shift, sign), ...)``.

    The canonical signed-digit representation is the unique minimal-weight
    radix-2 form with digits in {-1, 0, +1} and no two adjacent non-zero
    digits.  ``sum(sign << shift) == value`` always holds.

    Example:
        >>> csd_digits(89)          # 89 = 1 - 8 - 32 + 128
        ((0, 1), (3, -1), (5, -1), (7, 1))
    """
    if value == 0:
        return ()
    sign = 1 if value > 0 else -1
    magnitude = abs(value)
    digits: List[Tuple[int, int]] = []
    shift = 0
    while magnitude:
        if magnitude & 1:
            # If the low two bits look like ...11, emit -1 and carry;
            # this is what removes adjacent non-zero digits.
            digit = 2 - (magnitude & 3)
            digits.append((shift, digit * sign))
            magnitude -= digit
        magnitude >>= 1
        shift += 1
    return tuple(digits)


def shift_add_multiply(x: "int | np.ndarray", constant: int) -> "int | np.ndarray":
    """Compute ``constant * x`` using only shifts and additions.

    This is the bit-exact operation the multiplierless IDCT engine
    performs; the test suite asserts it equals plain multiplication for
    every constant in the integer-DCT matrices.
    """
    digits = csd_digits(constant)
    if not digits:
        return x * 0
    total = None
    for shift, sign in digits:
        term = x << shift if isinstance(x, int) else np.left_shift(x, shift)
        term = term if sign > 0 else -term
        total = term if total is None else total + term
    return total


def multiplier_cost(constant: int) -> OpCount:
    """Adder/shifter count to multiply one input by ``constant`` via CSD.

    A CSD form with ``k`` non-zero digits needs ``k - 1`` adders; every
    digit with a non-zero shift needs a shifter.  Powers of two cost a
    single shifter and no adders.
    """
    digits = csd_digits(abs(constant))
    if not digits:
        return OpCount()
    adders = len(digits) - 1
    shifters = sum(1 for shift, _sign in digits if shift > 0)
    return OpCount(multipliers=0, adders=adders, shifters=shifters)


def shared_multiplier_cost(constants: Sequence[int]) -> OpCount:
    """Cost of computing ``{c * x for c in constants}`` for one input ``x``.

    Applies greedy two-term common-subexpression elimination (Hartley's
    algorithm): repeatedly extract the most frequent signed digit *pair*
    (normalized to relative shift) across all remaining expressions and
    materialize it once.  This is the standard technique hardware IDCT
    implementations use to reach the adder counts quoted in Table IV.
    """
    expressions = _initial_expressions(constants)
    shared_adders = 0
    next_symbol = 1
    while True:
        pair, occurrences = _most_frequent_pair(expressions)
        if pair is None or occurrences < 2:
            break
        shared_adders += 1  # build the shared two-term subexpression once
        expressions = _substitute_pair(expressions, pair, next_symbol)
        next_symbol += 1
    # Each remaining expression of k terms needs k - 1 adders.
    final_adders = sum(max(0, len(terms) - 1) for terms in expressions)
    shifters = _count_shifters(expressions)
    return OpCount(
        multipliers=0, adders=shared_adders + final_adders, shifters=shifters
    )


# ---------------------------------------------------------------------------
# CSE internals.  Expressions are lists of terms; each term is
# (shift, sign, symbol) where symbol 0 is the input x and symbols > 0 are
# shared subexpressions created by substitution.
# ---------------------------------------------------------------------------

_Term = Tuple[int, int, int]


def _initial_expressions(constants: Iterable[int]) -> List[List[_Term]]:
    expressions = []
    for constant in constants:
        digits = csd_digits(abs(int(constant)))
        expressions.append([(shift, sign, 0) for shift, sign in digits])
    return expressions


def _pair_key(a: _Term, b: _Term) -> Tuple[int, int, int, int, int]:
    """Normalize a term pair so equal shapes at different shifts match."""
    (sa, ga, ya), (sb, gb, yb) = sorted((a, b))
    base = sa
    # Normalize signs so that (+,-) and (-,+) variants of the same shape
    # collapse; keep the relative sign only.
    rel_sign = ga * gb
    return (sb - base, rel_sign, ya, yb, 0 if ga > 0 else 1)


def _most_frequent_pair(expressions: List[List[_Term]]):
    counts: Counter = Counter()
    witnesses: Dict[Tuple, Tuple[_Term, _Term]] = {}
    for terms in expressions:
        seen_in_expr = set()
        for i in range(len(terms)):
            for j in range(i + 1, len(terms)):
                key = _pair_key(terms[i], terms[j])
                if key in seen_in_expr:
                    continue  # count each shape once per expression
                seen_in_expr.add(key)
                counts[key] += 1
                witnesses.setdefault(key, tuple(sorted((terms[i], terms[j]))))
    if not counts:
        return None, 0
    key, occurrences = counts.most_common(1)[0]
    return witnesses[key], occurrences


def _substitute_pair(
    expressions: List[List[_Term]], pair: Tuple[_Term, _Term], symbol: int
) -> List[List[_Term]]:
    """Replace every occurrence of ``pair``'s shape with a fresh symbol."""
    (sa, ga, ya), (sb, gb, yb) = sorted(pair)
    shape = _pair_key((sa, ga, ya), (sb, gb, yb))
    result = []
    for terms in expressions:
        terms = list(terms)
        changed = True
        while changed:
            changed = False
            for i in range(len(terms)):
                for j in range(i + 1, len(terms)):
                    if _pair_key(terms[i], terms[j]) == shape:
                        lo, hi = sorted((terms[i], terms[j]))
                        base_shift, base_sign = lo[0], lo[1]
                        replacement = (base_shift, base_sign, symbol)
                        terms = [
                            t for k, t in enumerate(terms) if k not in (i, j)
                        ]
                        terms.append(replacement)
                        changed = True
                        break
                if changed:
                    break
        result.append(terms)
    return result


def _count_shifters(expressions: List[List[_Term]]) -> int:
    """Count distinct (symbol, shift) pairs with shift > 0 across the bank."""
    needed = {
        (symbol, shift)
        for terms in expressions
        for shift, _sign, symbol in terms
        if shift > 0
    }
    return len(needed)
