"""Run-length encoding of thresholded DCT windows (Section IV-C).

After the DCT and thresholding, each window's high-energy coefficients sit
at the front and the tail is (mostly) zeros.  The paper's RLE replaces the
*trailing* zero run with a single codeword carrying a signature and the
zero count: "RLE is started only when the transformed waveform after
thresholding is consistently zero".

A compressed window is therefore ``[c_0, ..., c_{m-1}, Z(r)]`` where the
``c_i`` are the coefficients up to and including the last non-zero one
(interior zeros stay explicit) and ``Z(r)`` encodes ``r`` trailing zeros.
The number of memory words for a window is ``m + (1 if r else 0)`` --
exactly the quantity histogrammed in Fig 11.

The module also defines the tagged memory-word format used by the banked
waveform memory and the cycle-level decompression pipeline, including the
repeat codeword used by adaptive decompression (Fig 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.transforms.threshold import trailing_zero_runs

__all__ = [
    "TAG_COEFF",
    "TAG_ZERO_RUN",
    "TAG_REPEAT",
    "MemoryWord",
    "EncodedWindow",
    "rle_encode_window",
    "rle_encode_blocks",
    "rle_decode_window",
    "rle_expand_blocks",
]

#: Memory-word tags.  Real hardware reserves signature bits inside the
#: word; we model the tag out-of-band but charge every word one sample
#: slot of storage, matching the paper's accounting.
TAG_COEFF = 0
TAG_ZERO_RUN = 1
TAG_REPEAT = 2


@dataclass(frozen=True, slots=True)
class MemoryWord:
    """One word of compressed waveform memory.

    Attributes:
        tag: One of :data:`TAG_COEFF`, :data:`TAG_ZERO_RUN`,
            :data:`TAG_REPEAT`.
        value: Coefficient value, zero-run length, or repeat count.
        payload: For :data:`TAG_REPEAT` words, the sample value that is
            repeated ``value`` times (packed into the same word).
    """

    tag: int
    value: int
    payload: int = 0


@dataclass(frozen=True, slots=True)
class EncodedWindow:
    """An RLE-encoded DCT window.

    Attributes:
        coeffs: Coefficients up to and including the last non-zero one.
        zero_run: Number of trailing zeros folded into the codeword
            (zero means the window ended with a non-zero coefficient and
            no codeword is stored).
    """

    coeffs: Tuple[int, ...]
    zero_run: int

    def __post_init__(self) -> None:
        if self.zero_run < 0:
            raise CompressionError(f"negative zero run: {self.zero_run}")
        if self.coeffs and self.coeffs[-1] == 0 and self.zero_run > 0:
            raise CompressionError(
                "trailing zeros must be folded into the codeword"
            )

    @property
    def window_size(self) -> int:
        """Number of samples this window decodes to."""
        return len(self.coeffs) + self.zero_run

    @property
    def n_words(self) -> int:
        """Memory words occupied: coefficients plus one codeword if any.

        This is the per-window sample count of Fig 11 and the quantity
        that determines the uniform compressed-memory width (Section V-A).
        """
        return len(self.coeffs) + (1 if self.zero_run > 0 else 0)

    def to_words(self) -> List[MemoryWord]:
        """Serialize to tagged memory words (coefficients, then codeword)."""
        words = [MemoryWord(TAG_COEFF, int(c)) for c in self.coeffs]
        if self.zero_run > 0:
            words.append(MemoryWord(TAG_ZERO_RUN, self.zero_run))
        return words


def rle_encode_window(values: Sequence[int]) -> EncodedWindow:
    """Encode one thresholded coefficient window.

    Args:
        values: The full window of (already thresholded) coefficients.

    Returns:
        The :class:`EncodedWindow` with the trailing zero run folded into
        a codeword.
    """
    values = np.asarray(values)
    if values.ndim != 1 or values.size == 0:
        raise CompressionError(f"expected a non-empty window, got {values.shape}")
    nonzero = np.flatnonzero(values)
    last = int(nonzero[-1]) + 1 if nonzero.size else 0
    coeffs = tuple(int(v) for v in values[:last])
    return EncodedWindow(coeffs=coeffs, zero_run=int(values.size - last))


def rle_encode_blocks(blocks: np.ndarray) -> Tuple[EncodedWindow, ...]:
    """Encode a whole ``(n_windows, window_size)`` matrix at once.

    The trailing-zero runs of every row are found with one vectorized
    reduction (:func:`repro.transforms.threshold.trailing_zero_runs`);
    only the (short) kept-coefficient prefixes are touched in Python.
    Output is element-wise identical to mapping
    :func:`rle_encode_window` over the rows.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 2 or blocks.shape[1] == 0:
        raise CompressionError(
            f"expected a non-empty (n_windows, ws) matrix, got {blocks.shape}"
        )
    window_size = blocks.shape[1]
    lasts = window_size - trailing_zero_runs(blocks)
    rows = blocks.tolist()
    return tuple(
        EncodedWindow(
            coeffs=tuple(row[:last]), zero_run=window_size - last
        )
        for row, last in zip(rows, lasts.tolist())
    )


def rle_decode_window(window: EncodedWindow) -> np.ndarray:
    """Expand an encoded window back to its full coefficient vector.

    This mirrors stage 1 of the decompression pipeline (Fig 10): the RLE
    decoder re-materializes the zeros before the IDCT stage.
    """
    out = np.zeros(window.window_size, dtype=np.int64)
    if window.coeffs:
        out[: len(window.coeffs)] = window.coeffs
    return out


def rle_expand_blocks(
    windows: Sequence[EncodedWindow], window_size: int
) -> np.ndarray:
    """Expand many encoded windows into one ``(n_windows, ws)`` matrix.

    Vectorized counterpart of :func:`rle_decode_window` and the decode
    twin of :func:`rle_encode_blocks`: the zeros of every trailing run
    come from one ``np.zeros`` allocation and only the (short) kept
    coefficient prefixes are scattered in, via a single fancy-indexed
    assignment.  Output row ``j`` is element-wise identical to
    ``rle_decode_window(windows[j])``.
    """
    if window_size < 1:
        raise CompressionError(f"window size must be >= 1, got {window_size}")
    windows = tuple(windows)
    if not windows:
        raise CompressionError("cannot expand an empty window sequence")
    for window in windows:
        if window.window_size != window_size:
            raise CompressionError(
                f"window decodes to {window.window_size} samples, "
                f"expected {window_size}"
            )
    out = np.zeros((len(windows), window_size), dtype=np.int64)
    lengths = np.fromiter(
        (len(w.coeffs) for w in windows), dtype=np.int64, count=len(windows)
    )
    total = int(lengths.sum())
    if total:
        flat = np.fromiter(
            (c for w in windows for c in w.coeffs), dtype=np.int64, count=total
        )
        rows = np.repeat(np.arange(len(windows)), lengths)
        starts = np.cumsum(lengths) - lengths
        cols = np.arange(total) - np.repeat(starts, lengths)
        out[rows, cols] = flat
    return out
