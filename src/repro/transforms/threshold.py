"""Coefficient thresholding (the lossy step of the compression pipeline).

The DCT concentrates waveform energy in the first few coefficients;
thresholding zeroes everything below a magnitude cutoff so that RLE can
fold the tail into one codeword (Section IV-C, Fig 8).  The threshold is
the knob Algorithm 1 (fidelity-aware compression) tunes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hard_threshold",
    "top_k_blocks",
    "trailing_zero_run",
    "trailing_zero_runs",
    "kept_coefficients",
]


def hard_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Zero every element with ``|value| < threshold``; returns a copy.

    A threshold of 0 keeps everything (lossless apart from integer
    rounding).  Works element-wise, so a ``(n_windows, window_size)``
    block matrix thresholds in one pass.
    """
    values = np.asarray(values)
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    out = values.copy()
    out[np.abs(out) < threshold] = 0
    return out


def top_k_blocks(
    blocks: np.ndarray, max_coefficients: int, rank: np.ndarray = None
) -> np.ndarray:
    """Keep only the k highest-ranked coefficients of each row.

    Rows already at or under the cap pass through untouched.  Ties break
    by ``argsort`` order per row, matching the scalar pipeline's
    ``order = argsort(|kept|); kept[order[:size - k]] = 0`` exactly, so
    the batched engine stays bit-identical to the reference.

    Args:
        rank: Optional per-slot ranking matrix (same shape as
            ``blocks``); defaults to ``|blocks|``.  Wrapped-residual
            codecs rank by the un-wrapped residual magnitude instead of
            the stored word.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 2:
        raise ValueError(f"expected (n_windows, ws) blocks, got {blocks.shape}")
    if max_coefficients <= 0 or max_coefficients >= blocks.shape[1]:
        return blocks.copy()
    over = np.count_nonzero(blocks, axis=1) > max_coefficients
    out = blocks.copy()
    if not np.any(over):
        return out
    rows = out[over]
    ranks = np.abs(rows) if rank is None else np.asarray(rank)[over]
    order = np.argsort(ranks, axis=1, kind="quicksort")
    drop = order[:, : rows.shape[1] - max_coefficients]
    np.put_along_axis(rows, drop, 0, axis=1)
    out[over] = rows
    return out


def trailing_zero_run(values: np.ndarray) -> int:
    """Length of the zero run at the end of ``values``."""
    values = np.asarray(values)
    nonzero = np.flatnonzero(values)
    if nonzero.size == 0:
        return int(values.size)
    return int(values.size - nonzero[-1] - 1)


def trailing_zero_runs(blocks: np.ndarray) -> np.ndarray:
    """Per-row trailing-zero run lengths of a window matrix.

    Vectorized counterpart of :func:`trailing_zero_run`: one reduction
    over ``(n_windows, window_size)`` instead of a Python loop.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 2:
        raise ValueError(f"expected (n_windows, ws) blocks, got {blocks.shape}")
    nonzero = blocks != 0
    runs = np.argmax(nonzero[:, ::-1], axis=1)
    runs[~nonzero.any(axis=1)] = blocks.shape[1]
    return runs.astype(np.int64)


def kept_coefficients(values: np.ndarray) -> int:
    """Number of stored words after tail RLE (prefix length + codeword)."""
    values = np.asarray(values)
    run = trailing_zero_run(values)
    return int(values.size - run + (1 if run else 0))
