"""Coefficient thresholding (the lossy step of the compression pipeline).

The DCT concentrates waveform energy in the first few coefficients;
thresholding zeroes everything below a magnitude cutoff so that RLE can
fold the tail into one codeword (Section IV-C, Fig 8).  The threshold is
the knob Algorithm 1 (fidelity-aware compression) tunes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hard_threshold", "trailing_zero_run", "kept_coefficients"]


def hard_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Zero every element with ``|value| < threshold``; returns a copy.

    A threshold of 0 keeps everything (lossless apart from integer
    rounding).
    """
    values = np.asarray(values)
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    out = values.copy()
    out[np.abs(out) < threshold] = 0
    return out


def trailing_zero_run(values: np.ndarray) -> int:
    """Length of the zero run at the end of ``values``."""
    values = np.asarray(values)
    nonzero = np.flatnonzero(values)
    if nonzero.size == 0:
        return int(values.size)
    return int(values.size - nonzero[-1] - 1)


def kept_coefficients(values: np.ndarray) -> int:
    """Number of stored words after tail RLE (prefix length + codeword)."""
    values = np.asarray(values)
    run = trailing_zero_run(values)
    return int(values.size - run + (1 if run else 0))
