"""Floating-point Discrete Cosine Transform (DCT-II) and its inverse.

The paper compresses waveforms with the DCT because smooth, band-limited
pulse envelopes have almost all of their energy in the first few DCT
coefficients (Section IV-B).  This module implements the orthonormal
DCT-II / DCT-III pair from scratch (Equations 1 and 2 of the paper); the
test suite cross-checks it against ``scipy.fftpack``.

All functions operate on 1-D ``float64`` arrays.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "dct_matrix",
    "dct",
    "idct",
    "dct_blocks",
    "idct_blocks",
    "dct_windowed",
    "idct_windowed",
]


@lru_cache(maxsize=64)
def _cached_dct_matrix(n: int) -> np.ndarray:
    k = np.arange(n).reshape(-1, 1)
    j = np.arange(n).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * j + 1) * k / (2 * n)) * np.sqrt(2.0 / n)
    matrix[0, :] = 1.0 / np.sqrt(n)
    matrix.setflags(write=False)
    return matrix


def dct_matrix(n: int) -> np.ndarray:
    """Return the ``n x n`` orthonormal DCT-II matrix ``C``.

    ``C @ C.T == I`` holds exactly up to floating-point error, so the
    inverse transform is simply ``C.T``.

    Args:
        n: Transform length; must be a positive integer.

    Returns:
        A read-only ``(n, n)`` ``float64`` array.
    """
    if n <= 0:
        raise ValueError(f"transform length must be positive, got {n}")
    return _cached_dct_matrix(n)


def dct(x: np.ndarray) -> np.ndarray:
    """Forward orthonormal DCT-II of a 1-D signal (paper Equation 1)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    return dct_matrix(x.size) @ x


def idct(y: np.ndarray) -> np.ndarray:
    """Inverse orthonormal DCT (DCT-III) of a 1-D spectrum (Equation 2)."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D spectrum, got shape {y.shape}")
    return dct_matrix(y.size).T @ y


def dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Forward DCT of many windows at once.

    ``blocks`` is ``(n_windows, window_size)``; each row is transformed
    independently with a single matrix product, which is what makes the
    batched compression engine one matmul per pulse library instead of
    one per window.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 2:
        raise ValueError(f"expected (n_windows, ws) blocks, got {blocks.shape}")
    return blocks @ dct_matrix(blocks.shape[1]).T


def idct_blocks(spectra: np.ndarray) -> np.ndarray:
    """Inverse DCT of many spectra at once (row-wise DCT-III)."""
    spectra = np.asarray(spectra, dtype=np.float64)
    if spectra.ndim != 2:
        raise ValueError(f"expected (n_windows, ws) spectra, got {spectra.shape}")
    return spectra @ dct_matrix(spectra.shape[1])


def dct_windowed(x: np.ndarray, window_size: int) -> np.ndarray:
    """Forward DCT applied independently to fixed-size windows (DCT-W).

    The signal is zero-padded up to a multiple of ``window_size`` --
    windowing is what keeps the hardware IDCT engine small (Section IV-C).

    Args:
        x: 1-D input signal.
        window_size: Samples per window (the paper uses 8 or 16).

    Returns:
        A ``(n_windows, window_size)`` array of per-window spectra.
    """
    return dct_blocks(_to_blocks(x, window_size))


def idct_windowed(spectra: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct_windowed`; returns the flattened signal.

    Note the result includes any zero-padding added by the forward
    transform; callers truncate to the original length.
    """
    return idct_blocks(spectra).reshape(-1)


def _to_blocks(x: np.ndarray, window_size: int) -> np.ndarray:
    """Reshape ``x`` to ``(n_windows, window_size)``, zero-padding the tail."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if window_size <= 0:
        raise ValueError(f"window size must be positive, got {window_size}")
    n_windows = -(-x.size // window_size)
    padded = np.zeros(n_windows * window_size, dtype=np.float64)
    padded[: x.size] = x
    return padded.reshape(n_windows, window_size)
