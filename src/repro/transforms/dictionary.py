"""Dictionary compression baseline (Section IV-B).

The paper dismisses dictionary-based schemes because waveform samples
"can have arbitrary values, which rarely repeat".  This module implements
an honest frequency-dictionary codec so the benches can *show* that: on
real pulse envelopes the hit rate is tiny and R stays near (or below) 1.

Encoding model: a dictionary of the ``dict_size`` most frequent sample
values is stored alongside the stream; every sample costs 1 flag bit plus
either ``log2(dict_size)`` index bits (hit) or the full sample (miss).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import CompressionError

__all__ = ["DictionaryEncoded", "dictionary_compress", "dictionary_decompress"]


@dataclass(frozen=True)
class DictionaryEncoded:
    """A dictionary-compressed sample stream (lossless)."""

    dictionary: Tuple[int, ...]
    hits: np.ndarray  # bool per sample
    indices: np.ndarray  # dictionary index where hit, else -1
    misses: np.ndarray  # raw values of the missed samples, in order
    sample_bits: int

    @property
    def n_samples(self) -> int:
        return self.hits.size

    @property
    def index_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(len(self.dictionary), 2))))

    @property
    def encoded_bits(self) -> int:
        dictionary_bits = len(self.dictionary) * self.sample_bits
        hit_bits = int(self.hits.sum()) * self.index_bits
        miss_bits = int(self.misses.size) * self.sample_bits
        flag_bits = self.n_samples  # 1 hit/miss flag per sample
        return dictionary_bits + hit_bits + miss_bits + flag_bits

    @property
    def compression_ratio(self) -> float:
        return (self.n_samples * self.sample_bits) / self.encoded_bits

    @property
    def hit_rate(self) -> float:
        return float(self.hits.mean()) if self.hits.size else 0.0


def dictionary_compress(
    samples: np.ndarray, dict_size: int = 64, sample_bits: int = 16
) -> DictionaryEncoded:
    """Compress with a most-frequent-values dictionary.

    Args:
        samples: 1-D integer samples.
        dict_size: Dictionary entries (power of two recommended).
        sample_bits: Raw sample width.
    """
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1 or samples.size == 0:
        raise CompressionError(f"expected non-empty 1-D samples, got {samples.shape}")
    if dict_size < 1:
        raise CompressionError(f"dict_size must be >= 1, got {dict_size}")
    counts = Counter(samples.tolist())
    dictionary = tuple(value for value, _count in counts.most_common(dict_size))
    lookup: Dict[int, int] = {value: i for i, value in enumerate(dictionary)}
    indices = np.array([lookup.get(int(v), -1) for v in samples], dtype=np.int64)
    hits = indices >= 0
    misses = samples[~hits].copy()
    return DictionaryEncoded(
        dictionary=dictionary,
        hits=hits,
        indices=indices,
        misses=misses,
        sample_bits=sample_bits,
    )


def dictionary_decompress(encoded: DictionaryEncoded) -> np.ndarray:
    """Exact inverse of :func:`dictionary_compress`."""
    out = np.empty(encoded.n_samples, dtype=np.int64)
    dictionary = np.asarray(encoded.dictionary, dtype=np.int64)
    out[encoded.hits] = dictionary[encoded.indices[encoded.hits]]
    out[~encoded.hits] = encoded.misses
    return out
