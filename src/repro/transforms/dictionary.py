"""Deprecated shim: the dictionary baseline moved to the codecs package.

Since the dictionary scheme became a first-class registered codec
(PR 3), the baseline hit-rate study and the codec kernels are
single-sourced in :mod:`repro.compression.codecs.dictionary`.  This
module re-exports the old names so existing imports keep working; new
code should import from the codecs package (or
:mod:`repro.transforms`, which forwards there).
"""

from __future__ import annotations

import warnings

from repro.compression.codecs.dictionary import (  # noqa: F401
    DictionaryEncoded,
    dictionary_compress,
    dictionary_decompress,
)

__all__ = ["DictionaryEncoded", "dictionary_compress", "dictionary_decompress"]

warnings.warn(
    "repro.transforms.dictionary is deprecated; import DictionaryEncoded / "
    "dictionary_compress / dictionary_decompress from "
    "repro.compression.codecs.dictionary (or from repro.transforms) instead",
    DeprecationWarning,
    stacklevel=2,
)
