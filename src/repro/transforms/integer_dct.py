"""HEVC-style integer DCT / IDCT (the ``int-DCT-W`` variant).

Section IV-C of the paper adopts the HEVC core transform so that the
hardware IDCT engine needs no multipliers: every constant product becomes
a shift-and-add network (Section V-B).  The integer transform matrix is

    ``H_N = round(S_N * C_N)``,   ``S_N = 2 ** (6 + log2(N) / 2)``

with ``C_N`` the orthonormal DCT-II matrix -- exactly the paper's scaling
factor, and identical to the published HEVC matrices for N in {4, 8, 16,
32}.  Because ``H_N @ H_N.T ~= S_N**2 * I = 4096 * N * I``, a forward
shift of ``6 + log2(N)`` bits and an inverse shift of 6 bits make the
round trip unity-gain on 16-bit samples.

Two inverse paths are provided:

- :func:`int_idct` -- fast ``numpy`` evaluation (bit-exact);
- :func:`int_idct_shift_add` -- a reference that uses *only* shifts and
  adds via :func:`repro.transforms.csd.shift_add_multiply`, proving the
  multiplierless property the decompression engine relies on.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict

import numpy as np

from repro.errors import CompressionError
from repro.transforms.csd import (
    OpCount,
    csd_digits,
    multiplier_cost,
    shared_multiplier_cost,
    shift_add_multiply,
)
from repro.transforms.dct import dct_matrix

__all__ = [
    "SUPPORTED_SIZES",
    "COEFF_DTYPE",
    "scale_bits",
    "forward_shift",
    "INVERSE_SHIFT",
    "integer_dct_matrix",
    "int_dct",
    "int_idct",
    "int_dct_blocks",
    "int_idct_blocks",
    "int_idct_shift_add",
    "idct_op_counts",
    "idct_adder_depth",
    "LOEFFLER_OP_COUNTS",
]

SUPPORTED_SIZES = (4, 8, 16, 32)

#: Compressed coefficients are stored at the same width as raw samples.
COEFF_DTYPE = np.int16

#: The inverse transform always shifts by 6 bits (the ``log2(64)`` that is
#: common to every HEVC matrix row), independent of N.
INVERSE_SHIFT = 6

#: Published multiplier/adder counts for the *floating/fixed-point* DCT-W
#: engine based on Loeffler's algorithm (paper Table IV cites [42]).  The
#: 32-point entry follows the standard recursive-doubling extension
#: ``mults(2N) = 2 * mults(N) + N`` and is used only for timing shape.
LOEFFLER_OP_COUNTS: Dict[int, OpCount] = {
    8: OpCount(multipliers=11, adders=29, shifters=0),
    16: OpCount(multipliers=26, adders=81, shifters=0),
    32: OpCount(multipliers=68, adders=194, shifters=0),
}


def scale_bits(n: int) -> float:
    """Return ``log2(S_N)`` for an N-point integer transform (paper: S)."""
    _check_size(n)
    return 6 + math.log2(n) / 2


def forward_shift(n: int) -> int:
    """Bits shifted out after the forward transform to fit 16-bit storage."""
    _check_size(n)
    return 6 + int(math.log2(n))


#: Published HEVC base magnitudes a_N[m] ~ round(S_N * sqrt(2/N) *
#: cos(m*pi/2N)); even-index entries equal the next-smaller table
#: (HEVC's subsampling structure) and a handful of odd entries are the
#: standard's hand-tuned values (e.g. 83 where rounding gives 84).
_ODD_BASE = {
    2: (64,),
    4: (83, 36),
    8: (89, 75, 50, 18),
    16: (90, 87, 80, 70, 57, 43, 25, 9),
    32: (90, 90, 88, 85, 82, 78, 73, 67, 61, 54, 46, 38, 31, 22, 13, 4),
}


@lru_cache(maxsize=8)
def _base_magnitudes(n: int) -> tuple:
    """a_N[0..N-1]: magnitude of cos(m*pi/2N) at HEVC integer scale."""
    if n == 1:
        return (64,)
    smaller = _base_magnitudes(n // 2)
    odd = _ODD_BASE[n]
    out = []
    for m in range(n):
        out.append(smaller[m // 2] if m % 2 == 0 else odd[m // 2])
    return tuple(out)


@lru_cache(maxsize=8)
def _cached_matrix(n: int) -> np.ndarray:
    """Generate H_N by quadrant-folding the base magnitudes.

    ``H_N[k][j] = sign * a_N[fold((2j+1)k mod 4N)]`` -- the canonical
    construction of the HEVC core transform, reproducing the published
    matrices bit-exactly for N in {4, 8, 16, 32}.
    """
    base = _base_magnitudes(n)
    matrix = np.zeros((n, n), dtype=np.int64)
    matrix[0, :] = base[0]
    for k in range(1, n):
        for j in range(n):
            t = ((2 * j + 1) * k) % (4 * n)
            if t < n:
                value = base[t]
            elif t == n:
                value = 0
            elif t < 2 * n:
                value = -base[2 * n - t]
            elif t < 3 * n:
                value = -base[t - 2 * n]
            elif t == 3 * n:
                value = 0
            else:
                value = base[4 * n - t]
            matrix[k, j] = value
    matrix.setflags(write=False)
    return matrix


def integer_dct_matrix(n: int) -> np.ndarray:
    """Return the ``n x n`` integer transform matrix ``H_N`` (int64).

    For n in {4, 8, 16, 32} this is bit-exact with the published HEVC
    core transform, e.g. ``H_4 = [[64,64,64,64],[83,36,-36,-83],
    [64,-64,-64,64],[36,-83,83,-36]]``; entries approximate
    ``round(2**(6 + log2(n)/2) * C_n)`` (the paper's scale factor S).
    """
    _check_size(n)
    return _cached_matrix(n)


def int_dct(x: np.ndarray) -> np.ndarray:
    """Forward integer DCT of 16-bit samples (software / compile time).

    Args:
        x: 1-D array of integer samples; length selects the transform
            size and must be in :data:`SUPPORTED_SIZES`.

    Returns:
        int16 coefficient array of the same length.
    """
    x = np.asarray(x)
    _check_size(x.size)
    y = integer_dct_matrix(x.size) @ x.astype(np.int64)
    y = _rshift_round(y, forward_shift(x.size))
    return _saturate16(y)


def int_idct(y: np.ndarray) -> np.ndarray:
    """Inverse integer DCT (what the hardware engine computes).

    Bit-exact with :func:`int_idct_shift_add`; uses a matrix product for
    speed.
    """
    y = np.asarray(y)
    _check_size(y.size)
    x = integer_dct_matrix(y.size).T @ y.astype(np.int64)
    x = _rshift_round(x, INVERSE_SHIFT)
    return _saturate16(x)


def int_dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Forward integer DCT of many windows in one integer matmul.

    ``blocks`` is ``(n_windows, window_size)``; each row transforms
    exactly as :func:`int_dct` would (int64 arithmetic is exact, so the
    batched product is bit-identical to the per-window path).
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 2:
        raise CompressionError(f"expected (n_windows, ws) blocks, got {blocks.shape}")
    n = blocks.shape[1]
    _check_size(n)
    y = blocks.astype(np.int64) @ integer_dct_matrix(n).T
    y = _rshift_round(y, forward_shift(n))
    return _saturate16(y)


def int_idct_blocks(spectra: np.ndarray) -> np.ndarray:
    """Inverse integer DCT of many coefficient windows at once."""
    spectra = np.asarray(spectra)
    if spectra.ndim != 2:
        raise CompressionError(
            f"expected (n_windows, ws) spectra, got {spectra.shape}"
        )
    n = spectra.shape[1]
    _check_size(n)
    x = spectra.astype(np.int64) @ integer_dct_matrix(n)
    x = _rshift_round(x, INVERSE_SHIFT)
    return _saturate16(x)


def int_idct_shift_add(y: np.ndarray) -> np.ndarray:
    """Multiplierless inverse transform: shifts and adds only.

    This walks the CSD digits of every matrix constant, mirroring the
    hardware dataflow; it exists to *prove* bit-exactness of the fast
    path, not for speed.
    """
    y = np.asarray(y).astype(np.int64)
    _check_size(y.size)
    n = y.size
    matrix = integer_dct_matrix(n)
    accum = np.zeros(n, dtype=np.int64)
    for j in range(n):
        total = np.int64(0)
        for k in range(n):
            constant = int(matrix[k, j])
            if constant == 0:
                continue
            product = shift_add_multiply(int(y[k]), abs(constant))
            total += product if constant > 0 else -product
        accum[j] = total
    x = _rshift_round(accum, INVERSE_SHIFT)
    return _saturate16(x)


# ---------------------------------------------------------------------------
# Hardware cost models (feed Table IV / Table VIII / Fig 16 benches).
# ---------------------------------------------------------------------------


def idct_op_counts(n: int, variant: str = "int-DCT-W") -> OpCount:
    """Operation counts for an N-point IDCT engine.

    ``variant="DCT-W"`` returns the published Loeffler counts (real
    multipliers).  ``variant="int-DCT-W"`` counts adders/shifters of the
    partial-butterfly multiplierless engine, applying greedy common-
    subexpression sharing to each constant bank -- the same structure as
    the designs the paper cites [68].
    """
    _check_size(n)
    if variant == "DCT-W":
        try:
            return LOEFFLER_OP_COUNTS[n]
        except KeyError:
            raise CompressionError(f"no Loeffler op counts tabulated for N={n}")
    if variant != "int-DCT-W":
        raise CompressionError(f"unknown IDCT variant: {variant!r}")
    return _int_idct_ops(n)


@lru_cache(maxsize=8)
def _int_idct_ops(n: int) -> OpCount:
    if n == 2:
        # x0 = (y0 + y1) << 6, x1 = (y0 - y1) << 6: two adders, one
        # shared shifter position per input.
        return OpCount(adders=2, shifters=2)
    matrix = _cached_matrix(n) if n in SUPPORTED_SIZES else _generic_matrix(n)
    half = n // 2
    # Odd part: o_j = sum_{odd k} H[k, j] * y_k for j < n/2.  Every odd
    # input is multiplied by the same bank of n/2 constants.
    odd_bank = [abs(int(matrix[1, j])) for j in range(half)]
    per_input = shared_multiplier_cost(tuple(odd_bank))
    odd = OpCount(
        adders=per_input.adders * half, shifters=per_input.shifters * half
    )
    combine = OpCount(adders=half * (half - 1))
    butterfly = OpCount(adders=n)
    even = _int_idct_ops(half) if half >= 2 else OpCount()
    return odd + combine + butterfly + even


@lru_cache(maxsize=8)
def _generic_matrix(n: int) -> np.ndarray:
    scale = 2.0 ** (6 + math.log2(n) / 2)
    return np.round(scale * dct_matrix(n)).astype(np.int64)


def idct_adder_depth(n: int, variant: str = "int-DCT-W") -> int:
    """Logic depth (in adder levels) of the combinational IDCT engine.

    Used by the clock-frequency model (Fig 16).  A real multiplier is
    modeled as :data:`MULTIPLIER_DEPTH` adder levels.
    """
    _check_size(n)
    half = n // 2
    combine_depth = math.ceil(math.log2(max(half, 2)))
    if variant == "DCT-W":
        return MULTIPLIER_DEPTH + combine_depth + 1
    matrix = integer_dct_matrix(n)
    odd_bank = [abs(int(matrix[1, j])) for j in range(half)]
    csd_depth = max(
        math.ceil(math.log2(max(len(csd_digits(c)), 1))) if c else 0
        for c in odd_bank
    )
    return csd_depth + combine_depth + 1


#: Depth of a 16-bit array multiplier expressed in adder levels; this is
#: what makes the DCT-W engine's critical path ~1.5x the baseline's
#: (Fig 16's 0.67 bar).
MULTIPLIER_DEPTH = 5


def _rshift_round(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-up, as HEVC specifies."""
    if shift <= 0:
        return values
    offset = np.int64(1) << np.int64(shift - 1)
    return np.right_shift(values + offset, shift)


def _saturate16(values: np.ndarray) -> np.ndarray:
    info = np.iinfo(COEFF_DTYPE)
    return np.clip(values, info.min, info.max).astype(COEFF_DTYPE)


def _check_size(n: int) -> None:
    if n not in SUPPORTED_SIZES and n != 2:
        raise CompressionError(
            f"unsupported transform size {n}; expected one of {SUPPORTED_SIZES}"
        )
