"""Deprecated shim: the base-delta baseline moved to the codecs package.

Since the delta scheme became a first-class registered codec (PR 3),
the baseline bit-width study and the codec kernels are single-sourced
in :mod:`repro.compression.codecs.delta`.  This module re-exports the
old names so existing imports keep working; new code should import from
the codecs package (or :mod:`repro.transforms`, which forwards there).
"""

from __future__ import annotations

import warnings

from repro.compression.codecs.delta import (  # noqa: F401
    DeltaEncoded,
    delta_compress,
    delta_decompress,
)

__all__ = ["DeltaEncoded", "delta_compress", "delta_decompress"]

warnings.warn(
    "repro.transforms.delta is deprecated; import DeltaEncoded / "
    "delta_compress / delta_decompress from repro.compression.codecs.delta "
    "(or from repro.transforms) instead",
    DeprecationWarning,
    stacklevel=2,
)
