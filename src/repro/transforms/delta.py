"""Base-delta compression baseline (Section IV-B, Fig 7a).

The paper evaluates delta compression as a conventional-memory baseline
and finds it weak: smooth waveforms give ~2x at best, and *any* zero
crossing destroys the gain because, in the sign-magnitude sample format
control hardware DACs consume, crossing zero flips the sign bit and the
delta occupies the full bit-field of the original samples.

We mechanize that argument exactly: samples are mapped to an integer
*code* in the chosen representation, deltas are taken on codes, and the
encoded delta width is the width of the largest code delta.  Lossless
round-trip is guaranteed; the compression ratio emerges from the widths.

``representation="twos-complement"`` is provided as an ablation -- it
shows delta compression would survive zero crossings with a different
sample format, at the cost of the sequential dependence the paper notes
makes delta unsuitable for bandwidth anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError

__all__ = ["DeltaEncoded", "delta_compress", "delta_decompress"]

_REPRESENTATIONS = ("sign-magnitude", "twos-complement")


@dataclass(frozen=True)
class DeltaEncoded:
    """A delta-compressed sample stream.

    Attributes:
        base: First sample's code, stored at full width.
        deltas: Signed code differences (length ``n - 1``).
        delta_bits: Bit width allocated to each stored delta.
        sample_bits: Original sample width.
        representation: Code mapping used ("sign-magnitude" matches the
            paper's hardware model).
    """

    base: int
    deltas: np.ndarray
    delta_bits: int
    sample_bits: int
    representation: str

    @property
    def n_samples(self) -> int:
        return 1 + self.deltas.size

    @property
    def encoded_bits(self) -> int:
        """Total storage: one full-width base plus fixed-width deltas."""
        return self.sample_bits + self.deltas.size * self.delta_bits

    @property
    def original_bits(self) -> int:
        return self.n_samples * self.sample_bits

    @property
    def compression_ratio(self) -> float:
        """old size / new size, as defined in the paper (R)."""
        return self.original_bits / self.encoded_bits


def delta_compress(
    samples: np.ndarray,
    sample_bits: int = 16,
    representation: str = "sign-magnitude",
) -> DeltaEncoded:
    """Delta-compress integer samples.

    If the widest delta needs at least ``sample_bits`` bits the stream is
    effectively incompressible (R <= 1), which is what happens to
    zero-crossing waveforms in sign-magnitude form.

    Args:
        samples: 1-D array of signed integer samples.
        sample_bits: Width of one raw sample (16 for IBM I or Q).
        representation: "sign-magnitude" (paper model) or
            "twos-complement" (ablation).
    """
    if representation not in _REPRESENTATIONS:
        raise CompressionError(f"unknown representation: {representation!r}")
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1 or samples.size == 0:
        raise CompressionError(f"expected non-empty 1-D samples, got {samples.shape}")
    codes = _to_codes(samples, sample_bits, representation)
    deltas = np.diff(codes)
    delta_bits = _signed_width(deltas)
    delta_bits = min(max(delta_bits, 1), sample_bits)
    return DeltaEncoded(
        base=int(codes[0]),
        deltas=deltas,
        delta_bits=delta_bits,
        sample_bits=sample_bits,
        representation=representation,
    )


def delta_decompress(encoded: DeltaEncoded) -> np.ndarray:
    """Exact inverse of :func:`delta_compress`."""
    codes = np.concatenate(([encoded.base], encoded.deltas)).cumsum()
    return _from_codes(codes, encoded.sample_bits, encoded.representation)


def _to_codes(samples: np.ndarray, bits: int, representation: str) -> np.ndarray:
    limit = 1 << (bits - 1)
    if np.any(np.abs(samples) >= limit):
        raise CompressionError(f"samples exceed {bits}-bit signed range")
    if representation == "twos-complement":
        return samples.copy()
    # Sign-magnitude: sign bit at the top, magnitude below.  Crossing
    # zero jumps the code by ~2^(bits-1), which is the paper's point.
    sign = (samples < 0).astype(np.int64)
    return (sign << (bits - 1)) | np.abs(samples)


def _from_codes(codes: np.ndarray, bits: int, representation: str) -> np.ndarray:
    if representation == "twos-complement":
        return codes.copy()
    sign_bit = np.int64(1) << (bits - 1)
    magnitude = codes & (sign_bit - 1)
    negative = (codes & sign_bit) != 0
    return np.where(negative, -magnitude, magnitude)


def _signed_width(values: np.ndarray) -> int:
    """Minimum two's-complement width holding every value."""
    if values.size == 0:
        return 1
    lo, hi = int(values.min()), int(values.max())
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi < (1 << (width - 1))):
        width += 1
    return width
