"""Transform and codec primitives used by the COMPAQT pipelines.

Public surface:

- Floating DCT: :func:`dct`, :func:`idct`, :func:`dct_matrix`,
  :func:`dct_windowed`, :func:`idct_windowed`.
- Integer DCT (HEVC-style): :func:`int_dct`, :func:`int_idct`,
  :func:`int_idct_shift_add`, :func:`integer_dct_matrix`,
  :func:`idct_op_counts`, :func:`idct_adder_depth`.
- CSD shift-add machinery: :func:`csd_digits`,
  :func:`shift_add_multiply`, :func:`multiplier_cost`,
  :func:`shared_multiplier_cost`, :class:`OpCount`.
- RLE: :class:`EncodedWindow`, :class:`MemoryWord`,
  :func:`rle_encode_window`, :func:`rle_decode_window`.
- Thresholding: :func:`hard_threshold`, :func:`trailing_zero_run`,
  :func:`kept_coefficients`.
- Baselines: :func:`delta_compress` / :func:`delta_decompress`,
  :func:`dictionary_compress` / :func:`dictionary_decompress`
  (single-sourced in :mod:`repro.compression.codecs` since the schemes
  became first-class codecs; forwarded lazily from here for
  back-compat).
"""

from repro.transforms.dct import (
    dct,
    idct,
    dct_matrix,
    dct_windowed,
    idct_windowed,
)
from repro.transforms.csd import (
    OpCount,
    csd_digits,
    shift_add_multiply,
    multiplier_cost,
    shared_multiplier_cost,
)
from repro.transforms.integer_dct import (
    SUPPORTED_SIZES,
    COEFF_DTYPE,
    INVERSE_SHIFT,
    LOEFFLER_OP_COUNTS,
    scale_bits,
    forward_shift,
    integer_dct_matrix,
    int_dct,
    int_idct,
    int_idct_shift_add,
    idct_op_counts,
    idct_adder_depth,
)
from repro.transforms.rle import (
    TAG_COEFF,
    TAG_ZERO_RUN,
    TAG_REPEAT,
    MemoryWord,
    EncodedWindow,
    rle_encode_window,
    rle_decode_window,
    rle_encode_blocks,
    rle_expand_blocks,
)
from repro.transforms.threshold import (
    hard_threshold,
    trailing_zero_run,
    kept_coefficients,
)
# The delta/dictionary baselines live with their first-class codecs in
# repro.compression.codecs (PR 3 retired the transforms islands).  They
# are forwarded lazily (PEP 562) rather than imported here because the
# codecs package itself imports repro.transforms submodules -- an eager
# import would be circular -- and so `import repro.transforms` stays a
# leaf-layer import.
_BASELINE_HOMES = {
    "DeltaEncoded": "repro.compression.codecs.delta",
    "delta_compress": "repro.compression.codecs.delta",
    "delta_decompress": "repro.compression.codecs.delta",
    "DictionaryEncoded": "repro.compression.codecs.dictionary",
    "dictionary_compress": "repro.compression.codecs.dictionary",
    "dictionary_decompress": "repro.compression.codecs.dictionary",
}


def __getattr__(name: str):
    import importlib

    if name in ("delta", "dictionary"):
        # `repro.transforms.delta` used to be bound as a side effect of
        # the eager baseline imports; keep that attribute access working
        # by importing the deprecation shim on demand (which warns).
        return importlib.import_module(f"{__name__}.{name}")
    home = _BASELINE_HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(home), name)


__all__ = [
    "dct",
    "idct",
    "dct_matrix",
    "dct_windowed",
    "idct_windowed",
    "OpCount",
    "csd_digits",
    "shift_add_multiply",
    "multiplier_cost",
    "shared_multiplier_cost",
    "SUPPORTED_SIZES",
    "COEFF_DTYPE",
    "INVERSE_SHIFT",
    "LOEFFLER_OP_COUNTS",
    "scale_bits",
    "forward_shift",
    "integer_dct_matrix",
    "int_dct",
    "int_idct",
    "int_idct_shift_add",
    "idct_op_counts",
    "idct_adder_depth",
    "TAG_COEFF",
    "TAG_ZERO_RUN",
    "TAG_REPEAT",
    "MemoryWord",
    "EncodedWindow",
    "rle_encode_window",
    "rle_decode_window",
    "rle_encode_blocks",
    "rle_expand_blocks",
    "hard_threshold",
    "trailing_zero_run",
    "kept_coefficients",
    # Resolved lazily through module __getattr__ (see _BASELINE_HOMES).
    "DeltaEncoded",  # noqa: F822
    "delta_compress",  # noqa: F822
    "delta_decompress",  # noqa: F822
    "DictionaryEncoded",  # noqa: F822
    "dictionary_compress",  # noqa: F822
    "dictionary_decompress",  # noqa: F822
]
