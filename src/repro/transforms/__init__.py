"""Transform and codec primitives used by the COMPAQT pipelines.

Public surface:

- Floating DCT: :func:`dct`, :func:`idct`, :func:`dct_matrix`,
  :func:`dct_windowed`, :func:`idct_windowed`.
- Integer DCT (HEVC-style): :func:`int_dct`, :func:`int_idct`,
  :func:`int_idct_shift_add`, :func:`integer_dct_matrix`,
  :func:`idct_op_counts`, :func:`idct_adder_depth`.
- CSD shift-add machinery: :func:`csd_digits`,
  :func:`shift_add_multiply`, :func:`multiplier_cost`,
  :func:`shared_multiplier_cost`, :class:`OpCount`.
- RLE: :class:`EncodedWindow`, :class:`MemoryWord`,
  :func:`rle_encode_window`, :func:`rle_decode_window`.
- Thresholding: :func:`hard_threshold`, :func:`trailing_zero_run`,
  :func:`kept_coefficients`.
- Baselines: :func:`delta_compress` / :func:`delta_decompress`,
  :func:`dictionary_compress` / :func:`dictionary_decompress`.
"""

from repro.transforms.dct import (
    dct,
    idct,
    dct_matrix,
    dct_windowed,
    idct_windowed,
)
from repro.transforms.csd import (
    OpCount,
    csd_digits,
    shift_add_multiply,
    multiplier_cost,
    shared_multiplier_cost,
)
from repro.transforms.integer_dct import (
    SUPPORTED_SIZES,
    COEFF_DTYPE,
    INVERSE_SHIFT,
    LOEFFLER_OP_COUNTS,
    scale_bits,
    forward_shift,
    integer_dct_matrix,
    int_dct,
    int_idct,
    int_idct_shift_add,
    idct_op_counts,
    idct_adder_depth,
)
from repro.transforms.rle import (
    TAG_COEFF,
    TAG_ZERO_RUN,
    TAG_REPEAT,
    MemoryWord,
    EncodedWindow,
    rle_encode_window,
    rle_decode_window,
    rle_encode_blocks,
    rle_expand_blocks,
)
from repro.transforms.threshold import (
    hard_threshold,
    trailing_zero_run,
    kept_coefficients,
)
from repro.transforms.delta import (
    DeltaEncoded,
    delta_compress,
    delta_decompress,
)
from repro.transforms.dictionary import (
    DictionaryEncoded,
    dictionary_compress,
    dictionary_decompress,
)

__all__ = [
    "dct",
    "idct",
    "dct_matrix",
    "dct_windowed",
    "idct_windowed",
    "OpCount",
    "csd_digits",
    "shift_add_multiply",
    "multiplier_cost",
    "shared_multiplier_cost",
    "SUPPORTED_SIZES",
    "COEFF_DTYPE",
    "INVERSE_SHIFT",
    "LOEFFLER_OP_COUNTS",
    "scale_bits",
    "forward_shift",
    "integer_dct_matrix",
    "int_dct",
    "int_idct",
    "int_idct_shift_add",
    "idct_op_counts",
    "idct_adder_depth",
    "TAG_COEFF",
    "TAG_ZERO_RUN",
    "TAG_REPEAT",
    "MemoryWord",
    "EncodedWindow",
    "rle_encode_window",
    "rle_decode_window",
    "rle_encode_blocks",
    "rle_expand_blocks",
    "hard_threshold",
    "trailing_zero_run",
    "kept_coefficients",
    "DeltaEncoded",
    "delta_compress",
    "delta_decompress",
    "DictionaryEncoded",
    "dictionary_compress",
    "dictionary_decompress",
]
