"""Minimal benchmark runner: warmup/repeat wall-clock timing.

The harness is deliberately tiny -- ``time.perf_counter`` around a
callable, a few warmup calls to populate caches (device libraries and
the lru-cached DCT matrices), then best/mean/std over the timed repeats.
Best-of-N is the headline number (least scheduler noise); mean and std
are kept so regressions can be judged against run-to-run jitter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

__all__ = ["TimingStats", "time_callable"]


@dataclass(frozen=True)
class TimingStats:
    """Wall-clock statistics for one benchmarked callable."""

    best_s: float
    mean_s: float
    std_s: float
    repeats: int

    def throughput(self, units: float) -> float:
        """Units processed per second at the best-of-N time."""
        if self.best_s <= 0:
            return float("inf")
        return units / self.best_s

    def to_dict(self) -> Dict[str, float]:
        return {
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "std_s": self.std_s,
            "repeats": self.repeats,
        }


def time_callable(
    fn: Callable[[], Any],
    repeats: int = 3,
    warmup: int = 1,
) -> Tuple[TimingStats, Any]:
    """Time ``fn()`` with warmup; returns (stats, last result).

    Args:
        fn: Zero-argument callable to measure.
        repeats: Timed repetitions (>= 1).
        warmup: Untimed calls beforehand (>= 0).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    return (
        TimingStats(
            best_s=min(samples),
            mean_s=mean,
            std_s=var**0.5,
            repeats=repeats,
        ),
        result,
    )
