"""Encode/decode/bitstream benchmark with machine-readable output.

This is the repo's perf baseline: for every requested device (IBM
heavy-hex family, Google grid, fluxonium) and every registered codec
(all five built-ins by default -- the DCT family plus delta and
dictionary) it measures three pipelines over a full pulse-library
compile:

* **encode** -- the per-window scalar reference vs the vectorized batch
  engine (PR 1), with a bit-identity parity check between the two;
* **decode** -- per-window scalar playback
  (:func:`~repro.compression.pipeline.decompress_waveform`) vs the
  batched decode engine
  (:func:`~repro.compression.batch.decompress_batch`), again gated on
  bit-identical samples, plus the **fused cold-miss path**
  (:func:`~repro.compression.fastpath.decode_records`: record bytes
  straight to decoded waveforms) vs the scalar reader + scalar decoder
  -- the pre-fastpath serving miss pipeline.  The fused side carries
  the repo's >=10x speedup gate on windowed codecs
  (:data:`FUSED_SPEEDUP_GATE`) on top of its bit-identity gate;
* **bitstream** -- wire-format serialize/parse throughput (the default
  vectorized parser and the scalar oracle side by side, with an
  object-equality parity gate) plus a canonical round-trip check
  (``serialize(parse(b)) == b`` and the parsed streams equal to the
  compiled ones).

The payload serializes to ``BENCH_compression.json`` (see
``python -m repro bench``) so CI and later PRs can diff numbers
mechanically; :func:`render_bench_table` renders the same payload as a
human-readable table through :mod:`repro.analysis.report`.  CI fails
when any parity or round-trip gate reports a mismatch.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DeviceError
from repro.analysis.report import render_table
from repro.compression.batch import decompress_batch
from repro.compression.bitstream import (
    parse_library,
    parse_library_scalar,
    parse_waveform_scalar,
    serialize_library,
    serialize_waveform,
)
from repro.compression.codecs import get_codec, list_codecs
from repro.compression.fastpath import decode_records
from repro.compression.pipeline import decompress_waveform
from repro.core.compiler import CompaqtCompiler, CompressedPulseLibrary
from repro.devices import IBM_DEVICE_NAMES, fluxonium_device, google_device, ibm_device
from repro.perf.runner import TimingStats, time_callable
from repro.store.atomic import atomic_write
from repro.version import __version__

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_MODES",
    "DEFAULT_OUTPUT",
    "QUICK_DEVICE_SPECS",
    "FULL_DEVICE_SPECS",
    "FUSED_SPEEDUP_GATE",
    "resolve_device",
    "run_compression_bench",
    "render_bench_table",
    "write_bench_json",
]

BENCH_SCHEMA = "compaqt-bench-compression/v4"

#: Committed-baseline gate: the fused bytes->waveform cold-miss path
#: must beat the scalar reader + scalar decoder by at least this factor
#: on every windowed codec (full-frame codecs are reported, not gated:
#: their decode cost is one big matmul either way).
FUSED_SPEEDUP_GATE = 10.0

#: What to measure: the full pipeline, or just one side of the codec.
BENCH_MODES = ("all", "encode", "decode")

DEFAULT_OUTPUT = "BENCH_compression.json"

#: The quick (CI smoke) set still spans all three device families.
QUICK_DEVICE_SPECS = ("bogota", "lima", "guadalupe", "google-3x3", "fluxonium-3")

#: The full set: every IBM catalog entry plus the default Google grid
#: and fluxonium processor.
FULL_DEVICE_SPECS = tuple(IBM_DEVICE_NAMES) + ("google-6x9", "fluxonium-5")


def resolve_device(spec: str):
    """Build a device from a bench spec string.

    Accepted forms: an IBM catalog name (``"guadalupe"``),
    ``"google-<rows>x<cols>"``, or ``"fluxonium-<n_qubits>"``.
    """
    spec = spec.strip().lower()
    if spec.startswith("google-"):
        try:
            rows, cols = (int(p) for p in spec[len("google-") :].split("x"))
        except ValueError:
            raise DeviceError(f"bad google spec {spec!r}; expected google-RxC")
        return google_device(rows, cols)
    if spec.startswith("fluxonium-"):
        try:
            n_qubits = int(spec[len("fluxonium-") :])
        except ValueError:
            raise DeviceError(f"bad fluxonium spec {spec!r}; expected fluxonium-N")
        return fluxonium_device(n_qubits)
    return ibm_device(spec)


def _timing_dict(stats: TimingStats, samples: int, pulses: int) -> Dict[str, float]:
    out = stats.to_dict()
    out["samples_per_s"] = stats.throughput(samples)
    out["pulses_per_s"] = stats.throughput(pulses)
    return out


def _encode_parity_ok(scalar_lib, batched_lib) -> bool:
    """True iff both compiles produced bit-identical compressed streams."""
    keys = scalar_lib.keys()
    if set(keys) != set(batched_lib.keys()):
        return False
    for key in keys:
        s, b = scalar_lib.result(*key), batched_lib.result(*key)
        if s.compressed != b.compressed or s.mse != b.mse:
            return False
    return True


def _decode_parity_ok(scalar_waveforms, batched_waveforms) -> bool:
    """True iff scalar and batched playback emit bit-identical samples."""
    if len(scalar_waveforms) != len(batched_waveforms):
        return False
    for s, b in zip(scalar_waveforms, batched_waveforms):
        if s.name != b.name or not np.array_equal(s.samples, b.samples):
            return False
    return True


def _bench_encode(
    library, compiler_kwargs: Dict, repeats: int, warmup: int
) -> tuple[Dict, "CompressedPulseLibrary"]:
    scalar = CompaqtCompiler(batched=False, **compiler_kwargs)
    batched = CompaqtCompiler(batched=True, **compiler_kwargs)
    n_pulses = len(library)
    total_samples = library.total_samples
    scalar_stats, scalar_lib = time_callable(
        lambda: scalar.compile_library(library), repeats, warmup
    )
    batched_stats, batched_lib = time_callable(
        lambda: batched.compile_library(library), repeats, warmup
    )
    section = {
        "scalar": _timing_dict(scalar_stats, total_samples, n_pulses),
        "batched": _timing_dict(batched_stats, total_samples, n_pulses),
        "speedup": scalar_stats.best_s / batched_stats.best_s,
        "parity": _encode_parity_ok(scalar_lib, batched_lib),
    }
    return section, batched_lib


def _bench_decode(compiled, repeats: int, warmup: int) -> Dict:
    entries = [result.compressed for _key, result in compiled]
    total_samples = sum(e.original_samples for e in entries)
    n_pulses = len(entries)
    scalar_stats, scalar_out = time_callable(
        lambda: [decompress_waveform(e) for e in entries], repeats, warmup
    )
    batched_stats, batched_out = time_callable(
        lambda: decompress_batch(entries), repeats, warmup
    )

    # The serving cold-miss pipeline, both generations: the scalar
    # reader + scalar decoder (record bytes -> objects -> samples, one
    # word and one window at a time) vs the fused vectorized path
    # (record bytes -> tag/payload arrays -> grouped inverse kernels).
    # This pair feeds the >=10x gate, so even the --quick profile takes
    # at least 5 timed samples of each side, with the collector held
    # off timeit-style (the fused side runs in well under a millisecond
    # on small libraries, where a single sample -- or one mid-run GC
    # pass over the bench's accumulated object graph -- is pure noise).
    gate_repeats = max(repeats, 5)
    blobs = [serialize_waveform(e) for e in entries]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        scalar_cold_stats, scalar_cold_out = time_callable(
            lambda: [
                decompress_waveform(parse_waveform_scalar(b)) for b in blobs
            ],
            gate_repeats,
            warmup,
        )
        fused_stats, fused_out = time_callable(
            lambda: decode_records(blobs), gate_repeats, warmup
        )
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "scalar": _timing_dict(scalar_stats, total_samples, n_pulses),
        "batched": _timing_dict(batched_stats, total_samples, n_pulses),
        "speedup": scalar_stats.best_s / batched_stats.best_s,
        "parity": _decode_parity_ok(scalar_out, batched_out),
        "scalar_cold": _timing_dict(scalar_cold_stats, total_samples, n_pulses),
        "fused": _timing_dict(fused_stats, total_samples, n_pulses),
        "fused_speedup": scalar_cold_stats.best_s / fused_stats.best_s,
        "fused_parity": _decode_parity_ok(scalar_cold_out, fused_out),
    }


def _bench_bitstream(compiled, repeats: int, warmup: int) -> Dict:
    total_samples = sum(
        r.compressed.original_samples for _key, r in compiled
    )
    n_pulses = len(compiled)
    serialize_stats, blob = time_callable(compiled.to_bytes, repeats, warmup)
    parse_stats, parsed = time_callable(lambda: parse_library(blob), repeats, warmup)
    parse_scalar_stats, parsed_scalar = time_callable(
        lambda: parse_library_scalar(blob), repeats, warmup
    )
    roundtrip_ok = serialize_library(parsed) == blob
    if roundtrip_ok:
        loaded = CompressedPulseLibrary.from_bytes(blob)
        for key, result in compiled:
            twin = loaded.result(*key)
            if twin.compressed != result.compressed or not np.array_equal(
                twin.reconstructed.samples, result.reconstructed.samples
            ):
                roundtrip_ok = False
                break
    return {
        "serialize": _timing_dict(serialize_stats, total_samples, n_pulses),
        "parse": _timing_dict(parse_stats, total_samples, n_pulses),
        "parse_scalar": _timing_dict(parse_scalar_stats, total_samples, n_pulses),
        "parse_speedup": parse_scalar_stats.best_s / parse_stats.best_s,
        "parse_parity": parsed == parsed_scalar,
        "n_bytes": len(blob),
        "bytes_per_pulse": len(blob) / max(1, n_pulses),
        "roundtrip_ok": roundtrip_ok,
    }


def run_compression_bench(
    device_specs: Sequence[str] = QUICK_DEVICE_SPECS,
    variants: Optional[Sequence[str]] = None,
    window_size: int = 16,
    repeats: int = 3,
    warmup: int = 1,
    threshold: Optional[float] = None,
    mode: str = "all",
) -> Dict:
    """Run the encode/decode/bitstream library benchmark.

    Args:
        variants: Codec names to measure; defaults to every registered
            codec (``repro codecs``).
        mode: ``"all"`` measures everything; ``"encode"`` times only the
            compile side; ``"decode"`` skips the (slow) scalar compile
            timing and measures playback and the wire format.

    Returns the machine-readable payload (plain dicts/lists/floats, JSON
    serializable as-is; schema v3 adds the per-codec ``codecs``
    aggregation).  The ``summary`` gates -- ``all_parity_ok``,
    ``all_decode_parity_ok``, ``all_roundtrip_ok`` -- are the
    bit-identity verdicts CI fails on.
    """
    if variants is None:
        variants = tuple(list_codecs())
    if not device_specs:
        raise DeviceError("bench needs at least one device spec")
    if not variants:
        raise DeviceError("bench needs at least one variant")
    if mode not in BENCH_MODES:
        raise DeviceError(f"unknown bench mode {mode!r}; expected one of {BENCH_MODES}")
    entries: List[Dict] = []
    for spec in device_specs:
        device = resolve_device(spec)
        library = device.pulse_library()
        n_pulses = len(library)
        total_samples = library.total_samples
        for variant in variants:
            kwargs = {"window_size": window_size, "variant": variant}
            if threshold is not None:
                kwargs["threshold"] = threshold
            if mode == "decode":
                compiled = CompaqtCompiler(batched=True, **kwargs).compile_library(
                    library
                )
                encode_section = None
            else:
                encode_section, compiled = _bench_encode(
                    library, kwargs, repeats, warmup
                )
            entry = {
                "device": device.name,
                "spec": spec,
                "variant": variant,
                "window_size": window_size,
                "n_pulses": n_pulses,
                "total_samples": int(total_samples),
                "encode": encode_section,
                "decode": None,
                "bitstream": None,
                "compression_ratio_uniform": float(compiled.overall_ratio),
                "compression_ratio_variable": float(
                    compiled.overall_ratio_variable
                ),
                "mean_mse": float(compiled.mean_mse),
            }
            if mode != "encode":
                entry["decode"] = _bench_decode(compiled, repeats, warmup)
                entry["bitstream"] = _bench_bitstream(compiled, repeats, warmup)
            entries.append(entry)

    def _gate(rows: List[Dict], section: str, key: str) -> bool:
        checked = [e[section][key] for e in rows if e[section] is not None]
        return all(checked) if checked else True

    def _speedups(
        rows: List[Dict], section: str, key: str = "speedup"
    ) -> List[float]:
        return [e[section][key] for e in rows if e[section] is not None]

    # Per-codec aggregation (schema v3): one encode/decode/bitstream
    # roll-up per registered codec so CI legs and later PRs can gate on
    # a single scheme without re-deriving it from the entry list.
    codecs_section: Dict[str, Dict] = {}
    for variant in variants:
        rows = [e for e in entries if e["variant"] == variant]
        enc, dec = _speedups(rows, "encode"), _speedups(rows, "decode")
        fused = _speedups(rows, "decode", "fused_speedup")
        parse = _speedups(rows, "bitstream", "parse_speedup")
        codecs_section[variant] = {
            "n_entries": len(rows),
            "windowed": get_codec(variant).windowed,
            "encode": {
                "parity_ok": _gate(rows, "encode", "parity"),
                "min_speedup": min(enc) if enc else None,
                "max_speedup": max(enc) if enc else None,
            },
            "decode": {
                "parity_ok": _gate(rows, "decode", "parity"),
                "min_speedup": min(dec) if dec else None,
                "max_speedup": max(dec) if dec else None,
                "fused_parity_ok": _gate(rows, "decode", "fused_parity"),
                "min_fused_speedup": min(fused) if fused else None,
                "max_fused_speedup": max(fused) if fused else None,
            },
            "bitstream": {
                "roundtrip_ok": _gate(rows, "bitstream", "roundtrip_ok"),
                "parse_parity_ok": _gate(rows, "bitstream", "parse_parity"),
                "min_parse_speedup": min(parse) if parse else None,
            },
            "mean_compression_ratio_variable": float(
                np.mean([e["compression_ratio_variable"] for e in rows])
            ),
            "mean_mse": float(np.mean([e["mean_mse"] for e in rows])),
        }

    encode_speedups = _speedups(entries, "encode")
    decode_speedups = _speedups(entries, "decode")
    fused_speedups = _speedups(entries, "decode", "fused_speedup")
    windowed_fused = [
        s
        for e in entries
        if e["decode"] is not None and get_codec(e["variant"]).windowed
        for s in (e["decode"]["fused_speedup"],)
    ]
    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "created_unix": time.time(),
        "config": {
            "devices": list(device_specs),
            "variants": list(variants),
            "window_size": window_size,
            "repeats": repeats,
            "warmup": warmup,
            "threshold": threshold,
            "mode": mode,
        },
        "entries": entries,
        "codecs": codecs_section,
        "summary": {
            "all_parity_ok": _gate(entries, "encode", "parity"),
            "all_decode_parity_ok": _gate(entries, "decode", "parity"),
            "all_roundtrip_ok": _gate(entries, "bitstream", "roundtrip_ok"),
            "all_fused_parity_ok": _gate(entries, "decode", "fused_parity"),
            "all_parse_parity_ok": _gate(entries, "bitstream", "parse_parity"),
            "min_speedup": min(encode_speedups) if encode_speedups else None,
            "max_speedup": max(encode_speedups) if encode_speedups else None,
            "min_decode_speedup": min(decode_speedups) if decode_speedups else None,
            "max_decode_speedup": max(decode_speedups) if decode_speedups else None,
            "min_fused_speedup": min(fused_speedups) if fused_speedups else None,
            "max_fused_speedup": max(fused_speedups) if fused_speedups else None,
            "min_fused_speedup_windowed": (
                min(windowed_fused) if windowed_fused else None
            ),
            "fused_speedup_gate": FUSED_SPEEDUP_GATE,
            "fused_speedup_gate_ok": (
                min(windowed_fused) >= FUSED_SPEEDUP_GATE
                if windowed_fused
                else True
            ),
            "n_entries": len(entries),
        },
    }


def _fmt_speedup(section: Optional[Dict]) -> str:
    return f"{section['speedup']:.1f}x" if section else "-"


def _entry_gates_ok(entry: Dict) -> bool:
    if entry["encode"] is not None and not entry["encode"]["parity"]:
        return False
    if entry["decode"] is not None and not (
        entry["decode"]["parity"] and entry["decode"]["fused_parity"]
    ):
        return False
    if entry["bitstream"] is not None and not (
        entry["bitstream"]["roundtrip_ok"] and entry["bitstream"]["parse_parity"]
    ):
        return False
    return True


def render_bench_table(payload: Dict) -> str:
    """Render a bench payload as the repo's standard ASCII table."""
    rows = []
    for e in payload["entries"]:
        bitstream = e["bitstream"]
        decode = e["decode"]
        rows.append(
            [
                e["device"],
                e["variant"],
                e["n_pulses"],
                _fmt_speedup(e["encode"]),
                _fmt_speedup(e["decode"]),
                f"{decode['fused_speedup']:.1f}x" if decode else "-",
                f"{bitstream['parse_speedup']:.1f}x" if bitstream else "-",
                f"{e['compression_ratio_variable']:.2f}",
                "ok" if _entry_gates_ok(e) else "MISMATCH",
            ]
        )
    summary = payload["summary"]
    gates_ok = (
        summary["all_parity_ok"]
        and summary["all_decode_parity_ok"]
        and summary["all_roundtrip_ok"]
        and summary["all_fused_parity_ok"]
        and summary["all_parse_parity_ok"]
    )
    notes = []
    if summary["min_speedup"] is not None:
        notes.append(
            f"encode {summary['min_speedup']:.1f}x..{summary['max_speedup']:.1f}x"
        )
    if summary["min_decode_speedup"] is not None:
        notes.append(
            f"decode {summary['min_decode_speedup']:.1f}x"
            f"..{summary['max_decode_speedup']:.1f}x"
        )
    if summary["min_fused_speedup"] is not None:
        notes.append(
            f"fused cold-miss {summary['min_fused_speedup']:.1f}x"
            f"..{summary['max_fused_speedup']:.1f}x "
            f"(windowed gate {summary['fused_speedup_gate']:.0f}x: "
            f"{'ok' if summary['fused_speedup_gate_ok'] else 'FAILED'})"
        )
    notes.append(f"parity {'ok' if gates_ok else 'FAILED'}")
    return render_table(
        "Library codec: scalar vs batched vs fused "
        f"(WS={payload['config']['window_size']}, "
        f"mode={payload['config']['mode']})",
        [
            "device",
            "variant",
            "pulses",
            "enc speedup",
            "dec speedup",
            "fused miss",
            "parse",
            "R(var)",
            "parity",
        ],
        rows,
        note=", ".join(notes),
    )


def write_bench_json(payload: Dict, path: str = DEFAULT_OUTPUT) -> pathlib.Path:
    """Write the payload to disk (atomically); returns the resolved path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write(out, json.dumps(payload, indent=2) + "\n")
    return out.resolve()
