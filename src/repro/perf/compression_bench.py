"""Scalar-vs-batched compression benchmark with machine-readable output.

This is the repo's perf baseline: for every requested device (IBM
heavy-hex family, Google grid, fluxonium) and every pipeline variant it
times a full pulse-library compile through both the per-window scalar
reference and the vectorized batch engine, verifies the two produce
bit-identical compressed streams, and reports throughput
(samples/sec, pulses/sec), speedup, compression ratio and MSE.

The payload serializes to ``BENCH_compression.json`` (see
``python -m repro bench``) so CI and later PRs can diff numbers
mechanically; :func:`render_bench_table` renders the same payload as a
human-readable table through :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import DeviceError
from repro.analysis.report import render_table
from repro.compression.pipeline import VARIANTS
from repro.core.compiler import CompaqtCompiler
from repro.devices import IBM_DEVICE_NAMES, fluxonium_device, google_device, ibm_device
from repro.perf.runner import TimingStats, time_callable
from repro.version import __version__

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_OUTPUT",
    "QUICK_DEVICE_SPECS",
    "FULL_DEVICE_SPECS",
    "resolve_device",
    "run_compression_bench",
    "render_bench_table",
    "write_bench_json",
]

BENCH_SCHEMA = "compaqt-bench-compression/v1"

DEFAULT_OUTPUT = "BENCH_compression.json"

#: The quick (CI smoke) set still spans all three device families.
QUICK_DEVICE_SPECS = ("bogota", "lima", "guadalupe", "google-3x3", "fluxonium-3")

#: The full set: every IBM catalog entry plus the default Google grid
#: and fluxonium processor.
FULL_DEVICE_SPECS = tuple(IBM_DEVICE_NAMES) + ("google-6x9", "fluxonium-5")


def resolve_device(spec: str):
    """Build a device from a bench spec string.

    Accepted forms: an IBM catalog name (``"guadalupe"``),
    ``"google-<rows>x<cols>"``, or ``"fluxonium-<n_qubits>"``.
    """
    spec = spec.strip().lower()
    if spec.startswith("google-"):
        try:
            rows, cols = (int(p) for p in spec[len("google-") :].split("x"))
        except ValueError:
            raise DeviceError(f"bad google spec {spec!r}; expected google-RxC")
        return google_device(rows, cols)
    if spec.startswith("fluxonium-"):
        try:
            n_qubits = int(spec[len("fluxonium-") :])
        except ValueError:
            raise DeviceError(f"bad fluxonium spec {spec!r}; expected fluxonium-N")
        return fluxonium_device(n_qubits)
    return ibm_device(spec)


def _timing_dict(stats: TimingStats, samples: int, pulses: int) -> Dict[str, float]:
    out = stats.to_dict()
    out["samples_per_s"] = stats.throughput(samples)
    out["pulses_per_s"] = stats.throughput(pulses)
    return out


def _parity_ok(scalar_lib, batched_lib) -> bool:
    """True iff both compiles produced bit-identical compressed streams."""
    keys = scalar_lib.keys()
    if set(keys) != set(batched_lib.keys()):
        return False
    for key in keys:
        s, b = scalar_lib.result(*key), batched_lib.result(*key)
        if s.compressed != b.compressed or s.mse != b.mse:
            return False
    return True


def run_compression_bench(
    device_specs: Sequence[str] = QUICK_DEVICE_SPECS,
    variants: Sequence[str] = VARIANTS,
    window_size: int = 16,
    repeats: int = 3,
    warmup: int = 1,
    threshold: Optional[float] = None,
) -> Dict:
    """Run the scalar-vs-batched library-compile benchmark.

    Returns the machine-readable payload (plain dicts/lists/floats, JSON
    serializable as-is).  ``payload["summary"]["all_parity_ok"]`` is the
    bit-identity verdict CI gates on.
    """
    if not device_specs:
        raise DeviceError("bench needs at least one device spec")
    if not variants:
        raise DeviceError("bench needs at least one variant")
    entries: List[Dict] = []
    for spec in device_specs:
        device = resolve_device(spec)
        library = device.pulse_library()
        n_pulses = len(library)
        total_samples = library.total_samples
        for variant in variants:
            kwargs = {"window_size": window_size, "variant": variant}
            if threshold is not None:
                kwargs["threshold"] = threshold
            scalar = CompaqtCompiler(batched=False, **kwargs)
            batched = CompaqtCompiler(batched=True, **kwargs)
            scalar_stats, scalar_lib = time_callable(
                lambda: scalar.compile_library(library), repeats, warmup
            )
            batched_stats, batched_lib = time_callable(
                lambda: batched.compile_library(library), repeats, warmup
            )
            entries.append(
                {
                    "device": device.name,
                    "spec": spec,
                    "variant": variant,
                    "window_size": window_size,
                    "n_pulses": n_pulses,
                    "total_samples": int(total_samples),
                    "scalar": _timing_dict(scalar_stats, total_samples, n_pulses),
                    "batched": _timing_dict(batched_stats, total_samples, n_pulses),
                    "speedup": scalar_stats.best_s / batched_stats.best_s,
                    "compression_ratio_uniform": float(batched_lib.overall_ratio),
                    "compression_ratio_variable": float(
                        batched_lib.overall_ratio_variable
                    ),
                    "mean_mse": float(batched_lib.mean_mse),
                    "parity": _parity_ok(scalar_lib, batched_lib),
                }
            )
    speedups = [e["speedup"] for e in entries]
    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "created_unix": time.time(),
        "config": {
            "devices": list(device_specs),
            "variants": list(variants),
            "window_size": window_size,
            "repeats": repeats,
            "warmup": warmup,
            "threshold": threshold,
        },
        "entries": entries,
        "summary": {
            "all_parity_ok": all(e["parity"] for e in entries),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "n_entries": len(entries),
        },
    }


def render_bench_table(payload: Dict) -> str:
    """Render a bench payload as the repo's standard ASCII table."""
    rows = []
    for e in payload["entries"]:
        rows.append(
            [
                e["device"],
                e["variant"],
                e["n_pulses"],
                f"{e['scalar']['best_s'] * 1e3:.1f}",
                f"{e['batched']['best_s'] * 1e3:.1f}",
                f"{e['speedup']:.1f}x",
                f"{e['batched']['samples_per_s'] / 1e6:.1f}",
                f"{e['compression_ratio_variable']:.2f}",
                "ok" if e["parity"] else "MISMATCH",
            ]
        )
    summary = payload["summary"]
    return render_table(
        f"Library compile: scalar vs batched (WS={payload['config']['window_size']})",
        [
            "device",
            "variant",
            "pulses",
            "scalar ms",
            "batched ms",
            "speedup",
            "Msamp/s",
            "R(var)",
            "parity",
        ],
        rows,
        note=(
            f"speedup {summary['min_speedup']:.1f}x..{summary['max_speedup']:.1f}x, "
            f"parity {'ok' if summary['all_parity_ok'] else 'FAILED'}"
        ),
    )


def write_bench_json(payload: Dict, path: str = DEFAULT_OUTPUT) -> pathlib.Path:
    """Write the payload to disk; returns the resolved path."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out.resolve()
