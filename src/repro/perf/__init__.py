"""Performance harness: timing runner and the compression benchmark."""

from repro.perf.runner import TimingStats, time_callable
from repro.perf.compression_bench import (
    BENCH_SCHEMA,
    BENCH_MODES,
    DEFAULT_OUTPUT,
    QUICK_DEVICE_SPECS,
    FULL_DEVICE_SPECS,
    resolve_device,
    run_compression_bench,
    render_bench_table,
    write_bench_json,
)

__all__ = [
    "TimingStats",
    "time_callable",
    "BENCH_SCHEMA",
    "BENCH_MODES",
    "DEFAULT_OUTPUT",
    "QUICK_DEVICE_SPECS",
    "FULL_DEVICE_SPECS",
    "resolve_device",
    "run_compression_bench",
    "render_bench_table",
    "write_bench_json",
]
