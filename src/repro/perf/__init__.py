"""Performance harness: timing runner, compression and serving benches."""

from repro.perf.runner import TimingStats, time_callable
from repro.perf.compression_bench import (
    BENCH_SCHEMA,
    BENCH_MODES,
    DEFAULT_OUTPUT,
    QUICK_DEVICE_SPECS,
    FULL_DEVICE_SPECS,
    resolve_device,
    run_compression_bench,
    render_bench_table,
    write_bench_json,
)
from repro.perf.serving_bench import (
    SERVING_BENCH_SCHEMA,
    DEFAULT_SERVING_OUTPUT,
    SERVING_QUICK_DEVICE_SPECS,
    SERVING_FULL_DEVICE_SPECS,
    DEFAULT_SHARD_COUNTS,
    DEFAULT_CACHE_FRACTIONS,
    WARM_SPEEDUP_GATE,
    run_serving_bench,
    render_serving_table,
    write_serving_json,
    serving_gates_ok,
)

__all__ = [
    "TimingStats",
    "time_callable",
    "BENCH_SCHEMA",
    "BENCH_MODES",
    "DEFAULT_OUTPUT",
    "QUICK_DEVICE_SPECS",
    "FULL_DEVICE_SPECS",
    "resolve_device",
    "run_compression_bench",
    "render_bench_table",
    "write_bench_json",
    "SERVING_BENCH_SCHEMA",
    "DEFAULT_SERVING_OUTPUT",
    "SERVING_QUICK_DEVICE_SPECS",
    "SERVING_FULL_DEVICE_SPECS",
    "DEFAULT_SHARD_COUNTS",
    "DEFAULT_CACHE_FRACTIONS",
    "WARM_SPEEDUP_GATE",
    "run_serving_bench",
    "render_serving_table",
    "write_serving_json",
    "serving_gates_ok",
]
