"""Serving benchmark: pulse throughput of the sharded store front end.

The compression bench (PR 1-3) measures compile- and decode-side
*engine* speed; this bench measures the thing the north star actually
cares about -- sustained pulses/second at the serving interface -- and
how it moves with the two knobs the store exposes:

* **cache size** (decoded hot set, as a fraction of the library), and
* **shard count** (fetch granularity / fill parallelism).

For every device it compiles the library once, writes a CQS1 store per
shard count, and replays the same Zipf-skewed request trace three ways:

* **naive** -- the pre-subsystem baseline: one offset-indexed record
  read plus one scalar ``decompress_waveform`` per request, no cache;
* **cold**  -- ``fetch_batch`` through a fresh :class:`PulseServer`
  (mmap span views + the fused parse→decode fast path + cache fill);
* **warm**  -- the same server replaying the trace with the cache
  already populated.

Schema v2 additionally reports ``record_bytes_per_pulse`` -- the deep
Python-object footprint of one parsed compressed record
(:func:`measure_record_memory`), tracking the ``__slots__`` savings on
the high-volume record types.

Every measured config also runs a **bit-identity gate**: each unique
pulse served by ``fetch_batch`` must equal the scalar reference
(``decompress_waveform`` over the store record, i.e. the
``decompress_channel`` path) sample for sample.  The JSON summary
exposes ``all_identity_ok`` -- CI fails on it -- plus the headline
``warm_speedup_full_cache_min``, the smallest warm-over-naive speedup
among full-cache configs (the repo gates this at >= 5x for the
committed ``BENCH_serving.json``).

Schema v3 adds a **mixed read/write** section (one entry per device):
a :class:`~repro.store.StoreWriter` commits generations against a
writable copy of the store while reader threads keep fetching and
adopting snapshots via :meth:`~repro.store.PulseServer.refresh`.  Two
gates ride on it: every waveform served mid-storm must equal *some*
durably committed version of its key (``mixed_identity_ok``), and
reads must complete while a commit is held paused at its pre-publish
hook point -- the deterministic proof that readers never block on
writer commits (``readers_nonblocking_ok``).
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import tempfile
import threading
import time
from dataclasses import fields, is_dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import DeviceError
from repro.analysis.report import render_table
from repro.compression.pipeline import decompress_waveform
from repro.core.compiler import CompaqtCompiler
from repro.devices import IBM_DEVICE_NAMES
from repro.perf.compression_bench import resolve_device
from repro.perf.runner import time_callable
from repro.pulses.waveform import Waveform
from repro.store import (
    PulseServer,
    ShardedStore,
    StoreWriter,
    atomic_write,
    open_store,
    save_store,
    synthetic_trace,
)
from repro.store.hooks import set_preempt_hook
from repro.version import __version__

__all__ = [
    "SERVING_BENCH_SCHEMA",
    "DEFAULT_SERVING_OUTPUT",
    "SERVING_QUICK_DEVICE_SPECS",
    "SERVING_FULL_DEVICE_SPECS",
    "DEFAULT_SHARD_COUNTS",
    "DEFAULT_CACHE_FRACTIONS",
    "WARM_SPEEDUP_GATE",
    "measure_record_memory",
    "run_serving_bench",
    "render_serving_table",
    "write_serving_json",
    "serving_gates_ok",
    "run_serving_soak",
    "render_soak_table",
    "soak_gates_ok",
]

SERVING_BENCH_SCHEMA = "compaqt-bench-serving/v3"

DEFAULT_SERVING_OUTPUT = "BENCH_serving.json"

#: Quick (CI smoke) profile: two library sizes, still every code path.
SERVING_QUICK_DEVICE_SPECS = ("bogota", "guadalupe")

#: The standard 11-device set: the full IBM catalog plus the default
#: Google grid and fluxonium processor (matches the compression bench).
SERVING_FULL_DEVICE_SPECS = tuple(IBM_DEVICE_NAMES) + (
    "google-6x9",
    "fluxonium-5",
)

DEFAULT_SHARD_COUNTS = (1, 4, 8)

#: Cache capacity as a fraction of the library's pulse count; 1.0 is
#: the fully resident hot set the headline warm gate is measured at.
DEFAULT_CACHE_FRACTIONS = (0.125, 0.5, 1.0)

#: Committed-baseline gate: warm full-cache ``fetch_batch`` must beat
#: the naive per-pulse decode loop by at least this factor.
WARM_SPEEDUP_GATE = 5.0


def _deep_sizeof(obj, seen: set) -> int:
    """Recursive ``sys.getsizeof`` over a record object graph.

    Counts every distinct Python object once (shared small ints and
    interned strings are deduplicated by id), descending through
    dataclasses (slots or not), containers and numpy arrays -- the
    measure behind the serving summary's per-pulse record-memory
    number, which tracks the ``__slots__`` savings on the high-volume
    record types.
    """
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, np.ndarray):
        return size
    if is_dataclass(obj) and not isinstance(obj, type):
        for field in fields(obj):
            size += _deep_sizeof(getattr(obj, field.name), seen)
    elif isinstance(obj, (tuple, list, set, frozenset)):
        for item in obj:
            size += _deep_sizeof(item, seen)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_sizeof(key, seen) + _deep_sizeof(value, seen)
    return size


def measure_record_memory(store: ShardedStore) -> float:
    """Mean deep size (bytes) of one parsed compressed record.

    Reads every record through the store's fast parse path and walks
    the resulting object graphs -- the in-memory footprint a resident
    compressed library costs per pulse (``CompressedWaveform`` down to
    its ``EncodedWindow`` coefficient tuples).
    """
    records = store.read_many(store.keys())
    seen: set = set()
    total = sum(_deep_sizeof(record, seen) for record in records)
    return total / max(1, len(records))


def _serve_trace(
    server: PulseServer,
    trace: Sequence[Tuple[str, Tuple[int, ...]]],
    batch_size: int,
) -> int:
    """Replay a trace through ``fetch_batch``; returns pulses served."""
    served = 0
    for start in range(0, len(trace), batch_size):
        served += len(server.fetch_batch(trace[start : start + batch_size]))
    return served


def _identity_ok(
    server: PulseServer,
    store: ShardedStore,
    reference: Dict[Tuple[str, Tuple[int, ...]], np.ndarray],
) -> bool:
    """Every pulse served batch-wise must match the scalar reference."""
    keys = store.keys()
    served = server.fetch_batch(keys)
    for key, waveform in zip(keys, served):
        if not np.array_equal(waveform.samples, reference[key]):
            return False
    return True


def _recalibrated(waveform: Waveform, rng: random.Random) -> Waveform:
    """A cheap, deterministic stand-in for a device recalibration."""
    samples = np.roll(waveform.samples, 1 + rng.randrange(5))
    samples = samples * (0.75 + 0.2 * rng.random())
    return Waveform(
        name=waveform.name,
        samples=samples,
        dt=waveform.dt,
        gate=waveform.gate,
        qubits=waveform.qubits,
    )


def _paused_commit_reads(
    server: PulseServer, rw_dir: pathlib.Path, rng: random.Random
) -> Tuple[int, bool]:
    """Readers-never-blocked, deterministically.

    Stage one update, start its commit on a thread, and *hold* it at
    ``writer.manifest.tmp_written`` -- the last instant before the
    atomic publish, with the staged shard and temp manifest already on
    disk.  While the commit is frozen there, a full catalog read (cache
    cleared, so every fetch goes to the store) must complete.  Returns
    ``(reads completed during the pause, completed without timing
    out)``; a reader blocked on the writer would leave the read thread
    alive at the join timeout.
    """
    writer = StoreWriter(rw_dir)
    keys = writer.store.keys()
    key = keys[rng.randrange(len(keys))]
    waveform = writer.store.decode_many([key])[0]
    compiler = CompaqtCompiler(
        window_size=writer.store.window_size, codec=writer.store.variant
    )
    writer.put(
        key[0], key[1],
        compiler.compile_waveform(_recalibrated(waveform, rng)),
    )

    reached = threading.Event()
    release = threading.Event()
    previous = set_preempt_hook(None)

    def hook(point: str) -> None:
        if previous is not None:
            previous(point)
        if point == "writer.manifest.tmp_written":
            reached.set()
            release.wait(timeout=30.0)

    set_preempt_hook(hook)
    commit_error: List[BaseException] = []

    def do_commit() -> None:
        try:
            writer.commit()
        except BaseException as exc:  # surfaced after the proof
            commit_error.append(exc)

    committer = threading.Thread(target=do_commit, name="bench-rw-commit")
    reads_done = [0]

    def read_storm() -> None:
        for read_key in keys:
            server.fetch(*read_key)
            reads_done[0] += 1

    try:
        committer.start()
        if not reached.wait(timeout=30.0):
            return 0, False
        server.cache.clear()
        reader = threading.Thread(target=read_storm, name="bench-rw-reads")
        reader.start()
        reader.join(timeout=30.0)
        blocked = reader.is_alive()
    finally:
        release.set()
        committer.join()
        set_preempt_hook(previous)
        writer.close()
    if commit_error:
        raise commit_error[0]
    return reads_done[0], not blocked and reads_done[0] == len(keys)


def _run_mixed_rw(
    compiled,
    device_name: str,
    tmp: str,
    n_shards: int,
    batch_size: int,
    seed: int,
    commits: int,
    reader_threads: int = 2,
) -> Dict:
    """One device's mixed read/write measurement (schema v3 ``mixed``).

    Reader threads fetch continuously (refreshing every few batches to
    adopt the writer's generations) while the main thread commits
    ``commits`` seeded recalibration batches.  Every served waveform is
    checked against the key's committed-version history; reader
    throughput under write load is the reported rate.
    """
    rw_dir = pathlib.Path(tmp) / f"{device_name}-rw.cqs"
    base = save_store(compiled, rw_dir, n_shards=n_shards)
    keys = base.keys()
    current = dict(zip(keys, base.decode_many(keys)))
    history_lock = threading.Lock()
    history = {
        key: [decompress_waveform(base.read_record(*key)).samples]
        for key in keys
    }
    base.close()

    compiler = CompaqtCompiler(
        window_size=compiled.window_size, codec=compiled.variant
    )
    rng = random.Random(seed ^ 0xB177E)
    stop = threading.Event()
    served = [0] * reader_threads
    mismatches = [0]
    refreshes = [0]

    with PulseServer(
        open_store(rw_dir), cache_capacity=len(keys), max_workers=4
    ) as server:

        def reader(worker_id: int) -> None:
            local = random.Random((seed << 10) ^ worker_id)
            ops = 0
            while not stop.is_set():
                ops += 1
                if ops % 4 == 0:
                    if server.refresh():
                        refreshes[0] += 1
                batch = [
                    keys[local.randrange(len(keys))]
                    for _ in range(batch_size)
                ]
                waveforms = server.fetch_batch(batch)
                served[worker_id] += len(waveforms)
                for key, waveform in zip(batch, waveforms):
                    with history_lock:
                        committed = list(history[key])
                    if not any(
                        np.array_equal(waveform.samples, want)
                        for want in committed
                    ):
                        mismatches[0] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), name=f"bench-rw-{i}")
            for i in range(reader_threads)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()

        writer = StoreWriter(rw_dir)
        try:
            for _ in range(commits):
                for _ in range(1 + rng.randrange(3)):
                    key = keys[rng.randrange(len(keys))]
                    result = compiler.compile_waveform(
                        _recalibrated(current[key], rng)
                    )
                    writer.put(key[0], key[1], result)
                    current[key] = result.reconstructed
                    # Record the candidate *before* the publish: a
                    # reader may adopt the new generation the instant
                    # the manifest lands, ahead of this thread.
                    with history_lock:
                        history[key].append(result.reconstructed.samples)
                writer.commit()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            writer.close()
        elapsed = time.perf_counter() - start
        server.refresh()
        generation = server.store.generation

        paused_reads, nonblocking = _paused_commit_reads(
            server, rw_dir, rng
        )

    return {
        "device": device_name,
        "n_shards": n_shards,
        "reader_threads": reader_threads,
        "commits": commits,
        "generation": generation,
        "refresh_adoptions": refreshes[0],
        "reads_served": sum(served),
        "mixed_pulses_per_s": sum(served) / elapsed if elapsed else 0.0,
        "identity_ok": mismatches[0] == 0,
        "reads_during_paused_commit": paused_reads,
        "readers_nonblocking_ok": bool(nonblocking),
    }


def run_serving_bench(
    device_specs: Sequence[str] = SERVING_QUICK_DEVICE_SPECS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    n_requests: int = 2048,
    batch_size: int = 32,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 7,
    window_size: int = 16,
    variant: str = "int-DCT-W",
    max_workers: int = 4,
    mixed_commits: int = 4,
) -> Dict:
    """Run the serving benchmark; returns the JSON-serializable payload.

    One entry per ``device x shard count x cache fraction``.  The trace
    (Zipf over the device's keys, fixed seed) and the naive baseline
    are shared across a device's configs so speedups are comparable.
    ``mixed_commits`` sizes the per-device mixed read/write section
    (0 skips it, dropping the v3 gates).
    """
    if not device_specs:
        raise DeviceError("serving bench needs at least one device spec")
    if min(shard_counts, default=0) < 1:
        raise DeviceError(f"shard counts must be >= 1, got {tuple(shard_counts)}")
    if min(cache_fractions, default=0.0) <= 0:
        raise DeviceError(
            f"cache fractions must be > 0, got {tuple(cache_fractions)}"
        )
    if n_requests < 1 or batch_size < 1:
        raise DeviceError("n_requests and batch_size must be >= 1")

    entries: List[Dict] = []
    mixed_entries: List[Dict] = []
    for spec in device_specs:
        device = resolve_device(spec)
        library = device.pulse_library()
        compiled = CompaqtCompiler(
            window_size=window_size, variant=variant
        ).compile_library(library)
        n_pulses = len(compiled)
        with tempfile.TemporaryDirectory(prefix="cqs1-bench-") as tmp:
            stores = {
                n_shards: save_store(
                    compiled,
                    pathlib.Path(tmp) / f"{device.name}-{n_shards}.cqs",
                    n_shards=n_shards,
                )
                for n_shards in shard_counts
            }
            record_bytes = measure_record_memory(stores[shard_counts[0]])
            trace = synthetic_trace(stores[shard_counts[0]].keys(), n_requests, seed)
            reference = {
                key: decompress_waveform(
                    compiled.result(*key).compressed
                ).samples
                for key in stores[shard_counts[0]].keys()
            }

            # The naive baseline: per-request record read + scalar
            # decode, straight off the first store layout.
            naive_store = stores[shard_counts[0]]
            naive_stats, _ = time_callable(
                lambda: [
                    decompress_waveform(naive_store.read_record(*key))
                    for key in trace
                ],
                repeats,
                warmup,
            )
            naive_pps = naive_stats.throughput(len(trace))

            for n_shards in shard_counts:
                store = stores[n_shards]
                for fraction in cache_fractions:
                    cache_size = max(1, round(fraction * n_pulses))

                    # Cold: fresh server per repetition, best-of-N.
                    cold_samples = []
                    for _ in range(max(1, repeats)):
                        with PulseServer(
                            store,
                            cache_capacity=cache_size,
                            max_workers=max_workers,
                        ) as cold_server:
                            start = time.perf_counter()
                            _serve_trace(cold_server, trace, batch_size)
                            cold_samples.append(time.perf_counter() - start)
                    cold_pps = len(trace) / min(cold_samples)

                    # Warm: one server, cache populated by a first
                    # pass, then timed replays.
                    with PulseServer(
                        store, cache_capacity=cache_size, max_workers=max_workers
                    ) as server:
                        _serve_trace(server, trace, batch_size)
                        before = server.stats()
                        warm_stats, _ = time_callable(
                            lambda: _serve_trace(server, trace, batch_size),
                            repeats,
                            warmup,
                        )
                        after = server.stats()
                        warm_lookups = after.cache.lookups - before.cache.lookups
                        warm_hits = after.cache.hits - before.cache.hits
                        identity = _identity_ok(server, store, reference)
                    warm_pps = warm_stats.throughput(len(trace))

                    entries.append(
                        {
                            "device": device.name,
                            "spec": spec,
                            "variant": variant,
                            "window_size": window_size,
                            "n_pulses": n_pulses,
                            "n_requests": len(trace),
                            "batch_size": batch_size,
                            "n_shards": n_shards,
                            "cache_fraction": fraction,
                            "cache_size": cache_size,
                            "store_bytes": store.total_shard_bytes,
                            "record_bytes_per_pulse": record_bytes,
                            "naive_pulses_per_s": naive_pps,
                            "cold_pulses_per_s": cold_pps,
                            "warm_pulses_per_s": warm_pps,
                            "cold_speedup_vs_naive": cold_pps / naive_pps,
                            "warm_speedup_vs_naive": warm_pps / naive_pps,
                            "warm_hit_rate": (
                                warm_hits / warm_lookups if warm_lookups else 0.0
                            ),
                            "identity_ok": bool(identity),
                        }
                    )

            if mixed_commits:
                mixed_entries.append(
                    _run_mixed_rw(
                        compiled, device.name, tmp, shard_counts[0],
                        batch_size, seed, mixed_commits,
                    )
                )

    full_cache = [e for e in entries if e["cache_size"] >= e["n_pulses"]]
    warm_full = [e["warm_speedup_vs_naive"] for e in full_cache]
    warm_all = [e["warm_speedup_vs_naive"] for e in entries]
    summary = {
        "all_identity_ok": all(e["identity_ok"] for e in entries),
        "warm_speedup_full_cache_min": min(warm_full) if warm_full else None,
        "warm_speedup_full_cache_max": max(warm_full) if warm_full else None,
        "warm_speedup_gate": WARM_SPEEDUP_GATE,
        "warm_speedup_gate_ok": (
            min(warm_full) >= WARM_SPEEDUP_GATE if warm_full else False
        ),
        "min_warm_speedup": min(warm_all),
        "max_warm_speedup": max(warm_all),
        "record_bytes_per_pulse_mean": float(
            np.mean([e["record_bytes_per_pulse"] for e in entries])
        ),
        "n_entries": len(entries),
        "mixed_identity_ok": all(e["identity_ok"] for e in mixed_entries),
        "readers_nonblocking_ok": all(
            e["readers_nonblocking_ok"] for e in mixed_entries
        ),
    }
    return {
        "schema": SERVING_BENCH_SCHEMA,
        "version": __version__,
        "created_unix": time.time(),
        "config": {
            "devices": list(device_specs),
            "shard_counts": list(shard_counts),
            "cache_fractions": list(cache_fractions),
            "n_requests": n_requests,
            "batch_size": batch_size,
            "repeats": repeats,
            "warmup": warmup,
            "seed": seed,
            "window_size": window_size,
            "variant": variant,
            "max_workers": max_workers,
            "mixed_commits": mixed_commits,
        },
        "entries": entries,
        "mixed": mixed_entries,
        "summary": summary,
    }


def render_serving_table(payload: Dict) -> str:
    """Render a serving-bench payload as the repo's standard table."""
    rows = []
    for e in payload["entries"]:
        rows.append(
            [
                e["device"],
                e["n_shards"],
                f"{e['cache_size']} ({e['cache_fraction']:.0%})",
                f"{e['naive_pulses_per_s']:.0f}",
                f"{e['cold_pulses_per_s']:.0f}",
                f"{e['warm_pulses_per_s']:.0f}",
                f"{e['warm_speedup_vs_naive']:.1f}x",
                f"{e['warm_hit_rate']:.0%}",
                "ok" if e["identity_ok"] else "MISMATCH",
            ]
        )
    summary = payload["summary"]
    notes = [
        f"identity {'ok' if summary['all_identity_ok'] else 'FAILED'}",
    ]
    if summary["warm_speedup_full_cache_min"] is not None:
        notes.append(
            "warm full-cache >= "
            f"{summary['warm_speedup_full_cache_min']:.1f}x naive "
            f"(gate {summary['warm_speedup_gate']:.0f}x: "
            f"{'ok' if summary['warm_speedup_gate_ok'] else 'FAILED'})"
        )
    if payload.get("mixed"):
        mixed_pps = min(e["mixed_pulses_per_s"] for e in payload["mixed"])
        notes.append(
            f"mixed r/w >= {mixed_pps:.0f} p/s, versioned identity "
            f"{'ok' if summary.get('mixed_identity_ok') else 'FAILED'}, "
            "readers non-blocking "
            f"{'ok' if summary.get('readers_nonblocking_ok') else 'FAILED'}"
        )
    return render_table(
        "Pulse serving: store + cache + server vs naive decode loop "
        f"(WS={payload['config']['window_size']}, "
        f"{payload['config']['variant']})",
        [
            "device",
            "shards",
            "cache",
            "naive p/s",
            "cold p/s",
            "warm p/s",
            "warm speedup",
            "warm hits",
            "identity",
        ],
        rows,
        note=", ".join(notes),
    )


def write_serving_json(
    payload: Dict, path: str = DEFAULT_SERVING_OUTPUT
) -> pathlib.Path:
    """Write the payload to disk; returns the resolved path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write(out, (json.dumps(payload, indent=2) + "\n").encode("ascii"))
    return out.resolve()


def serving_gates_ok(payload: Dict) -> Tuple[bool, List[str]]:
    """CI verdict: (ok, failure messages).  Identity is the hard gate.

    Payloads carrying the schema-v3 ``mixed`` section additionally gate
    on versioned identity under live writes and on the paused-commit
    readers-never-blocked proof.
    """
    failures: List[str] = []
    if not payload["summary"]["all_identity_ok"]:
        failures.append(
            "served waveforms are not bit-identical to decompress_channel"
        )
    if payload.get("mixed"):
        if not payload["summary"].get("mixed_identity_ok"):
            failures.append(
                "mixed r/w: a served waveform matched no committed version"
            )
        if not payload["summary"].get("readers_nonblocking_ok"):
            failures.append(
                "mixed r/w: reads did not complete while a commit was "
                "paused pre-publish"
            )
    return (not failures, failures)


# ---------------------------------------------------------------------------
# Soak mode: the chaos harness over the bench's device sweep.
# ---------------------------------------------------------------------------


def run_serving_soak(
    device_specs: Sequence[str] = SERVING_QUICK_DEVICE_SPECS,
    seed: int = 0,
    threads: int = 4,
    ops_per_thread: int = 150,
    net_clients: int = 3,
    n_shards: int = 4,
    fault_period: int = 7,
    decode_workers: int = 2,
    trace_sample_rate: float = 0.0,
    write_commits: int = 12,
    store_dir=None,
) -> Dict:
    """Run the fault-injection soak over each bench device.

    Where :func:`run_serving_bench` measures the healthy stack's
    throughput, this runs the same store/cache/server/net stack under
    the seeded fault plan of :func:`repro.chaos.run_chaos` -- one run
    per device spec, including the decode-pool SIGKILL storm when
    ``decode_workers > 0`` and the commit-protocol write storm when
    ``write_commits > 0`` -- and returns a JSON-able payload whose
    ``all_ok`` is the CI gate (see :func:`soak_gates_ok`).
    """
    from repro.chaos import CHAOS_SCHEMA, FaultPlan, run_chaos

    if not device_specs:
        raise DeviceError("serving soak needs at least one device spec")
    reports = [
        run_chaos(
            device_spec=spec,
            seed=seed,
            threads=threads,
            ops_per_thread=ops_per_thread,
            net_clients=net_clients,
            n_shards=n_shards,
            plan=FaultPlan(seed=seed, period=fault_period),
            decode_workers=decode_workers,
            trace_sample_rate=trace_sample_rate,
            write_commits=write_commits,
            store_dir=store_dir,
        )
        for spec in device_specs
    ]
    return {
        "schema": CHAOS_SCHEMA,
        "version": __version__,
        "created_unix": time.time(),
        "config": {
            "devices": list(device_specs),
            "seed": seed,
            "threads": threads,
            "ops_per_thread": ops_per_thread,
            "net_clients": net_clients,
            "n_shards": n_shards,
            "fault_period": fault_period,
            "decode_workers": decode_workers,
            "trace_sample_rate": trace_sample_rate,
            "write_commits": write_commits,
        },
        "entries": [report.as_dict() for report in reports],
        "all_ok": all(report.ok for report in reports),
    }


def render_soak_table(payload: Dict) -> str:
    """Render a soak payload as the repo's standard table."""
    rows = []
    for e in payload["entries"]:
        faults = e["faults_injected"]
        rows.append(
            [
                e["device"],
                e["requests_threaded"]
                + e["requests_net"]
                + e.get("requests_pool", 0),
                sum(faults.values()),
                "/".join(str(faults.get(k, 0)) for k in sorted(faults)) or "-",
                e["typed_errors"],
                e["overloads"],
                e["untyped_errors"],
                e["identity_checks"],
                e["recovery_reads"],
                "ok" if e["ok"] else f"{len(e['violations'])} VIOLATIONS",
            ]
        )
    return render_table(
        f"Chaos soak: seeded faults over the serving stack "
        f"(seed {payload['config']['seed']}, "
        f"period {payload['config']['fault_period']})",
        [
            "device",
            "requests",
            "faults",
            "by kind",
            "typed err",
            "shed",
            "untyped",
            "identity",
            "recovered",
            "verdict",
        ],
        rows,
        note="by kind: " + "/".join(
            sorted(
                {
                    k
                    for e in payload["entries"]
                    for k in e["faults_injected"]
                }
            )
        ),
    )


def soak_gates_ok(payload: Dict) -> Tuple[bool, List[str]]:
    """CI verdict for a soak payload: every run clean, every fault typed."""
    failures: List[str] = []
    for e in payload["entries"]:
        if e["violations"]:
            failures.append(
                f"{e['device']}: {len(e['violations'])} invariant "
                f"violation(s): {e['violations'][0]}"
            )
        if e["untyped_errors"]:
            failures.append(
                f"{e['device']}: {e['untyped_errors']} untyped exception(s) "
                "escaped the stack"
            )
    return (not failures, failures)
