"""Network benchmark: the ``CQN1`` serving tier measured at the socket.

The serving bench measures ``PulseServer.fetch_batch`` in-process; this
bench puts the asyncio front end (:mod:`repro.serve_net`) between the
caller and the server and measures what a controller on the other end
of a TCP connection actually experiences.  Per device it runs three
phases against a loopback ``NetPulseServer``:

* **identity** -- every key fetched over the wire in both modes:
  ``MODE_SAMPLES`` payloads must be byte-identical to the scalar
  ``decompress_channel`` reference, ``MODE_RECORD`` payloads must be
  byte-identical to ``ShardedStore.read_record_bytes``.  This is the
  hard gate: compression that corrupts a single bit on the wire is
  worthless.
* **warm closed loop** -- N connections replaying a Zipf trace against
  a warm cache as fast as request/response allows; reports sustained
  pulses/second and p50/p95/p99 latency.  Gated at
  ``WARM_PULSES_PER_S_GATE`` and ``WARM_P99_GATE_MS``.
* **open-loop overdrive** -- a second front end over the *same*
  ``PulseServer`` with a deliberately tiny ``max_inflight``, driven by
  a Poisson arrival schedule far past capacity.  The gate is that
  backpressure is *observable and bounded*: the server must shed with
  explicit ``STATUS_OVERLOAD`` replies (``overloads > 0``) and the
  generator's outstanding-request bound must hold
  (``peak_outstanding <= max_outstanding``) -- no unbounded queue on
  either side.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from typing import Dict, List, Sequence, Tuple


from repro.analysis.report import render_table
from repro.compression.pipeline import decompress_waveform
from repro.core.compiler import CompaqtCompiler
from repro.errors import DeviceError
from repro.perf.compression_bench import resolve_device
from repro.serve_net.client import PulseClient
from repro.serve_net.loadgen import run_closed_loop, run_open_loop
from repro.serve_net.server import serve_in_thread
from repro.store import PulseServer, save_store, synthetic_trace
from repro.version import __version__

__all__ = [
    "NETWORK_BENCH_SCHEMA",
    "DEFAULT_NETWORK_OUTPUT",
    "NETWORK_QUICK_DEVICE_SPECS",
    "NETWORK_FULL_DEVICE_SPECS",
    "WARM_PULSES_PER_S_GATE",
    "WARM_P99_GATE_MS",
    "run_network_bench",
    "render_network_table",
    "write_network_json",
    "network_gates_ok",
]

NETWORK_BENCH_SCHEMA = "compaqt-bench-network/v1"

DEFAULT_NETWORK_OUTPUT = "BENCH_network.json"

#: Quick (CI smoke) profile.
NETWORK_QUICK_DEVICE_SPECS = ("bogota", "guadalupe")

#: Full profile: the quick pair plus the larger synthetic processors.
NETWORK_FULL_DEVICE_SPECS = ("bogota", "guadalupe", "google-6x9", "fluxonium-5")

#: Warm closed-loop batched fetch over the loopback socket must sustain
#: at least this many pulses/second (ISSUE acceptance floor).
WARM_PULSES_PER_S_GATE = 10_000.0

#: ...and its p99 request latency must stay under this bound.  Loopback
#: warm-cache batches complete in well under a millisecond each; the
#: bound is deliberately loose so CI-runner jitter cannot flake it.
WARM_P99_GATE_MS = 250.0


def _identity_ok(
    address: Tuple[str, int],
    serving: PulseServer,
    reference: Dict[Tuple[str, Tuple[int, ...]], bytes],
) -> bool:
    """Every byte served over the wire must match the local references."""
    store = serving.store
    keys = store.keys()
    with PulseClient(address) as client:
        waveforms = client.fetch_batch(keys)
        records = client.fetch_records(keys)
    for key, waveform in zip(keys, waveforms):
        if waveform.samples.tobytes() != reference[key]:
            return False
        local = serving.fetch(*key)
        if waveform.name != local.name or waveform.dt != local.dt:
            return False
    for key, record in zip(keys, records):
        if record != store.read_record_bytes(*key):
            return False
    return True


def run_network_bench(
    device_specs: Sequence[str] = NETWORK_QUICK_DEVICE_SPECS,
    n_requests: int = 4096,
    batch_size: int = 64,
    connections: int = 4,
    n_shards: int = 4,
    repeats: int = 3,
    seed: int = 7,
    window_size: int = 16,
    codec: str = "int-DCT-W",
    overdrive_max_inflight: int = 2,
    overdrive_rate: float = 4000.0,
    overdrive_connections: int = 12,
    overdrive_max_outstanding: int = 64,
) -> Dict:
    """Run the network benchmark; returns the JSON-serializable payload.

    One entry per device.  The warm closed loop is best-of-``repeats``
    replays after a warming pass; the overdrive phase reuses the same
    warmed :class:`PulseServer` behind a second front end whose
    ``max_inflight`` is deliberately far below the offered load.
    """
    if not device_specs:
        raise DeviceError("network bench needs at least one device spec")
    if n_requests < 1 or batch_size < 1 or connections < 1 or repeats < 1:
        raise DeviceError(
            "n_requests, batch_size, connections and repeats must be >= 1"
        )

    entries: List[Dict] = []
    for spec in device_specs:
        device = resolve_device(spec)
        compiled = CompaqtCompiler(
            window_size=window_size, codec=codec
        ).compile_library(device.pulse_library())
        with tempfile.TemporaryDirectory(prefix="cqn1-bench-") as tmp:
            store = save_store(
                compiled, pathlib.Path(tmp) / f"{device.name}.cqs", n_shards
            )
            keys = store.keys()
            reference = {
                key: decompress_waveform(
                    compiled.result(*key).compressed
                ).samples.tobytes()
                for key in keys
            }
            trace = synthetic_trace(keys, n_requests, seed)

            with PulseServer(store, cache_capacity=len(keys)) as serving:
                with serve_in_thread(serving) as handle:
                    address = handle.address
                    identity = _identity_ok(address, serving, reference)
                    # Warming pass, then best-of-N timed replays.
                    run_closed_loop(
                        address, trace, batch_size=batch_size,
                        connections=connections,
                    )
                    warm = max(
                        (
                            run_closed_loop(
                                address,
                                trace,
                                batch_size=batch_size,
                                connections=connections,
                            )
                            for _ in range(repeats)
                        ),
                        key=lambda report: report.pulses_per_s,
                    )

                # Overdrive: tiny admission bound, Poisson arrivals far
                # past capacity, same warmed PulseServer behind it.
                with serve_in_thread(
                    serving, max_inflight=overdrive_max_inflight
                ) as overdrive_handle:
                    overdrive = run_open_loop(
                        overdrive_handle.address,
                        trace,
                        rate=overdrive_rate,
                        batch_size=max(1, batch_size // 16),
                        connections=overdrive_connections,
                        max_outstanding=overdrive_max_outstanding,
                        seed=seed,
                    )
                    net_stats = overdrive_handle.stats()
            store.close()

        warm_latency = warm.latency_ms
        entries.append(
            {
                "device": device.name,
                "spec": spec,
                "codec": codec,
                "window_size": window_size,
                "n_pulses": len(keys),
                "n_requests": len(trace),
                "identity_ok": bool(identity),
                "warm": warm.as_dict(),
                "warm_pulses_per_s": warm.pulses_per_s,
                "warm_p50_ms": warm_latency["p50"],
                "warm_p99_ms": warm_latency["p99"],
                "overdrive": overdrive.as_dict(),
                "overdrive_overloads": overdrive.overloads,
                "overdrive_server_overloads": net_stats.overloads,
                "overdrive_peak_outstanding": overdrive.peak_outstanding,
            }
        )

    warm_pps = [e["warm_pulses_per_s"] for e in entries]
    warm_p99 = [e["warm_p99_ms"] for e in entries if e["warm_p99_ms"] is not None]
    summary = {
        "all_identity_ok": all(e["identity_ok"] for e in entries),
        "warm_pulses_per_s_min": min(warm_pps),
        "warm_pulses_per_s_max": max(warm_pps),
        "warm_pulses_per_s_gate": WARM_PULSES_PER_S_GATE,
        "warm_pulses_per_s_gate_ok": min(warm_pps) >= WARM_PULSES_PER_S_GATE,
        "warm_p99_ms_max": max(warm_p99) if warm_p99 else None,
        "warm_p99_gate_ms": WARM_P99_GATE_MS,
        "warm_p99_gate_ok": (
            bool(warm_p99) and max(warm_p99) <= WARM_P99_GATE_MS
        ),
        "overloads_total": sum(e["overdrive_overloads"] for e in entries),
        "overloads_observed": all(
            e["overdrive_overloads"] > 0 for e in entries
        ),
        "outstanding_bounded": all(
            e["overdrive_peak_outstanding"]
            <= e["overdrive"]["max_outstanding"]
            for e in entries
        ),
        "n_entries": len(entries),
    }
    return {
        "schema": NETWORK_BENCH_SCHEMA,
        "version": __version__,
        "created_unix": time.time(),
        "config": {
            "devices": list(device_specs),
            "n_requests": n_requests,
            "batch_size": batch_size,
            "connections": connections,
            "n_shards": n_shards,
            "repeats": repeats,
            "seed": seed,
            "window_size": window_size,
            "codec": codec,
            "overdrive_max_inflight": overdrive_max_inflight,
            "overdrive_rate": overdrive_rate,
            "overdrive_connections": overdrive_connections,
            "overdrive_max_outstanding": overdrive_max_outstanding,
        },
        "entries": entries,
        "summary": summary,
    }


def render_network_table(payload: Dict) -> str:
    """Render a network-bench payload as the repo's standard table."""
    rows = []
    for e in payload["entries"]:
        rows.append(
            [
                e["device"],
                e["n_pulses"],
                f"{e['warm_pulses_per_s']:.0f}",
                f"{e['warm_p50_ms']:.2f}" if e["warm_p50_ms"] else "-",
                f"{e['warm_p99_ms']:.2f}" if e["warm_p99_ms"] else "-",
                str(e["overdrive_overloads"]),
                f"{e['overdrive_peak_outstanding']}"
                f"/{e['overdrive']['max_outstanding']}",
                "ok" if e["identity_ok"] else "MISMATCH",
            ]
        )
    summary = payload["summary"]
    notes = [
        f"identity {'ok' if summary['all_identity_ok'] else 'FAILED'}",
        f"warm >= {summary['warm_pulses_per_s_min']:.0f} p/s "
        f"(gate {summary['warm_pulses_per_s_gate']:.0f}: "
        f"{'ok' if summary['warm_pulses_per_s_gate_ok'] else 'FAILED'})",
        f"overloads {'observed' if summary['overloads_observed'] else 'MISSING'}",
    ]
    return render_table(
        "Network serving: CQN1 front end over loopback TCP "
        f"(batch={payload['config']['batch_size']}, "
        f"conns={payload['config']['connections']})",
        [
            "device",
            "pulses",
            "warm p/s",
            "p50 ms",
            "p99 ms",
            "overloads",
            "peak/bound",
            "identity",
        ],
        rows,
        note=", ".join(notes),
    )


def write_network_json(
    payload: Dict, path: str = DEFAULT_NETWORK_OUTPUT
) -> pathlib.Path:
    """Write the payload to disk; returns the resolved path."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out.resolve()


def network_gates_ok(payload: Dict) -> Tuple[bool, List[str]]:
    """CI verdict: (ok, failure messages).

    Identity is the hard gate; the throughput/latency gates hold the
    committed baseline honest; the overload gates prove backpressure is
    explicit and bounded rather than an unbounded queue.
    """
    summary = payload["summary"]
    failures: List[str] = []
    if not summary["all_identity_ok"]:
        failures.append(
            "bytes served over the socket are not bit-identical to "
            "decompress_channel"
        )
    if not summary["warm_pulses_per_s_gate_ok"]:
        failures.append(
            f"warm closed-loop throughput "
            f"{summary['warm_pulses_per_s_min']:.0f} pulses/s is below the "
            f"{summary['warm_pulses_per_s_gate']:.0f} gate"
        )
    if not summary["warm_p99_gate_ok"]:
        failures.append(
            f"warm p99 latency {summary['warm_p99_ms_max']} ms exceeds the "
            f"{summary['warm_p99_gate_ms']} ms gate"
        )
    if not summary["overloads_observed"]:
        failures.append(
            "open-loop overdrive produced no STATUS_OVERLOAD replies -- "
            "backpressure is not observable"
        )
    if not summary["outstanding_bounded"]:
        failures.append(
            "load generator exceeded its outstanding-request bound -- "
            "queue growth is unbounded"
        )
    return (not failures, failures)
