"""Network benchmark: the ``CQN1`` serving tier measured at the socket.

The serving bench measures ``PulseServer.fetch_batch`` in-process; this
bench puts the asyncio front end (:mod:`repro.serve_net`) between the
caller and the server and measures what a controller on the other end
of a TCP connection actually experiences.  Per device it runs three
phases against a loopback ``NetPulseServer``:

* **identity** -- every key fetched over the wire in both modes:
  ``MODE_SAMPLES`` payloads must be byte-identical to the scalar
  ``decompress_channel`` reference, ``MODE_RECORD`` payloads must be
  byte-identical to ``ShardedStore.read_record_bytes``.  This is the
  hard gate: compression that corrupts a single bit on the wire is
  worthless.
* **warm closed loop** -- N connections replaying a Zipf trace against
  a warm cache as fast as request/response allows; reports sustained
  pulses/second and p50/p95/p99 latency.  Gated at
  ``WARM_PULSES_PER_S_GATE`` and ``WARM_P99_GATE_MS``.
* **open-loop overdrive** -- a second front end over the *same*
  ``PulseServer`` with a deliberately tiny ``max_inflight``, driven by
  a Poisson arrival schedule far past capacity.  The gate is that
  backpressure is *observable and bounded*: the server must shed with
  explicit ``STATUS_OVERLOAD`` replies (``overloads > 0``) and the
  generator's outstanding-request bound must hold
  (``peak_outstanding <= max_outstanding``) -- no unbounded queue on
  either side.

Schema v3 adds the **instrumentation** section (run once, on the first
device): an overhead leg comparing warm closed-loop throughput with the
telemetry layer fully enabled (metrics registries on, default trace
sampling on client and server) against the same stack with every
registry disabled and sampling off -- gated at
:data:`INSTRUMENTATION_OVERHEAD_GATE` -- and a trace-coverage check
asserting that one sampled cold fetch yields a merged client+server
trace whose stages cover the whole path (client, admission, fill, and
pool decode when workers are attached) with a well-formed breakdown
(:func:`repro.obs.stage_breakdown`).
"""

from __future__ import annotations

import json
import os
import pathlib
import queue
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple


from repro.analysis.report import render_table
from repro.compression.pipeline import decompress_waveform
from repro.core.compiler import CompaqtCompiler
from repro.errors import DeviceError
from repro.obs import (
    DEFAULT_TRACE_SAMPLE_RATE,
    MetricsRegistry,
    Tracer,
    default_registry,
    merge_trace_spans,
    set_default_registry,
    stage_breakdown,
)
from repro.perf.compression_bench import resolve_device
from repro.serve_net.client import PulseClient
from repro.serve_net.loadgen import run_closed_loop, run_open_loop
from repro.serve_net.server import serve_in_thread
from repro.serve_net.workers import DecodePool
from repro.store import PulseServer, save_store, synthetic_trace
from repro.store.atomic import atomic_write
from repro.version import __version__

__all__ = [
    "NETWORK_BENCH_SCHEMA",
    "DEFAULT_NETWORK_OUTPUT",
    "NETWORK_QUICK_DEVICE_SPECS",
    "NETWORK_FULL_DEVICE_SPECS",
    "WARM_PULSES_PER_S_GATE",
    "WARM_P99_GATE_MS",
    "INSTRUMENTATION_OVERHEAD_GATE",
    "TRACE_COVERAGE_STAGES",
    "SCALING_WORKER_COUNTS",
    "SCALING_EFFICIENCY_GATE",
    "SCALING_SPEEDUP_X4_GATE",
    "run_network_bench",
    "run_scaling_bench",
    "render_network_table",
    "render_scaling_table",
    "write_network_json",
    "network_gates_ok",
]

NETWORK_BENCH_SCHEMA = "compaqt-bench-network/v3"

DEFAULT_NETWORK_OUTPUT = "BENCH_network.json"

#: Quick (CI smoke) profile.
NETWORK_QUICK_DEVICE_SPECS = ("bogota", "guadalupe")

#: Full profile: the quick pair plus the larger synthetic processors.
NETWORK_FULL_DEVICE_SPECS = ("bogota", "guadalupe", "google-6x9", "fluxonium-5")

#: Warm closed-loop batched fetch over the loopback socket must sustain
#: at least this many pulses/second (ISSUE acceptance floor).
WARM_PULSES_PER_S_GATE = 10_000.0

#: ...and its p99 request latency must stay under this bound.  Loopback
#: warm-cache batches complete in well under a millisecond each; the
#: bound is deliberately loose so CI-runner jitter cannot flake it.
WARM_P99_GATE_MS = 250.0

#: Warm closed-loop throughput with the telemetry layer fully enabled
#: (metrics + default trace sampling) must stay within 5% of the same
#: stack with every registry disabled and sampling off.  Low-overhead
#: is a design requirement of the metrics layer, not a hope; this gate
#: keeps it honest on every bench run.
INSTRUMENTATION_OVERHEAD_GATE = 0.95

#: Stages one sampled cold fetch must cover end to end (``pool.decode``
#: is required only when decode workers are attached).
TRACE_COVERAGE_STAGES = (
    "client.fetch",
    "server.admission",
    "server.fill",
    "pool.decode",
)

#: Worker-count ladder for the ``--scaling`` measurement mode.
SCALING_WORKER_COUNTS = (1, 2, 4, 8)

#: Per-core parallel efficiency (``speedup / min(workers, cpu_count)``)
#: the pool must reach at its best worker count on every device.
#: Core-aware on purpose -- on a 1-core CI runner a 4-worker pool
#: cannot beat one process no matter how good the handoff is, and
#: pretending otherwise would force either a fake gate or a
#: handicapped baseline.
SCALING_EFFICIENCY_GATE = 0.5

#: Absolute cold-decode speedup required at 4 workers -- evaluated only
#: when the machine actually has >= 4 cores (recorded as skipped
#: otherwise, with ``cpu_count`` committed alongside so the provenance
#: of every number is explicit).
SCALING_SPEEDUP_X4_GATE = 2.5


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _identity_ok(
    address: Tuple[str, int],
    serving: PulseServer,
    reference: Dict[Tuple[str, Tuple[int, ...]], bytes],
) -> bool:
    """Every byte served over the wire must match the local references."""
    store = serving.store
    keys = store.keys()
    with PulseClient(address) as client:
        waveforms = client.fetch_batch(keys)
        records = client.fetch_records(keys)
    for key, waveform in zip(keys, waveforms):
        if waveform.samples.tobytes() != reference[key]:
            return False
        local = serving.fetch(*key)
        if waveform.name != local.name or waveform.dt != local.dt:
            return False
    for key, record in zip(keys, records):
        if record != store.read_record_bytes(*key):
            return False
    return True


def _warm_closed_loop_pps(
    store,
    keys,
    trace,
    batch_size: int,
    connections: int,
    repeats: int,
    enabled: bool,
) -> float:
    """Best-of-``repeats`` warm throughput with telemetry on or off.

    ``enabled=False`` is the honest baseline: every registry in the
    stack (server, net tier, and the process-wide default the store
    modules write to) is a no-op registry and trace sampling is zero.
    ``enabled=True`` is production defaults: live registries plus
    default-rate trace sampling on both the client and the server.
    """
    prior = default_registry()
    set_default_registry(MetricsRegistry(enabled=enabled))
    try:
        sample_rate = DEFAULT_TRACE_SAMPLE_RATE if enabled else 0.0
        client_tracer = Tracer(sample_rate=sample_rate) if enabled else None
        with PulseServer(
            store,
            cache_capacity=len(keys),
            metrics=MetricsRegistry(enabled=enabled),
        ) as serving:
            with serve_in_thread(
                serving,
                metrics=MetricsRegistry(enabled=enabled),
                trace_sample_rate=sample_rate,
            ) as handle:
                address = handle.address
                run_closed_loop(
                    address, trace, batch_size=batch_size,
                    connections=connections,
                )  # warming pass
                best = max(
                    (
                        run_closed_loop(
                            address,
                            trace,
                            batch_size=batch_size,
                            connections=connections,
                            tracer=client_tracer,
                        )
                        for _ in range(repeats)
                    ),
                    key=lambda report: report.pulses_per_s,
                )
        return best.pulses_per_s
    finally:
        set_default_registry(prior)


def _instrumentation_overhead(
    store, keys, trace, batch_size: int, connections: int, repeats: int
) -> Dict:
    """The overhead leg: telemetry-enabled vs telemetry-disabled warm runs.

    The two configurations are measured *interleaved* (off/on pairs on
    fresh servers) and each side keeps its best, so slow box-level
    drift -- CPU frequency, a background compile -- lands on both
    sides instead of masquerading as instrumentation cost.  The
    attempt count is floored at 3 regardless of ``--quick`` because a
    single noisy run must not gate.
    """
    attempts = max(repeats, 3)
    disabled = 0.0
    enabled = 0.0
    for _ in range(attempts):
        disabled = max(
            disabled,
            _warm_closed_loop_pps(
                store, keys, trace, batch_size, connections, 1, enabled=False
            ),
        )
        enabled = max(
            enabled,
            _warm_closed_loop_pps(
                store, keys, trace, batch_size, connections, 1, enabled=True
            ),
        )
    ratio = enabled / disabled if disabled > 0 else 0.0
    return {
        "disabled_pulses_per_s": disabled,
        "enabled_pulses_per_s": enabled,
        "overhead_ratio": ratio,
        "gate": INSTRUMENTATION_OVERHEAD_GATE,
        "gate_ok": ratio >= INSTRUMENTATION_OVERHEAD_GATE,
    }


def _trace_coverage(store, keys, workers: int = 1) -> Dict:
    """One sampled cold fetch must trace the whole path, well-formed.

    The client traces at rate 1.0 and propagates its ids over the wire;
    the server (also at 1.0) buffers its half.  The two halves are
    stitched and :func:`repro.obs.stage_breakdown` must find every
    required stage with nested, non-overlapping spans whose self times
    sum to at most the end-to-end duration.
    """
    client_tracer = Tracer(sample_rate=1.0)
    with PulseServer(
        store, cache_capacity=len(keys), workers=workers
    ) as serving:
        with serve_in_thread(serving, trace_sample_rate=1.0) as handle:
            with PulseClient(handle.address, tracer=client_tracer) as client:
                client.fetch(*keys[0])  # cold: the cache starts empty
                server_traces = client.traces(limit=8)
    client_trace = client_tracer.recent(limit=1)[0]
    server_trace = next(
        (
            trace_dict
            for trace_dict in server_traces
            if trace_dict["trace_id"] == client_trace["trace_id"]
        ),
        None,
    )
    spans = merge_trace_spans(client_trace, server_trace)
    breakdown = stage_breakdown(spans)
    required = [
        stage
        for stage in TRACE_COVERAGE_STAGES
        if workers > 0 or stage != "pool.decode"
    ]
    missing = [s for s in required if s not in breakdown["stages"]]
    problems = list(breakdown["problems"])
    if server_trace is None:
        problems.append("server half of the trace never reached the ring")
    if missing:
        problems.append(f"stages missing from the trace: {missing}")
    return {
        "trace_id": client_trace["trace_id"],
        "workers": workers,
        "required_stages": required,
        "stages": breakdown["stages"],
        "self_s": breakdown["self_s"],
        "end_to_end_s": breakdown["end_to_end_s"],
        "total_self_s": breakdown["total_self_s"],
        "problems": problems,
        "ok": not problems,
    }


def run_network_bench(
    device_specs: Sequence[str] = NETWORK_QUICK_DEVICE_SPECS,
    n_requests: int = 4096,
    batch_size: int = 64,
    connections: int = 4,
    n_shards: int = 4,
    repeats: int = 3,
    seed: int = 7,
    window_size: int = 16,
    codec: str = "int-DCT-W",
    overdrive_max_inflight: int = 2,
    overdrive_rate: float = 4000.0,
    overdrive_connections: int = 12,
    overdrive_max_outstanding: int = 64,
) -> Dict:
    """Run the network benchmark; returns the JSON-serializable payload.

    One entry per device.  The warm closed loop is best-of-``repeats``
    replays after a warming pass; the overdrive phase reuses the same
    warmed :class:`PulseServer` behind a second front end whose
    ``max_inflight`` is deliberately far below the offered load.
    """
    if not device_specs:
        raise DeviceError("network bench needs at least one device spec")
    if n_requests < 1 or batch_size < 1 or connections < 1 or repeats < 1:
        raise DeviceError(
            "n_requests, batch_size, connections and repeats must be >= 1"
        )

    entries: List[Dict] = []
    instrumentation: Optional[Dict] = None
    for spec in device_specs:
        device = resolve_device(spec)
        compiled = CompaqtCompiler(
            window_size=window_size, codec=codec
        ).compile_library(device.pulse_library())
        with tempfile.TemporaryDirectory(prefix="cqn1-bench-") as tmp:
            store = save_store(
                compiled, pathlib.Path(tmp) / f"{device.name}.cqs", n_shards
            )
            keys = store.keys()
            reference = {
                key: decompress_waveform(
                    compiled.result(*key).compressed
                ).samples.tobytes()
                for key in keys
            }
            trace = synthetic_trace(keys, n_requests, seed)

            with PulseServer(store, cache_capacity=len(keys)) as serving:
                with serve_in_thread(serving) as handle:
                    address = handle.address
                    identity = _identity_ok(address, serving, reference)
                    # Warming pass, then best-of-N timed replays.
                    run_closed_loop(
                        address, trace, batch_size=batch_size,
                        connections=connections,
                    )
                    warm = max(
                        (
                            run_closed_loop(
                                address,
                                trace,
                                batch_size=batch_size,
                                connections=connections,
                            )
                            for _ in range(repeats)
                        ),
                        key=lambda report: report.pulses_per_s,
                    )

                # Overdrive: tiny admission bound, Poisson arrivals far
                # past capacity, same warmed PulseServer behind it.
                with serve_in_thread(
                    serving, max_inflight=overdrive_max_inflight
                ) as overdrive_handle:
                    overdrive = run_open_loop(
                        overdrive_handle.address,
                        trace,
                        rate=overdrive_rate,
                        batch_size=max(1, batch_size // 16),
                        connections=overdrive_connections,
                        max_outstanding=overdrive_max_outstanding,
                        seed=seed,
                    )
                    net_stats = overdrive_handle.stats()

            # The instrumentation section runs once, on the first
            # device: the overhead gate and the trace-coverage check
            # are properties of the telemetry layer, not per-device.
            if instrumentation is None:
                instrumentation = _instrumentation_overhead(
                    store, keys, trace, batch_size, connections, repeats
                )
                instrumentation["trace_coverage"] = _trace_coverage(
                    store, keys, workers=1
                )
            store.close()

        warm_latency = warm.latency_ms
        entries.append(
            {
                "device": device.name,
                "spec": spec,
                "codec": codec,
                "window_size": window_size,
                "n_pulses": len(keys),
                "n_requests": len(trace),
                "identity_ok": bool(identity),
                "warm": warm.as_dict(),
                "warm_pulses_per_s": warm.pulses_per_s,
                "warm_p50_ms": warm_latency["p50"],
                "warm_p99_ms": warm_latency["p99"],
                "overdrive": overdrive.as_dict(),
                "overdrive_overloads": overdrive.overloads,
                "overdrive_server_overloads": net_stats.overloads,
                "overdrive_peak_outstanding": overdrive.peak_outstanding,
            }
        )

    warm_pps = [e["warm_pulses_per_s"] for e in entries]
    warm_p99 = [e["warm_p99_ms"] for e in entries if e["warm_p99_ms"] is not None]
    summary = {
        "all_identity_ok": all(e["identity_ok"] for e in entries),
        "warm_pulses_per_s_min": min(warm_pps),
        "warm_pulses_per_s_max": max(warm_pps),
        "warm_pulses_per_s_gate": WARM_PULSES_PER_S_GATE,
        "warm_pulses_per_s_gate_ok": min(warm_pps) >= WARM_PULSES_PER_S_GATE,
        "warm_p99_ms_max": max(warm_p99) if warm_p99 else None,
        "warm_p99_gate_ms": WARM_P99_GATE_MS,
        "warm_p99_gate_ok": (
            bool(warm_p99) and max(warm_p99) <= WARM_P99_GATE_MS
        ),
        "overloads_total": sum(e["overdrive_overloads"] for e in entries),
        "overloads_observed": all(
            e["overdrive_overloads"] > 0 for e in entries
        ),
        "outstanding_bounded": all(
            e["overdrive_peak_outstanding"]
            <= e["overdrive"]["max_outstanding"]
            for e in entries
        ),
        "instrumentation_overhead_ratio": (
            instrumentation["overhead_ratio"] if instrumentation else None
        ),
        "instrumentation_overhead_gate": INSTRUMENTATION_OVERHEAD_GATE,
        "instrumentation_overhead_gate_ok": (
            bool(instrumentation and instrumentation["gate_ok"])
        ),
        "trace_coverage_ok": bool(
            instrumentation and instrumentation["trace_coverage"]["ok"]
        ),
        "n_entries": len(entries),
    }
    return {
        "schema": NETWORK_BENCH_SCHEMA,
        "version": __version__,
        "created_unix": time.time(),
        "config": {
            "devices": list(device_specs),
            "n_requests": n_requests,
            "batch_size": batch_size,
            "connections": connections,
            "n_shards": n_shards,
            "repeats": repeats,
            "seed": seed,
            "window_size": window_size,
            "codec": codec,
            "overdrive_max_inflight": overdrive_max_inflight,
            "overdrive_rate": overdrive_rate,
            "overdrive_connections": overdrive_connections,
            "overdrive_max_outstanding": overdrive_max_outstanding,
        },
        "entries": entries,
        "instrumentation": instrumentation,
        "summary": summary,
    }


def _timed_drive(batches, count: int, decode_fn) -> Tuple[int, float]:
    """Drain ``batches`` from ``count`` submission threads; time the drain.

    Returns ``(pulses_decoded, elapsed_s)``.  The clock starts at a
    barrier all threads wait on, so thread start-up cost is not billed
    to the decode path; the first worker exception (if any) propagates
    after the drain settles.
    """
    work: "queue.SimpleQueue" = queue.SimpleQueue()
    for batch in batches:
        work.put(batch)
    for _ in range(count):
        work.put(None)
    pulses = [0] * count
    errors: List[BaseException] = []
    barrier = threading.Barrier(count + 1)

    def run(index: int) -> None:
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            return
        while True:
            batch = work.get()
            if batch is None:
                return
            try:
                decode_fn(batch)
            except BaseException as exc:
                errors.append(exc)
                return
            pulses[index] += len(batch)

    threads = [
        threading.Thread(target=run, args=(i,), name=f"scaling-drive-{i}")
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return sum(pulses), elapsed


def _best_drive(repeats: int, batches, count: int, decode_fn) -> Tuple[int, float]:
    """Best-of-``repeats`` :func:`_timed_drive`; one noisy run can't gate."""
    results = [_timed_drive(batches, count, decode_fn) for _ in range(repeats)]
    return max(
        results, key=lambda r: r[0] / r[1] if r[1] > 0 else 0.0
    )


def run_scaling_bench(
    device_specs: Sequence[str] = NETWORK_QUICK_DEVICE_SPECS,
    worker_counts: Sequence[int] = SCALING_WORKER_COUNTS,
    batch_size: int = 64,
    rounds: int = 8,
    n_shards: int = 4,
    seed: int = 7,
    window_size: int = 16,
    codec: str = "int-DCT-W",
    start_method: Optional[str] = None,
    shm_limit: Optional[int] = None,
    repeats: int = 2,
) -> Dict:
    """Pin the single-process decode ceiling against the worker pool.

    Per device, every ``(mode, count)`` leg drains the whole catalog
    ``rounds`` times in ``batch_size`` chunks from ``count`` submission
    threads (``rounds`` is raised for small catalogs so every leg times
    at least ~256 pulses, and each timing is the best of ``repeats``
    drains -- a single noisy run must not decide a gate):

    * ``threads`` legs decode in-process (``store.decode_many``) --
      the GIL ceiling the pool exists to break; ``threads`` at count 1
      is the baseline every speedup is measured against.
    * ``pool`` legs decode through a :class:`DecodePool` with
      ``count`` worker processes, plus an untimed full-catalog
      bit-identity pass against the scalar oracle.

    Warm legs replay the same batches against a prewarmed
    :class:`PulseServer` (with and without the pool attached), proving
    the pool never taxes the cache-hit path.  The summary's gates are
    core-aware -- see :data:`SCALING_EFFICIENCY_GATE` /
    :data:`SCALING_SPEEDUP_X4_GATE`.
    """
    if not device_specs:
        raise DeviceError("scaling bench needs at least one device spec")
    counts = sorted(dict.fromkeys(int(c) for c in worker_counts))
    if not counts or counts[0] < 1:
        raise DeviceError(f"worker counts must be >= 1, got {worker_counts}")
    if batch_size < 1 or rounds < 1 or repeats < 1:
        raise DeviceError("batch_size, rounds and repeats must be >= 1")
    import multiprocessing

    cpus = _cpu_count()
    resolved_method = multiprocessing.get_context(start_method).get_start_method()
    entries: List[Dict] = []
    for spec in device_specs:
        device = resolve_device(spec)
        compiled = CompaqtCompiler(
            window_size=window_size, codec=codec
        ).compile_library(device.pulse_library())
        with tempfile.TemporaryDirectory(prefix="cqn1-scaling-") as tmp:
            store = save_store(
                compiled, pathlib.Path(tmp) / f"{device.name}.cqs", n_shards
            )
            keys = store.keys()
            reference = {
                key: decompress_waveform(
                    compiled.result(*key).compressed
                ).samples.tobytes()
                for key in keys
            }
            # Small catalogs get extra rounds: 23 pulses x 4 rounds is
            # tens of milliseconds of work, far too little to gate on.
            device_rounds = max(rounds, -(-256 // len(keys)))
            batches = [
                keys[i : i + batch_size]
                for i in range(0, len(keys), batch_size)
            ] * device_rounds

            legs: List[Dict] = []
            for mode in ("threads", "pool"):
                for count in counts:
                    identity: Optional[bool] = None
                    pool_stats: Optional[Dict] = None
                    if mode == "threads":
                        cold_pulses, cold_s = _best_drive(
                            repeats, batches, count, store.decode_many
                        )
                    else:
                        with DecodePool(
                            store.handle(),
                            workers=count,
                            **(
                                {}
                                if shm_limit is None
                                else {"shm_limit": shm_limit}
                            ),
                            start_method=start_method,
                        ) as pool:
                            cold_pulses, cold_s = _best_drive(
                                repeats, batches, count, pool.decode
                            )
                            # Untimed: every pool-served waveform must
                            # match the scalar oracle bit for bit.
                            served = pool.decode(keys)
                            identity = all(
                                waveform.samples.tobytes() == reference[key]
                                for key, waveform in zip(keys, served)
                            )
                            pool_stats = pool.stats().as_dict()
                    with PulseServer(
                        store,
                        cache_capacity=len(keys),
                        workers=0 if mode == "threads" else count,
                        start_method=start_method,
                        **(
                            {}
                            if shm_limit is None
                            else {"shm_limit": shm_limit}
                        ),
                    ) as serving:
                        serving.fetch_batch(keys)  # prewarm: all hits now
                        warm_pulses, warm_s = _best_drive(
                            repeats, batches, count, serving.fetch_batch
                        )
                    legs.append(
                        {
                            "mode": mode,
                            "count": count,
                            "cold_pulses": cold_pulses,
                            "cold_s": cold_s,
                            "cold_pulses_per_s": (
                                cold_pulses / cold_s if cold_s > 0 else 0.0
                            ),
                            "warm_pulses_per_s": (
                                warm_pulses / warm_s if warm_s > 0 else 0.0
                            ),
                            "identity_ok": identity,
                            "pool": pool_stats,
                        }
                    )
            store.close()

        baseline = next(
            leg["cold_pulses_per_s"]
            for leg in legs
            if leg["mode"] == "threads" and leg["count"] == 1
        )
        speedup = {
            str(leg["count"]): (
                leg["cold_pulses_per_s"] / baseline if baseline > 0 else 0.0
            )
            for leg in legs
            if leg["mode"] == "pool"
        }
        efficiency = {
            count: ratio / min(int(count), cpus)
            for count, ratio in speedup.items()
        }
        entries.append(
            {
                "device": device.name,
                "spec": spec,
                "n_pulses": len(keys),
                "rounds": device_rounds,
                "legs": legs,
                "baseline_cold_pulses_per_s": baseline,
                "pool_speedup": speedup,
                "pool_efficiency": efficiency,
            }
        )

    # Per device, the pool is judged at its best worker count (on a
    # multi-core box that is normally the widest one; on a starved
    # runner the best count dodges contention noise) and the gate takes
    # the worst device.
    efficiencies = [max(e["pool_efficiency"].values()) for e in entries]
    identity_legs = [
        leg["identity_ok"]
        for e in entries
        for leg in e["legs"]
        if leg["mode"] == "pool"
    ]
    x4_applicable = 4 in counts and cpus >= 4
    x4_best = (
        max(e["pool_speedup"]["4"] for e in entries) if 4 in counts else None
    )
    summary = {
        "cpu_count": cpus,
        "all_identity_ok": all(identity_legs),
        "efficiency_gate": SCALING_EFFICIENCY_GATE,
        "efficiency_best_min": min(efficiencies),
        "efficiency_gate_ok": min(efficiencies) >= SCALING_EFFICIENCY_GATE,
        "speedup_x4_gate": SCALING_SPEEDUP_X4_GATE,
        "speedup_x4_best": x4_best,
        # None (not False) when the runner lacks the cores to make the
        # absolute gate meaningful; cpu_count above says why.
        "speedup_x4_gate_ok": (
            x4_best >= SCALING_SPEEDUP_X4_GATE if x4_applicable else None
        ),
        "n_entries": len(entries),
    }
    return {
        "cpu_count": cpus,
        "start_method": resolved_method,
        "worker_counts": counts,
        "batch_size": batch_size,
        "rounds": rounds,
        "seed": seed,
        "window_size": window_size,
        "codec": codec,
        "n_shards": n_shards,
        "repeats": repeats,
        "entries": entries,
        "summary": summary,
    }


def render_scaling_table(scaling: Dict) -> str:
    """Render a scaling section as the repo's standard table."""
    rows = []
    for entry in scaling["entries"]:
        for leg in entry["legs"]:
            identity = leg["identity_ok"]
            rows.append(
                [
                    entry["device"],
                    leg["mode"],
                    leg["count"],
                    f"{leg['cold_pulses_per_s']:.0f}",
                    f"{leg['warm_pulses_per_s']:.0f}",
                    (
                        f"{entry['pool_speedup'][str(leg['count'])]:.2f}x"
                        if leg["mode"] == "pool"
                        else "-"
                    ),
                    "-" if identity is None else ("ok" if identity else "MISMATCH"),
                ]
            )
    summary = scaling["summary"]
    x4 = summary["speedup_x4_gate_ok"]
    notes = [
        f"{summary['cpu_count']} cpu(s)",
        f"identity {'ok' if summary['all_identity_ok'] else 'FAILED'}",
        f"best per-core efficiency >= "
        f"{summary['efficiency_best_min']:.2f} "
        f"(gate {summary['efficiency_gate']:.2f}: "
        f"{'ok' if summary['efficiency_gate_ok'] else 'FAILED'})",
        (
            f"4-worker speedup {summary['speedup_x4_best']:.2f}x "
            f"(gate {summary['speedup_x4_gate']:.1f}x: "
            + ("ok" if x4 else "FAILED")
            + ")"
            if x4 is not None
            else "4-worker absolute gate skipped (cpu_count < 4)"
        ),
    ]
    return render_table(
        "Decode scaling: threads vs process pool "
        f"(batch={scaling['batch_size']}, rounds={scaling['rounds']}, "
        f"start={scaling['start_method']})",
        ["device", "mode", "n", "cold p/s", "warm p/s", "speedup", "identity"],
        rows,
        note=", ".join(notes),
    )


def render_network_table(payload: Dict) -> str:
    """Render a network-bench payload as the repo's standard table."""
    rows = []
    for e in payload["entries"]:
        rows.append(
            [
                e["device"],
                e["n_pulses"],
                f"{e['warm_pulses_per_s']:.0f}",
                f"{e['warm_p50_ms']:.2f}" if e["warm_p50_ms"] else "-",
                f"{e['warm_p99_ms']:.2f}" if e["warm_p99_ms"] else "-",
                str(e["overdrive_overloads"]),
                f"{e['overdrive_peak_outstanding']}"
                f"/{e['overdrive']['max_outstanding']}",
                "ok" if e["identity_ok"] else "MISMATCH",
            ]
        )
    summary = payload["summary"]
    notes = [
        f"identity {'ok' if summary['all_identity_ok'] else 'FAILED'}",
        f"warm >= {summary['warm_pulses_per_s_min']:.0f} p/s "
        f"(gate {summary['warm_pulses_per_s_gate']:.0f}: "
        f"{'ok' if summary['warm_pulses_per_s_gate_ok'] else 'FAILED'})",
        f"overloads {'observed' if summary['overloads_observed'] else 'MISSING'}",
    ]
    ratio = summary.get("instrumentation_overhead_ratio")
    if ratio is not None:
        notes.append(
            f"telemetry overhead {ratio:.3f}x "
            f"(gate {summary['instrumentation_overhead_gate']:.2f}x: "
            f"{'ok' if summary['instrumentation_overhead_gate_ok'] else 'FAILED'}), "
            f"trace coverage "
            f"{'ok' if summary['trace_coverage_ok'] else 'FAILED'}"
        )
    return render_table(
        "Network serving: CQN1 front end over loopback TCP "
        f"(batch={payload['config']['batch_size']}, "
        f"conns={payload['config']['connections']})",
        [
            "device",
            "pulses",
            "warm p/s",
            "p50 ms",
            "p99 ms",
            "overloads",
            "peak/bound",
            "identity",
        ],
        rows,
        note=", ".join(notes),
    )


def write_network_json(
    payload: Dict, path: str = DEFAULT_NETWORK_OUTPUT
) -> pathlib.Path:
    """Write the payload to disk (atomically); returns the resolved path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write(out, json.dumps(payload, indent=2) + "\n")
    return out.resolve()


def network_gates_ok(payload: Dict) -> Tuple[bool, List[str]]:
    """CI verdict: (ok, failure messages).

    Identity is the hard gate; the throughput/latency gates hold the
    committed baseline honest; the overload gates prove backpressure is
    explicit and bounded rather than an unbounded queue.
    """
    summary = payload["summary"]
    failures: List[str] = []
    if not summary["all_identity_ok"]:
        failures.append(
            "bytes served over the socket are not bit-identical to "
            "decompress_channel"
        )
    if not summary["warm_pulses_per_s_gate_ok"]:
        failures.append(
            f"warm closed-loop throughput "
            f"{summary['warm_pulses_per_s_min']:.0f} pulses/s is below the "
            f"{summary['warm_pulses_per_s_gate']:.0f} gate"
        )
    if not summary["warm_p99_gate_ok"]:
        failures.append(
            f"warm p99 latency {summary['warm_p99_ms_max']} ms exceeds the "
            f"{summary['warm_p99_gate_ms']} ms gate"
        )
    if not summary["overloads_observed"]:
        failures.append(
            "open-loop overdrive produced no STATUS_OVERLOAD replies -- "
            "backpressure is not observable"
        )
    if not summary["outstanding_bounded"]:
        failures.append(
            "load generator exceeded its outstanding-request bound -- "
            "queue growth is unbounded"
        )
    if not summary.get("instrumentation_overhead_gate_ok", True):
        failures.append(
            f"telemetry-enabled warm throughput is "
            f"{summary['instrumentation_overhead_ratio']:.3f}x the disabled "
            f"baseline, below the "
            f"{summary['instrumentation_overhead_gate']:.2f}x gate"
        )
    if not summary.get("trace_coverage_ok", True):
        problems = (payload.get("instrumentation") or {}).get(
            "trace_coverage", {}
        ).get("problems", [])
        failures.append(
            "a sampled cold fetch did not produce a well-formed "
            f"end-to-end trace: {'; '.join(problems) or 'unknown'}"
        )
    scaling = payload.get("scaling")
    if scaling is not None:
        s = scaling["summary"]
        if not s["all_identity_ok"]:
            failures.append(
                "a pool-served waveform diverged from the scalar oracle"
            )
        if not s["efficiency_gate_ok"]:
            failures.append(
                f"pool per-core efficiency {s['efficiency_best_min']:.2f} "
                f"(worst device, best worker count) is below the "
                f"{s['efficiency_gate']:.2f} gate ({s['cpu_count']} cpu(s))"
            )
        if s["speedup_x4_gate_ok"] is False:
            failures.append(
                f"4-worker cold speedup {s['speedup_x4_best']:.2f}x is below "
                f"the {s['speedup_x4_gate']:.1f}x gate"
            )
    return (not failures, failures)
