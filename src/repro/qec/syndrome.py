"""Syndrome-extraction circuits and their concurrency (Fig 17a).

One QEC cycle: Hadamard all X-ancillas, four interaction rounds (each
stabilizer touches one of its data qubits per round, all stabilizers in
parallel), Hadamard again, measure every ancilla.  Surface-code cycles
drive >80% of the patch concurrently, which is why QEC workloads pin
waveform-memory bandwidth at its peak (Section III-A).
"""

from __future__ import annotations


from repro.circuits.circuit import Circuit
from repro.circuits.schedule import GateDurations, Schedule, schedule_circuit
from repro.circuits.transpile import transpile
from repro.devices.topology import CouplingMap
from repro.qec.surface_code import SurfaceCodePatch

__all__ = [
    "syndrome_circuit",
    "syndrome_schedule",
    "patch_coupling_map",
    "peak_concurrent_fraction",
]

_N_ROUNDS = 4


def syndrome_circuit(patch: SurfaceCodePatch) -> Circuit:
    """One full syndrome-extraction cycle as a logical circuit.

    X-type stabilizers use ancilla-as-control CNOTs bracketed by
    Hadamards; Z-type use data-as-control CNOTs.
    """
    circuit = Circuit(patch.n_qubits, name=f"{patch.name}-cycle")
    for stab in patch.x_stabilizers:
        circuit.h(stab.ancilla)
    for round_index in range(_N_ROUNDS):
        for stab in patch.stabilizers:
            data = stab.data[round_index]
            if data is None:
                continue
            if stab.kind == "X":
                circuit.cx(stab.ancilla, data)
            else:
                circuit.cx(data, stab.ancilla)
    for stab in patch.x_stabilizers:
        circuit.h(stab.ancilla)
    circuit.measure([stab.ancilla for stab in patch.stabilizers])
    return circuit


def patch_coupling_map(patch: SurfaceCodePatch) -> CouplingMap:
    """The ancilla-data lattice as a coupling map (no routing needed)."""
    return CouplingMap(n_qubits=patch.n_qubits, edges=tuple(patch.couplings()))


def syndrome_schedule(patch: SurfaceCodePatch) -> Schedule:
    """Transpile + ASAP-schedule one cycle with IBM-like durations."""
    circuit = transpile(syndrome_circuit(patch), patch_coupling_map(patch))
    return schedule_circuit(circuit, GateDurations())


def peak_concurrent_fraction(patch: SurfaceCodePatch) -> float:
    """Fraction of the patch's qubits driven at the busiest instant.

    The paper reports >80% for d=3 patches.
    """
    schedule = syndrome_schedule(patch)
    return schedule.peak_concurrent_streams / patch.n_qubits
