"""Surface-code substrate: patches and syndrome-extraction circuits."""

from repro.qec.surface_code import (
    Stabilizer,
    SurfaceCodePatch,
    rotated_surface_code,
    unrotated_surface_code,
)
from repro.qec.syndrome import (
    syndrome_circuit,
    syndrome_schedule,
    patch_coupling_map,
    peak_concurrent_fraction,
)

__all__ = [
    "Stabilizer",
    "SurfaceCodePatch",
    "rotated_surface_code",
    "unrotated_surface_code",
    "syndrome_circuit",
    "syndrome_schedule",
    "patch_coupling_map",
    "peak_concurrent_fraction",
]
