"""Surface-code patches (paper Section VII-C, Figs 5c and 17).

Two layouts, matching the paper's benchmarks:

- **rotated** distance-d patch: ``d^2`` data + ``d^2 - 1`` ancilla
  qubits (d=3 -> the 17-qubit "surface-17");
- **unrotated (planar)** distance-d patch on a ``(2d-1) x (2d-1)``
  grid: d=3 -> 25 qubits ("surface-25"), d=5 -> 81 ("surface-81").

Each patch knows its stabilizers (type, ancilla, ordered data
neighbors), from which :mod:`repro.qec.syndrome` builds the
syndrome-extraction circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["Stabilizer", "SurfaceCodePatch", "rotated_surface_code", "unrotated_surface_code"]

Coord = Tuple[float, float]


@dataclass(frozen=True)
class Stabilizer:
    """One weight-2/4 check: an ancilla and its data-qubit supports.

    ``data`` is ordered by interaction round (N, W, E, S order for
    Z-type; N, E, W, S for X-type -- the standard schedule that avoids
    hook errors); ``None`` entries mean the plaquette has no neighbor
    in that round (boundary checks).
    """

    kind: str  # "X" or "Z"
    ancilla: int
    data: Tuple[Optional[int], ...]

    @property
    def weight(self) -> int:
        return sum(1 for d in self.data if d is not None)


@dataclass(frozen=True)
class SurfaceCodePatch:
    """A laid-out surface-code patch."""

    name: str
    distance: int
    layout: str  # "rotated" or "unrotated"
    data_qubits: Tuple[int, ...]
    stabilizers: Tuple[Stabilizer, ...]
    coords: Dict[int, Coord]

    @property
    def n_data(self) -> int:
        return len(self.data_qubits)

    @property
    def n_ancilla(self) -> int:
        return len(self.stabilizers)

    @property
    def n_qubits(self) -> int:
        return self.n_data + self.n_ancilla

    @property
    def x_stabilizers(self) -> List[Stabilizer]:
        return [s for s in self.stabilizers if s.kind == "X"]

    @property
    def z_stabilizers(self) -> List[Stabilizer]:
        return [s for s in self.stabilizers if s.kind == "Z"]

    def couplings(self) -> List[Tuple[int, int]]:
        """Ancilla-data couplings (the lattice the controller drives)."""
        edges = set()
        for stab in self.stabilizers:
            for d in stab.data:
                if d is not None:
                    edges.add(tuple(sorted((stab.ancilla, d))))
        return sorted(edges)


def rotated_surface_code(distance: int = 3) -> SurfaceCodePatch:
    """Rotated patch: d^2 data + (d^2 - 1) ancillas (17 qubits at d=3)."""
    _check_distance(distance)
    d = distance
    data_index: Dict[Coord, int] = {}
    coords: Dict[int, Coord] = {}
    next_id = 0
    for r in range(d):
        for c in range(d):
            data_index[(r, c)] = next_id
            coords[next_id] = (float(r), float(c))
            next_id += 1
    stabilizers: List[Stabilizer] = []
    for r in range(-1, d):
        for c in range(-1, d):
            corners = [(r, c), (r, c + 1), (r + 1, c), (r + 1, c + 1)]
            present = [data_index.get(p) for p in corners if p in data_index]
            if len(present) < 2:
                continue
            kind = "X" if (r + c) % 2 == 0 else "Z"
            if len(present) == 2:
                # Boundary half-plaquettes: X on top/bottom, Z on sides.
                on_top_bottom = r == -1 or r == d - 1
                if on_top_bottom and kind != "X":
                    continue
                if not on_top_bottom and kind != "Z":
                    continue
            # Interaction order over the four corner slots (NW, NE, SW,
            # SE): X uses N,E,W,S-ish zigzag, Z the transpose -- here we
            # keep slot order and let absent corners be None.
            slots = [data_index.get(p) for p in corners]
            if kind == "Z":
                slots = [slots[0], slots[2], slots[1], slots[3]]
            ancilla = next_id
            coords[ancilla] = (r + 0.5, c + 0.5)
            next_id += 1
            stabilizers.append(Stabilizer(kind, ancilla, tuple(slots)))
    patch = SurfaceCodePatch(
        name=f"surface-{d * d + d * d - 1}",
        distance=d,
        layout="rotated",
        data_qubits=tuple(range(d * d)),
        stabilizers=tuple(stabilizers),
        coords=coords,
    )
    _check_counts(patch, d * d, d * d - 1)
    return patch


def unrotated_surface_code(distance: int = 3) -> SurfaceCodePatch:
    """Planar patch on a (2d-1)x(2d-1) grid (25 at d=3, 81 at d=5)."""
    _check_distance(distance)
    size = 2 * distance - 1
    index: Dict[Coord, int] = {}
    coords: Dict[int, Coord] = {}
    next_id = 0
    for r in range(size):
        for c in range(size):
            index[(r, c)] = next_id
            coords[next_id] = (float(r), float(c))
            next_id += 1
    data = [index[(r, c)] for r in range(size) for c in range(size) if (r + c) % 2 == 0]
    stabilizers: List[Stabilizer] = []
    for r in range(size):
        for c in range(size):
            if (r + c) % 2 == 0:
                continue
            # Ancilla site: X-type on even rows, Z-type on odd rows.
            kind = "X" if r % 2 == 0 else "Z"
            neighbors = [
                index.get((r - 1, c)),  # N
                index.get((r, c - 1)),  # W
                index.get((r, c + 1)),  # E
                index.get((r + 1, c)),  # S
            ]
            if kind == "X":
                neighbors = [neighbors[0], neighbors[2], neighbors[1], neighbors[3]]
            stabilizers.append(
                Stabilizer(kind, index[(r, c)], tuple(neighbors))
            )
    patch = SurfaceCodePatch(
        name=f"surface-{size * size}",
        distance=distance,
        layout="unrotated",
        data_qubits=tuple(data),
        stabilizers=tuple(stabilizers),
        coords=coords,
    )
    expected_data = distance**2 + (distance - 1) ** 2
    _check_counts(patch, expected_data, size * size - expected_data)
    return patch


def _check_distance(distance: int) -> None:
    if distance < 2:
        raise ReproError(f"code distance must be >= 2, got {distance}")


def _check_counts(patch: SurfaceCodePatch, data: int, ancilla: int) -> None:
    if patch.n_data != data or patch.n_ancilla != ancilla:
        raise ReproError(
            f"{patch.name}: built {patch.n_data} data / {patch.n_ancilla} "
            f"ancillas, expected {data} / {ancilla}"
        )
