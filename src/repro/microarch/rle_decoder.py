"""Cycle-level RLE decoder (stage 1 of Fig 10's pipeline).

Consumes the tagged words of one compressed window and emits the full
coefficient vector: coefficients pass through, the zero-run codeword
expands to zeros, and uniform-width padding after the codeword is
checked and dropped.  Latency is one fabric cycle per window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import CompressionError
from repro.transforms.rle import TAG_COEFF, TAG_REPEAT, TAG_ZERO_RUN, MemoryWord

__all__ = ["RleDecoder"]


@dataclass
class RleDecoder:
    """Stateless per-window decoder with access accounting.

    Attributes:
        window_size: Coefficients per decoded window.
        windows_decoded: Cycle counter (one window per cycle).
        zeros_expanded: Total zeros materialized from codewords -- the
            "free" bandwidth COMPAQT mines.
    """

    window_size: int
    windows_decoded: int = 0
    zeros_expanded: int = 0

    def decode(self, words: Sequence[MemoryWord]) -> np.ndarray:
        """Decode one window's words into ``window_size`` coefficients.

        The counters update only when the whole window decodes cleanly,
        so ``zeros_expanded`` stays exactly the sum of the consumed
        windows' zero runs (and ``windows_decoded`` their count) even if
        a malformed stream was rejected along the way -- the tests hold
        both against analytically computed values.

        Raises:
            CompressionError: On malformed streams -- payload after the
                codeword, repeat words (those bypass this stage), a run
                overflowing the window, or a length mismatch.
        """
        coeffs: List[int] = []
        zeros = 0
        run_seen = False
        for word in words:
            if run_seen:
                # Uniform-width padding; must be inert.
                if word.tag != TAG_COEFF or word.value != 0:
                    raise CompressionError(
                        f"payload word {word} after zero-run codeword"
                    )
                continue
            if word.tag == TAG_COEFF:
                coeffs.append(word.value)
                if len(coeffs) == self.window_size:
                    run_seen = True  # remaining words are padding
            elif word.tag == TAG_ZERO_RUN:
                if word.value < 1:
                    raise CompressionError(f"empty zero run in {word}")
                if len(coeffs) + word.value > self.window_size:
                    raise CompressionError(
                        f"zero run of {word.value} overflows the window: "
                        f"{len(coeffs)} coefficients already decoded of "
                        f"{self.window_size}"
                    )
                zeros = word.value
                coeffs.extend([0] * word.value)
                run_seen = True
            elif word.tag == TAG_REPEAT:
                raise CompressionError(
                    "repeat codewords bypass the RLE/IDCT pipeline "
                    "(adaptive decompression, Fig 13)"
                )
            else:
                raise CompressionError(f"unknown word tag {word.tag}")
        if len(coeffs) != self.window_size:
            raise CompressionError(
                f"window decoded to {len(coeffs)} coefficients, "
                f"expected {self.window_size}"
            )
        self.windows_decoded += 1
        self.zeros_expanded += zeros
        return np.asarray(coeffs, dtype=np.int64)
