"""Frequency-division multiplexing of qubit streams (Section III-B).

QICK-style controllers can drive 100+ qubits per board by mixing
several qubits' waveforms onto one high-bandwidth DAC at different
intermediate frequencies.  The paper's point: FDM does not relieve the
waveform memory -- "the waveforms for all the multiplexed qubits must
be stored and then individually generated, which means that the
waveform memory must have sufficient capacity and bandwidth for all
qubits".  COMPAQT multiplies exactly that per-DAC memory bandwidth.

This module models the digital upconversion chain: per-qubit complex
envelopes are mixed to their carriers and summed, with amplitude
headroom shared across channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.pulses.waveform import Waveform

__all__ = ["FdmPlan", "max_fdm_channels", "plan_fdm", "FdmMixer"]


def max_fdm_channels(
    dac_rate_hz: float,
    channel_bandwidth_hz: float = 300e6,
    guard_band_hz: float = 100e6,
) -> int:
    """Qubit channels that fit in one DAC's first Nyquist zone.

    Each qubit needs its pulse bandwidth plus a guard band to bound
    inter-channel crosstalk.
    """
    if dac_rate_hz <= 0 or channel_bandwidth_hz <= 0:
        raise ReproError("rates must be positive")
    usable = dac_rate_hz / 2
    per_channel = channel_bandwidth_hz + guard_band_hz
    return max(0, int(usable // per_channel))


@dataclass(frozen=True)
class FdmPlan:
    """Carrier assignment for a group of multiplexed qubits."""

    dac_rate_hz: float
    carriers_hz: Tuple[float, ...]
    qubits: Tuple[int, ...]

    @property
    def n_channels(self) -> int:
        return len(self.qubits)

    @property
    def amplitude_headroom(self) -> float:
        """Per-channel amplitude scale so the sum never clips."""
        return 1.0 / max(1, self.n_channels)


def plan_fdm(
    qubits: Sequence[int],
    dac_rate_hz: float = 6.0e9,
    channel_bandwidth_hz: float = 300e6,
    guard_band_hz: float = 100e6,
) -> FdmPlan:
    """Assign evenly spaced carriers to a qubit group.

    Raises:
        ReproError: If the group exceeds the DAC's Nyquist capacity.
    """
    capacity = max_fdm_channels(dac_rate_hz, channel_bandwidth_hz, guard_band_hz)
    if len(qubits) > capacity:
        raise ReproError(
            f"{len(qubits)} channels exceed the DAC's FDM capacity of {capacity}"
        )
    if not qubits:
        raise ReproError("need at least one qubit to multiplex")
    spacing = channel_bandwidth_hz + guard_band_hz
    first = spacing  # keep a guard band from DC
    carriers = tuple(first + i * spacing for i in range(len(qubits)))
    return FdmPlan(
        dac_rate_hz=dac_rate_hz, carriers_hz=carriers, qubits=tuple(qubits)
    )


class FdmMixer:
    """Digital upconversion: mix each envelope to its carrier and sum."""

    def __init__(self, plan: FdmPlan) -> None:
        self.plan = plan

    def combine(self, envelopes: Dict[int, np.ndarray]) -> np.ndarray:
        """Mix per-qubit complex envelopes into one real DAC stream.

        Args:
            envelopes: qubit -> complex baseband samples (all equal
                length; pad shorter pulses with zeros upstream).

        Returns:
            Real passband samples at the DAC rate, |amplitude| <= 1.
        """
        missing = set(self.plan.qubits) - set(envelopes)
        if missing:
            raise ReproError(f"missing envelopes for qubits {sorted(missing)}")
        lengths = {np.asarray(envelopes[q]).size for q in self.plan.qubits}
        if len(lengths) != 1:
            raise ReproError(f"envelope lengths differ: {sorted(lengths)}")
        n = lengths.pop()
        t = np.arange(n) / self.plan.dac_rate_hz
        headroom = self.plan.amplitude_headroom
        total = np.zeros(n, dtype=np.float64)
        for qubit, carrier in zip(self.plan.qubits, self.plan.carriers_hz):
            envelope = np.asarray(envelopes[qubit], dtype=np.complex128)
            mixed = np.real(envelope * np.exp(2j * math.pi * carrier * t))
            total += headroom * mixed
        peak = np.max(np.abs(total))
        if peak > 1.0 + 1e-9:
            raise ReproError(f"combined stream clips: peak {peak:.3f}")
        return total

    def memory_streams_required(self) -> int:
        """Waveform streams the memory must sustain for this DAC.

        The paper's FDM point: one DAC channel still needs every
        multiplexed qubit's waveform generated individually.
        """
        return self.plan.n_channels
