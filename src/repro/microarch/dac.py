"""DAC streaming model.

The DAC consumes ``clock_ratio`` samples per fabric cycle (its clock is
that much faster than the FPGA fabric).  The buffer model checks the
decompression pipeline can sustain that rate -- the signal-integrity
requirement of Section II-B -- and reports underruns otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ReproError

__all__ = ["DacBuffer"]


@dataclass
class DacBuffer:
    """A FIFO between the decompression pipeline and the DAC.

    Producer: ``push`` whole decoded windows each fabric cycle.
    Consumer: ``drain`` exactly ``clock_ratio`` samples per fabric cycle
    once streaming starts.

    Attributes:
        clock_ratio: DAC samples consumed per fabric cycle.
        underruns: Cycles where the DAC needed samples the pipeline had
            not yet produced.
    """

    clock_ratio: int
    underruns: int = 0
    _fifo: List[int] = field(default_factory=list)
    _streamed: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.clock_ratio < 1:
            raise ReproError(f"clock ratio must be >= 1, got {self.clock_ratio}")

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    @property
    def streamed(self) -> np.ndarray:
        """Everything the DAC has consumed so far, in order."""
        return np.asarray(self._streamed, dtype=np.int64)

    def push(self, samples: np.ndarray) -> None:
        """Producer side: append one decoded window (or repeat burst)."""
        self._fifo.extend(int(s) for s in np.asarray(samples).ravel())

    def drain_cycle(self) -> int:
        """Consumer side: take up to ``clock_ratio`` samples; returns the
        number actually delivered and records an underrun if short."""
        take = min(self.clock_ratio, len(self._fifo))
        if take < self.clock_ratio:
            self.underruns += 1
        self._streamed.extend(self._fifo[:take])
        del self._fifo[:take]
        return take

    def drain_all(self) -> None:
        """Flush the FIFO at end of pulse (partial final cycle is fine)."""
        self._streamed.extend(self._fifo)
        self._fifo.clear()
