"""The IDCT engine (stage 2 of Fig 10's pipeline).

One engine inverts one coefficient window per fabric cycle.  The
int-DCT-W engine is multiplierless -- its dataflow is shifts and adds
only (Section V-B) -- which is why its latency is a single cycle and its
critical-path cost is low (Fig 16).  Sample output is bit-identical to
:func:`repro.compression.pipeline.inverse_transform`; a test cross-checks
it against the pure shift-add reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompressionError
from repro.compression.pipeline import inverse_transform
from repro.transforms.csd import OpCount
from repro.transforms.integer_dct import idct_adder_depth, idct_op_counts

__all__ = ["IdctEngine"]


@dataclass
class IdctEngine:
    """An N-point inverse-transform unit with operation accounting.

    Attributes:
        window_size: Transform length N.
        variant: "int-DCT-W" (shift-add) or "DCT-W" (multipliers).
        windows_processed: Invocation counter (one per fabric cycle).
    """

    window_size: int
    variant: str = "int-DCT-W"
    windows_processed: int = 0
    _ops: OpCount = field(init=False)

    def __post_init__(self) -> None:
        if self.variant not in ("int-DCT-W", "DCT-W"):
            raise CompressionError(
                f"IDCT engine needs a windowed DCT codec "
                f"(int-DCT-W or DCT-W), got {self.variant!r}"
            )
        self._ops = idct_op_counts(self.window_size, self.variant)

    @property
    def op_counts(self) -> OpCount:
        """Hardware ops of one engine instance (Table IV)."""
        return self._ops

    @property
    def adder_depth(self) -> int:
        """Combinational depth in adder levels (feeds the clock model)."""
        return idct_adder_depth(self.window_size, self.variant)

    @property
    def ops_per_window(self) -> int:
        """Dynamic add-equivalent operations per inverted window.

        A multiplier counts as :data:`MULT_ADD_EQUIVALENT` adds; used by
        the ASIC power model.
        """
        return (
            self._ops.adders
            + self._ops.shifters * 0  # shifts are wiring
            + self._ops.multipliers * MULT_ADD_EQUIVALENT
        )

    def invert(self, coeffs: np.ndarray) -> np.ndarray:
        """Invert one window of coefficients into time-domain samples."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.size != self.window_size:
            raise CompressionError(
                f"engine is {self.window_size}-point, got {coeffs.size} coefficients"
            )
        self.windows_processed += 1
        return inverse_transform(coeffs, self.variant)


#: Dynamic-energy weight of one real multiplier relative to one adder
#: (16-bit array multiplier ~ 16 adder rows, ~half active on average).
MULT_ADD_EQUIVALENT = 8
