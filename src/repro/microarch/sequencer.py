"""Pulse sequencer, instruction buffer and controller executor (Fig 6).

The COMPAQT microarchitecture block diagram has three pieces we model
here on top of the decompression pipeline:

- a **pulse program**: the instruction stream the host loads into the
  controller's instruction buffer (PLAY / DELAY / SYNC / END);
- an **assembler** that lowers an ASAP :class:`Schedule` into one
  instruction stream per output channel (each qubit's drive line);
- a **sequencer/executor** that runs the program cycle-accurately:
  every PLAY triggers the decompression pipeline for that gate's
  compressed waveform, DELAY emits idle samples, and the per-channel
  sample streams are stitched together exactly as the DACs would see
  them.

Two-qubit (cross-resonance) gates occupy *two* channels: the CR drive
on the control qubit's line and the matching cancellation tone on the
target's line -- the same two-stream accounting the bandwidth profiler
uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.errors import ScheduleError
from repro.circuits.schedule import Schedule

if TYPE_CHECKING:  # avoid the core <-> microarch import cycle
    from repro.core.controller import QubitController

__all__ = [
    "SeqOp",
    "SeqInstruction",
    "PulseProgram",
    "assemble_schedule",
    "ExecutionTrace",
    "ControllerExecutor",
]


class SeqOp:
    """Sequencer opcodes."""

    PLAY = "play"
    DELAY = "delay"
    END = "end"


@dataclass(frozen=True)
class SeqInstruction:
    """One instruction in a channel's stream.

    Attributes:
        opcode: :class:`SeqOp` member.
        duration: Samples this instruction occupies on the channel.
        gate: For PLAY, the gate whose waveform is fetched.
        qubits: For PLAY, the library key's qubit tuple.
    """

    opcode: str
    duration: int = 0
    gate: str = ""
    qubits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.opcode not in (SeqOp.PLAY, SeqOp.DELAY, SeqOp.END):
            raise ScheduleError(f"unknown sequencer opcode {self.opcode!r}")
        if self.duration < 0:
            raise ScheduleError(f"negative duration: {self.duration}")
        if self.opcode == SeqOp.PLAY and not self.gate:
            raise ScheduleError("PLAY requires a gate binding")


@dataclass
class PulseProgram:
    """Per-channel instruction streams plus program metadata.

    Channels are qubit drive lines, keyed by qubit index.
    """

    name: str
    channels: Dict[int, List[SeqInstruction]] = field(default_factory=dict)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def n_instructions(self) -> int:
        return sum(len(stream) for stream in self.channels.values())

    def channel_duration(self, channel: int) -> int:
        """Samples a channel's stream occupies (END excluded)."""
        return sum(inst.duration for inst in self.channels.get(channel, []))

    @property
    def makespan(self) -> int:
        if not self.channels:
            return 0
        return max(self.channel_duration(c) for c in self.channels)

    def instruction_buffer_bytes(self, bytes_per_instruction: int = 8) -> int:
        """Footprint of the instruction buffer (Fig 6's ``Inst. Buffer``)."""
        return self.n_instructions * bytes_per_instruction


def assemble_schedule(schedule: Schedule, name: str = "program") -> PulseProgram:
    """Lower an ASAP schedule to per-channel sequencer streams.

    Every scheduled gate becomes a PLAY on each of its qubits' channels
    (preceded by the DELAY that aligns it to its start time); channel
    streams end with END.

    Raises:
        ScheduleError: If a channel would need to play two pulses at
            once (the schedule is malformed).
    """
    channels: Dict[int, List[SeqInstruction]] = {}
    cursor: Dict[int, int] = {}
    for entry in sorted(schedule.entries, key=lambda e: (e.start, e.qubits)):
        if entry.duration == 0:
            continue  # virtual RZ: frame update, no channel time
        for qubit in entry.qubits:
            stream = channels.setdefault(qubit, [])
            position = cursor.get(qubit, 0)
            if entry.start < position:
                raise ScheduleError(
                    f"channel {qubit} overlap: pulse at {entry.start} "
                    f"but channel busy until {position}"
                )
            if entry.start > position:
                stream.append(
                    SeqInstruction(SeqOp.DELAY, duration=entry.start - position)
                )
            stream.append(
                SeqInstruction(
                    SeqOp.PLAY,
                    duration=entry.duration,
                    gate=entry.gate,
                    qubits=entry.qubits,
                )
            )
            cursor[qubit] = entry.stop
    for stream in channels.values():
        stream.append(SeqInstruction(SeqOp.END))
    return PulseProgram(name=name, channels=channels)


@dataclass
class ExecutionTrace:
    """Result of executing a pulse program on the controller.

    Attributes:
        i_streams / q_streams: Per-channel stitched sample streams (the
            exact DAC inputs, idle samples are zero).
        bram_reads: Total compressed-memory reads across all PLAYs.
        idct_windows: Total windows inverted.
        plays: PLAY instructions executed.
        baseline_reads: Reads an uncompressed memory would have needed
            (one word per sample per channel).
    """

    program: PulseProgram
    i_streams: Dict[int, np.ndarray]
    q_streams: Dict[int, np.ndarray]
    bram_reads: int = 0
    idct_windows: int = 0
    plays: int = 0
    baseline_reads: int = 0

    @property
    def bandwidth_gain(self) -> float:
        """Streamed samples per memory word over the whole program."""
        if self.bram_reads == 0:
            return float("inf")
        return self.baseline_reads / self.bram_reads

    def channel_utilization(self, channel: int) -> float:
        """Fraction of a channel's timeline carrying non-idle samples."""
        stream = self.i_streams.get(channel)
        if stream is None or stream.size == 0:
            return 0.0
        busy = sum(
            inst.duration
            for inst in self.program.channels[channel]
            if inst.opcode == SeqOp.PLAY
        )
        return busy / stream.size


class ControllerExecutor:
    """Executes pulse programs against a :class:`QubitController`.

    Every PLAY streams the gate's compressed waveform through the
    cycle-level decompression pipeline; the resulting samples are placed
    at the instruction's position in the channel stream.
    """

    def __init__(self, controller: "QubitController") -> None:
        self.controller = controller

    def run(self, program: PulseProgram) -> ExecutionTrace:
        """Execute all channels; returns the stitched DAC streams."""
        makespan = program.makespan
        trace = ExecutionTrace(
            program=program,
            i_streams={},
            q_streams={},
        )
        for channel, stream in sorted(program.channels.items()):
            i_out = np.zeros(makespan, dtype=np.int64)
            q_out = np.zeros(makespan, dtype=np.int64)
            position = 0
            for inst in stream:
                if inst.opcode == SeqOp.END:
                    break
                if inst.opcode == SeqOp.DELAY:
                    position += inst.duration
                    continue
                report = self.controller.play(inst.gate, inst.qubits)
                if report.n_samples != inst.duration:
                    raise ScheduleError(
                        f"waveform for {inst.gate!r} on {inst.qubits} is "
                        f"{report.n_samples} samples, instruction says "
                        f"{inst.duration}"
                    )
                i_out[position : position + inst.duration] = report.i_samples
                q_out[position : position + inst.duration] = report.q_samples
                trace.bram_reads += report.bram_reads
                trace.idct_windows += report.idct_windows
                trace.baseline_reads += 2 * report.n_samples
                trace.plays += 1
                position += inst.duration
            trace.i_streams[channel] = i_out
            trace.q_streams[channel] = q_out
        return trace

    def run_circuit(
        self, schedule: Schedule, name: str = "circuit"
    ) -> ExecutionTrace:
        """Assemble and execute a schedule in one call."""
        return self.run(assemble_schedule(schedule, name=name))
