"""Banked compressed waveform memory (Fig 12).

Stores one compressed waveform channel striped across banks so that one
whole compressed window (the uniform width) can be fetched per fabric
cycle.  Read counting feeds the bandwidth-gain numbers and the ASIC
power model (every avoided read is saved energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


from repro.errors import CompressionError
from repro.compression.pipeline import CompressedChannel
from repro.transforms.rle import TAG_COEFF, MemoryWord

__all__ = ["BankedChannelMemory", "MemoryStats"]


@dataclass
class MemoryStats:
    """Access accounting for one banked memory instance."""

    reads: int = 0
    reads_per_bank: Dict[int, int] = field(default_factory=dict)

    def record(self, bank: int, count: int = 1) -> None:
        self.reads += count
        self.reads_per_bank[bank] = self.reads_per_bank.get(bank, 0) + count


class BankedChannelMemory:
    """One channel of compressed waveform memory, striped across banks.

    Window ``w``'s words occupy per-bank address ``w`` in banks
    ``0..width-1``; windows shorter than the uniform width are padded
    with zero-coefficient words (Fig 12c).

    Args:
        channel: The compressed channel to load.
        width: Uniform window width in words; defaults to the channel's
            worst case.
    """

    def __init__(self, channel: CompressedChannel, width: int = 0) -> None:
        self.channel = channel
        self.width = width or channel.worst_case_words
        if self.width < channel.worst_case_words:
            raise CompressionError(
                f"width {self.width} below channel worst case "
                f"{channel.worst_case_words}"
            )
        self.stats = MemoryStats()
        self._banks: List[List[MemoryWord]] = [[] for _ in range(self.width)]
        for window in channel.windows:
            words = window.to_words()
            words += [MemoryWord(TAG_COEFF, 0)] * (self.width - len(words))
            for bank, word in enumerate(words):
                self._banks[bank].append(word)

    @property
    def n_banks(self) -> int:
        return self.width

    @property
    def n_windows(self) -> int:
        return self.channel.n_windows

    @property
    def words_per_bank(self) -> int:
        return self.n_windows

    @property
    def total_words(self) -> int:
        """Stored footprint in words (uniform packing)."""
        return self.n_windows * self.width

    def fetch_window(self, window: int) -> List[MemoryWord]:
        """Read all words of one window -- one access per bank, one
        fabric cycle."""
        if not 0 <= window < self.n_windows:
            raise CompressionError(
                f"window {window} outside 0..{self.n_windows - 1}"
            )
        words = []
        for bank in range(self.width):
            self.stats.record(bank)
            words.append(self._banks[bank][window])
        return words

    def useful_words(self) -> int:
        """Words that carry payload (excludes uniform-width padding)."""
        return self.channel.stored_words_variable
