"""Microarchitecture models: decompression pipeline, memory, resources,
timing and power."""

from repro.microarch.memory import BankedChannelMemory, MemoryStats
from repro.microarch.rle_decoder import RleDecoder
from repro.microarch.idct_engine import IdctEngine, MULT_ADD_EQUIVALENT
from repro.microarch.dac import DacBuffer
from repro.microarch.pipeline_sim import (
    StreamReport,
    DecompressionPipeline,
    BaselineStreamer,
)
from repro.microarch.resources import (
    ResourceEstimate,
    QICK_BASELINE_RESOURCES,
    ZCU7EV_TOTALS,
    idct_resources,
    ClockModel,
)
from repro.microarch.power import SramModel, PowerBreakdown, CryoControllerPower
from repro.microarch.sequencer import (
    SeqOp,
    SeqInstruction,
    PulseProgram,
    assemble_schedule,
    ExecutionTrace,
    ControllerExecutor,
)
from repro.microarch.fdm import FdmPlan, FdmMixer, max_fdm_channels, plan_fdm

__all__ = [
    "BankedChannelMemory",
    "MemoryStats",
    "RleDecoder",
    "IdctEngine",
    "MULT_ADD_EQUIVALENT",
    "DacBuffer",
    "StreamReport",
    "DecompressionPipeline",
    "BaselineStreamer",
    "ResourceEstimate",
    "QICK_BASELINE_RESOURCES",
    "ZCU7EV_TOTALS",
    "idct_resources",
    "ClockModel",
    "SramModel",
    "PowerBreakdown",
    "CryoControllerPower",
    "SeqOp",
    "SeqInstruction",
    "PulseProgram",
    "assemble_schedule",
    "ExecutionTrace",
    "ControllerExecutor",
    "FdmPlan",
    "FdmMixer",
    "max_fdm_channels",
    "plan_fdm",
]
