"""FPGA resource and timing models (Table VIII, Fig 16).

The paper synthesizes the int-DCT-W IDCT engines with Vivado on the
Xilinx zc7u7ev; offline we derive LUT/FF counts and achievable clock
from the *actual* operation graph of our engines:

- LUTs scale with adder count times datapath width (a W-bit ripple/carry
  adder maps to ~W LUTs, fractionally discounted by carry chains);
  multipliers in the DCT-W engine cost ~W^2/2 LUT equivalents;
- FFs are the pipeline I/O registers (coefficients in, samples out);
- achievable clock follows the combinational depth in adder levels plus
  a fixed routing overhead.

The three model constants below were calibrated once against the
paper's published Table VIII / Fig 16 rows; the benches print our model
output next to the paper values so the deviation is always visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.transforms.csd import OpCount
from repro.transforms.integer_dct import idct_adder_depth, idct_op_counts

__all__ = [
    "ResourceEstimate",
    "QICK_BASELINE_RESOURCES",
    "ZCU7EV_TOTALS",
    "idct_resources",
    "ClockModel",
]


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT/FF usage of one module."""

    luts: int
    flipflops: int

    def utilization(self, totals: "ResourceEstimate") -> "tuple[float, float]":
        """(LUT%, FF%) of the given device totals."""
        return (
            100.0 * self.luts / totals.luts,
            100.0 * self.flipflops / totals.flipflops,
        )


#: QICK single-qubit control baseline synthesized on the zc7u7ev
#: (Table VIII row 1).
QICK_BASELINE_RESOURCES = ResourceEstimate(luts=3386, flipflops=6448)

#: Xilinx zc7u7ev totals (Table VIII's percentages).
ZCU7EV_TOTALS = ResourceEstimate(luts=230400, flipflops=460800)

#: Calibrated LUTs per adder bit (carry chains pack tighter than 1.0).
_LUT_PER_ADDER_BIT = 0.62

#: Calibrated LUT cost of one W-bit multiplier, per bit^2.
_LUT_PER_MULT_BIT2 = 0.5

#: Fixed control/FSM overhead per engine.
_CONTROL_LUTS = 40
_CONTROL_FFS = 10


def idct_resources(
    window_size: int, variant: str = "int-DCT-W", datapath_bits: int = 16
) -> ResourceEstimate:
    """LUT/FF estimate for one N-point IDCT engine.

    Derived from the engine's real operation graph
    (:func:`repro.transforms.integer_dct.idct_op_counts`); constants are
    calibrated to Table VIII.
    """
    if datapath_bits < 1:
        raise ReproError(f"datapath width must be >= 1 bit, got {datapath_bits}")
    ops: OpCount = idct_op_counts(window_size, variant)
    luts = (
        ops.adders * datapath_bits * _LUT_PER_ADDER_BIT
        + ops.multipliers * datapath_bits**2 * _LUT_PER_MULT_BIT2
        + _CONTROL_LUTS
    )
    # Registers: N input coefficients and N output samples per engine,
    # at datapath width, plus control state.
    flipflops = 2 * window_size * datapath_bits + _CONTROL_FFS
    return ResourceEstimate(luts=int(round(luts)), flipflops=int(round(flipflops)))


@dataclass(frozen=True)
class ClockModel:
    """Achievable fabric clock with an unpipelined IDCT engine inline.

    ``T = routing_overhead_ns + depth * adder_level_ns (+ mult_penalty)``
    and ``fmax = min(baseline, 1/T)``.  Pipelined engines restore the
    baseline clock (Section VII-C: the int-DCT-W engine "can be
    pipelined to enable a design with no clock frequency degradation").

    Attributes:
        baseline_fmax_hz: QICK's 294 MHz synthesis result.
        adder_level_ns: Delay per adder level (LUT + local route).
        routing_overhead_ns: Fixed insertion overhead of the engine.
        multiplier_penalty_ns: Extra global routing per multiplier stage
            (DCT-W only).
    """

    baseline_fmax_hz: float = 294e6
    adder_level_ns: float = 0.35
    routing_overhead_ns: float = 1.95
    multiplier_penalty_ns: float = 0.30

    def engine_delay_ns(self, window_size: int, variant: str = "int-DCT-W") -> float:
        depth = idct_adder_depth(window_size, variant)
        delay = self.routing_overhead_ns + depth * self.adder_level_ns
        if variant == "DCT-W":
            delay += self.multiplier_penalty_ns
        return delay

    def fmax_hz(
        self, window_size: int, variant: str = "int-DCT-W", pipelined: bool = False
    ) -> float:
        """Achievable clock with the engine inserted in the QICK path."""
        if pipelined:
            return self.baseline_fmax_hz
        engine_hz = 1e9 / self.engine_delay_ns(window_size, variant)
        return min(self.baseline_fmax_hz, engine_hz)

    def normalized_fmax(
        self, window_size: int, variant: str = "int-DCT-W", pipelined: bool = False
    ) -> float:
        """Fig 16's normalized frequency (baseline = 1.0)."""
        return self.fmax_hz(window_size, variant, pipelined) / self.baseline_fmax_hz
