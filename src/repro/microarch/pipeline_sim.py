"""Cycle-level decompression pipeline simulator (Fig 10, Fig 13b).

Couples the banked compressed memory, the RLE decoder, the IDCT engine
and the DAC buffer, cycle by cycle.  Each fabric cycle every engine
fetches one compressed window per channel (``worst_case`` words), RLE-
expands it, inverts it, and pushes ``window_size`` samples toward the
DAC -- that expansion is the bandwidth boost of Fig 2(b).

The streamed samples are asserted bit-identical to the functional codec
(:func:`repro.compression.pipeline.decompress_channel`), so every
fidelity experiment that uses decompressed waveforms is exercising
exactly what this hardware model would play.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import CompressionError
from repro.compression.bitstream import parse_waveform
from repro.compression.packing import idct_engines_needed
from repro.compression.pipeline import (
    CompressedChannel,
    CompressedWaveform,
    decompress_channel,
)
from repro.core.adaptive import (
    AdaptiveCompressionResult,
    RepeatSegment,
    WindowSegment,
)
from repro.microarch.dac import DacBuffer
from repro.microarch.idct_engine import IdctEngine
from repro.microarch.memory import BankedChannelMemory
from repro.microarch.rle_decoder import RleDecoder

__all__ = ["StreamReport", "DecompressionPipeline", "BaselineStreamer"]


@dataclass(frozen=True)
class StreamReport:
    """Outcome of streaming one waveform through the pipeline.

    All counts cover both channels (I and Q).
    """

    name: str
    variant: str
    window_size: int
    clock_ratio: int
    i_samples: np.ndarray
    q_samples: np.ndarray
    fabric_cycles: int
    bram_reads: int
    idct_windows: int
    rle_windows_decoded: int
    rle_zeros_expanded: int
    bypass_samples: int
    dac_underruns: int

    @property
    def n_samples(self) -> int:
        return int(self.i_samples.size)

    @property
    def bandwidth_gain(self) -> float:
        """Decoded samples per fetched memory word (baseline = 1.0).

        This is the memory-bandwidth multiplication of Fig 2(b): e.g.
        WS=16 with 3-word windows sustains ~5.33 samples per word.
        """
        if self.bram_reads == 0:
            return float("inf")
        return 2 * self.n_samples / self.bram_reads

    @property
    def sustains_dac(self) -> bool:
        """True when the DAC never starved (signal integrity holds)."""
        return self.dac_underruns == 0


class DecompressionPipeline:
    """COMPAQT's hardware decompression path for one qubit stream.

    Args:
        clock_ratio: DAC-to-fabric clock ratio (16 on QICK).
    """

    def __init__(self, clock_ratio: int = 16) -> None:
        if clock_ratio < 1:
            raise CompressionError(f"clock ratio must be >= 1, got {clock_ratio}")
        self.clock_ratio = clock_ratio

    # -- plain compressed waveforms -----------------------------------------

    def stream(self, compressed: CompressedWaveform) -> StreamReport:
        """Play one compressed waveform; returns cycle/access accounting."""
        window_size = compressed.window_size
        engines = idct_engines_needed(self.clock_ratio, window_size)
        width = compressed.worst_case_window_words
        i_memory = BankedChannelMemory(compressed.i_channel, width)
        q_memory = BankedChannelMemory(compressed.q_channel, width)
        i_decoder = RleDecoder(window_size)
        q_decoder = RleDecoder(window_size)
        i_engine = IdctEngine(window_size, compressed.variant)
        q_engine = IdctEngine(window_size, compressed.variant)
        i_dac = DacBuffer(self.clock_ratio)
        q_dac = DacBuffer(self.clock_ratio)

        n_windows = compressed.n_windows
        cycles = 0
        next_window = 0
        while next_window < n_windows:
            for _engine_slot in range(engines):
                if next_window >= n_windows:
                    break
                i_words = i_memory.fetch_window(next_window)
                q_words = q_memory.fetch_window(next_window)
                i_dac.push(i_engine.invert(i_decoder.decode(i_words)))
                q_dac.push(q_engine.invert(q_decoder.decode(q_words)))
                next_window += 1
            cycles += 1
            if cycles > 1:  # one-cycle fill before the DAC starts draining
                i_dac.drain_cycle()
                q_dac.drain_cycle()
        # Flush: the DAC keeps draining until the FIFO is empty.
        while i_dac.occupancy or q_dac.occupancy:
            i_dac.drain_cycle()
            q_dac.drain_cycle()
            cycles += 1
        i_dac.drain_all()
        q_dac.drain_all()

        original = compressed.original_samples
        i_samples = i_dac.streamed[:original]
        q_samples = q_dac.streamed[:original]
        self._verify(compressed.i_channel, i_samples)
        self._verify(compressed.q_channel, q_samples)
        return StreamReport(
            name=compressed.name,
            variant=compressed.variant,
            window_size=window_size,
            clock_ratio=self.clock_ratio,
            i_samples=i_samples,
            q_samples=q_samples,
            fabric_cycles=cycles,
            bram_reads=i_memory.stats.reads + q_memory.stats.reads,
            idct_windows=i_engine.windows_processed + q_engine.windows_processed,
            rle_windows_decoded=i_decoder.windows_decoded
            + q_decoder.windows_decoded,
            rle_zeros_expanded=i_decoder.zeros_expanded + q_decoder.zeros_expanded,
            bypass_samples=0,
            dac_underruns=i_dac.underruns + q_dac.underruns,
        )

    def stream_bitstream(self, data: bytes) -> StreamReport:
        """Play one waveform directly from its wire-format bitstream.

        This is the shipped-artifact path: the compiler serializes a
        :class:`CompressedWaveform` with
        :func:`repro.compression.bitstream.serialize_waveform`, the
        bytes travel to the controller, and the pipeline parses and
        streams them.  Malformed bytes raise
        :class:`~repro.errors.CompressionError` before any sample is
        emitted.
        """
        return self.stream(parse_waveform(data))

    # -- adaptive decompression (Fig 13b) ------------------------------------

    def stream_adaptive(self, adaptive: AdaptiveCompressionResult) -> StreamReport:
        """Play an adaptively compressed waveform (flat-top bypass).

        Repeat segments are fetched once (a single codeword read per
        channel) and then stream from the repeat register with both the
        memory and the IDCT engine idle.
        """
        i_out: List[np.ndarray] = []
        q_out: List[np.ndarray] = []
        cycles = 0
        bram_reads = 0
        idct_windows = 0
        rle_windows = 0
        rle_zeros = 0
        bypass = 0
        window_size = 0
        variant = "int-DCT-W"
        for segment in adaptive.segments:
            if isinstance(segment, RepeatSegment):
                # One fetch per channel for the codeword, then pure bypass.
                bram_reads += 2
                cycles += 1 + math.ceil(segment.count / self.clock_ratio)
                bypass += segment.count
                i_out.append(np.full(segment.count, segment.i_value, dtype=np.int64))
                q_out.append(np.full(segment.count, segment.q_value, dtype=np.int64))
                continue
            report = self._stream_window_segment(segment)
            window_size = report.window_size
            variant = report.variant
            cycles += report.fabric_cycles
            bram_reads += report.bram_reads
            idct_windows += report.idct_windows
            rle_windows += report.rle_windows_decoded
            rle_zeros += report.rle_zeros_expanded
            i_out.append(report.i_samples)
            q_out.append(report.q_samples)
        i_samples = np.concatenate(i_out)
        q_samples = np.concatenate(q_out)
        if i_samples.size != adaptive.original.n_samples:
            raise CompressionError(
                f"adaptive stream produced {i_samples.size} samples, "
                f"expected {adaptive.original.n_samples}"
            )
        return StreamReport(
            name=adaptive.name,
            variant=variant,
            window_size=window_size,
            clock_ratio=self.clock_ratio,
            i_samples=i_samples,
            q_samples=q_samples,
            fabric_cycles=cycles,
            bram_reads=bram_reads,
            idct_windows=idct_windows,
            rle_windows_decoded=rle_windows,
            rle_zeros_expanded=rle_zeros,
            bypass_samples=bypass,
            dac_underruns=0,
        )

    def _stream_window_segment(self, segment: WindowSegment) -> StreamReport:
        shim = CompressedWaveform(
            name="segment",
            gate="",
            qubits=(),
            dt=1e-9,
            i_channel=segment.i_channel,
            q_channel=segment.q_channel,
        )
        return self.stream(shim)

    @staticmethod
    def _verify(channel: CompressedChannel, streamed: np.ndarray) -> None:
        expected = decompress_channel(channel)
        if not np.array_equal(expected, streamed):
            raise CompressionError(
                "cycle-level stream diverged from the functional codec"
            )


class BaselineStreamer:
    """Uncompressed streaming for comparison (Fig 12a's organization).

    Every sample is one stored word; sustaining the DAC needs
    ``clock_ratio`` BRAM reads per channel per fabric cycle.
    """

    def __init__(self, clock_ratio: int = 16) -> None:
        self.clock_ratio = clock_ratio

    def stream(self, i_codes: np.ndarray, q_codes: np.ndarray, name: str = "baseline") -> StreamReport:
        i_codes = np.asarray(i_codes, dtype=np.int64)
        q_codes = np.asarray(q_codes, dtype=np.int64)
        if i_codes.shape != q_codes.shape:
            raise CompressionError("I/Q length mismatch")
        cycles = math.ceil(i_codes.size / self.clock_ratio)
        return StreamReport(
            name=name,
            variant="uncompressed",
            window_size=0,
            clock_ratio=self.clock_ratio,
            i_samples=i_codes,
            q_samples=q_codes,
            fabric_cycles=cycles,
            bram_reads=2 * i_codes.size,
            idct_windows=0,
            rle_windows_decoded=0,
            rle_zeros_expanded=0,
            bypass_samples=0,
            dac_underruns=0,
        )
