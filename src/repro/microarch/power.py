"""Cryogenic ASIC power models (Figs 18 and 19, Section VII-D).

Stands in for Destiny/CACTI (SRAM) and Synopsys DC + TSMC 40nm (IDCT
engine).  The SRAM model follows the CACTI shape -- read energy grows
with the square root of capacity (wordline/bitline length), leakage
linearly -- with constants calibrated so the uncompressed baseline
dissipates ~14 mW of memory power at the IBM sample rate, matching
Fig 18's left bar.  The claims we reproduce are *relative* (memory
power divided by the compression factor, IDCT overhead small, adaptive
bypass on top), and those ratios are insensitive to the absolute
calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.microarch.idct_engine import IdctEngine

__all__ = ["SramModel", "PowerBreakdown", "CryoControllerPower"]


@dataclass(frozen=True)
class SramModel:
    """Analytic SRAM read-energy / leakage model (Destiny-style).

    ``E_read(C) = e0 + e1 * sqrt(C / 1KB)`` picojoules,
    ``P_leak(C) = leak_mw_per_kb * C``.
    """

    e0_pj: float = 0.5
    e1_pj: float = 0.61
    leak_mw_per_kb: float = 0.005

    def read_energy_pj(self, capacity_bytes: float) -> float:
        """Energy of one word read from an SRAM of this capacity."""
        if capacity_bytes <= 0:
            raise ReproError(f"capacity must be positive, got {capacity_bytes}")
        return self.e0_pj + self.e1_pj * math.sqrt(capacity_bytes / 1e3)

    def leakage_mw(self, capacity_bytes: float) -> float:
        return self.leak_mw_per_kb * capacity_bytes / 1e3


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component controller power in milliwatts (Fig 18's stacks)."""

    dac_mw: float
    memory_mw: float
    idct_mw: float

    @property
    def total_mw(self) -> float:
        return self.dac_mw + self.memory_mw + self.idct_mw


@dataclass(frozen=True)
class CryoControllerPower:
    """Power model of one qubit's control slice in a cryo-CMOS ASIC.

    Attributes:
        sample_rate_hz: DAC (and therefore sample-stream) rate.
        sram: SRAM energy model.
        dac_mw: DAC power (Fig 18 uses a 2 mW reference).
        add_energy_pj: Dynamic energy of one 16-bit add at 40 nm.
    """

    sample_rate_hz: float = 4.54e9
    sram: SramModel = SramModel()
    dac_mw: float = 2.0
    add_energy_pj: float = 0.02

    # -- component powers ----------------------------------------------------

    def memory_power_mw(
        self, capacity_bytes: float, words_per_second: float
    ) -> float:
        """Dynamic + leakage power of the waveform SRAM."""
        if words_per_second < 0:
            raise ReproError(f"negative access rate: {words_per_second}")
        dynamic = self.sram.read_energy_pj(capacity_bytes) * words_per_second * 1e-9
        return dynamic + self.sram.leakage_mw(capacity_bytes)

    def idct_power_mw(
        self, window_size: int, variant: str = "int-DCT-W", duty: float = 1.0
    ) -> float:
        """IDCT engine power at full streaming rate times ``duty``.

        The engine inverts ``sample_rate / window_size`` windows per
        second per channel (two channels).
        """
        if not 0.0 <= duty <= 1.0:
            raise ReproError(f"duty must be in [0, 1], got {duty}")
        engine = IdctEngine(window_size, variant)
        windows_per_second = 2 * self.sample_rate_hz / window_size
        ops_per_second = engine.ops_per_window * windows_per_second * duty
        return ops_per_second * self.add_energy_pj * 1e-9

    # -- whole-controller scenarios (Fig 18 / Fig 19) -------------------------

    def uncompressed(self, capacity_bytes: float = 18e3) -> PowerBreakdown:
        """Baseline: every sample read from SRAM (one 32-bit I+Q word
        per DAC sample)."""
        words_per_second = self.sample_rate_hz
        return PowerBreakdown(
            dac_mw=self.dac_mw,
            memory_mw=self.memory_power_mw(capacity_bytes, words_per_second),
            idct_mw=0.0,
        )

    def compaqt(
        self,
        compression_ratio: float,
        window_size: int,
        variant: str = "int-DCT-W",
        capacity_bytes: float = 18e3,
        memory_duty: float = 1.0,
        idct_duty: float = 1.0,
    ) -> PowerBreakdown:
        """COMPAQT: smaller SRAM read ``R``x less often, plus the engine.

        ``memory_duty`` / ``idct_duty`` model adaptive decompression
        (Fig 19): during a flat-top plateau neither the memory nor the
        IDCT engine is active, so the duty is the non-plateau fraction.
        """
        if compression_ratio < 1.0:
            raise ReproError(
                f"compression ratio must be >= 1, got {compression_ratio}"
            )
        compressed_capacity = capacity_bytes / compression_ratio
        words_per_second = self.sample_rate_hz / compression_ratio * memory_duty
        return PowerBreakdown(
            dac_mw=self.dac_mw,
            memory_mw=self.memory_power_mw(compressed_capacity, words_per_second),
            idct_mw=self.idct_power_mw(window_size, variant, duty=idct_duty),
        )
