"""Memory packing: mapping compressed windows onto BRAM banks (Fig 12).

On RFSoCs the FPGA fabric clock is ~16x slower than the DAC, so the
baseline interleaves each waveform's samples across ``clock_ratio``
BRAMs to sustain the stream (Fig 12a).  COMPAQT instead reads one
*compressed window* per fabric cycle per IDCT engine, which needs only
``worst_case_words`` BRAMs per engine (Fig 12b-d) -- that reduction is
exactly the qubit-count gain of Table V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CompressionError
from repro.compression.pipeline import CompressedWaveform

__all__ = [
    "brams_per_stream_uncompressed",
    "idct_engines_needed",
    "brams_per_stream_compaqt",
    "BankLayout",
    "pack_waveform",
]


def brams_per_stream_uncompressed(clock_ratio: int) -> int:
    """Baseline interleave factor: one BRAM per DAC sample per cycle."""
    _check_ratio(clock_ratio)
    return clock_ratio


def idct_engines_needed(clock_ratio: int, window_size: int) -> int:
    """IDCT engines to produce ``clock_ratio`` samples per fabric cycle.

    Each engine emits ``window_size`` samples per cycle; e.g. QICK's
    ratio of 16 needs two WS=8 engines but a single WS=16 engine
    (Section V-C).
    """
    _check_ratio(clock_ratio)
    if window_size < 1:
        raise CompressionError(f"window size must be >= 1, got {window_size}")
    return max(1, math.ceil(clock_ratio / window_size))


def brams_per_stream_compaqt(
    clock_ratio: int, window_size: int, worst_case_words: int = 3
) -> int:
    """BRAMs per waveform stream with compressed memory.

    Every engine must fetch one compressed window (``worst_case_words``
    words) per fabric cycle, so the figure is ``engines * words``:
    ratio 16 / WS=16 / 3 words -> 3 BRAMs (Fig 12b); WS=8 -> 6.
    """
    if worst_case_words < 1:
        raise CompressionError(f"worst case words must be >= 1, got {worst_case_words}")
    return idct_engines_needed(clock_ratio, window_size) * worst_case_words


@dataclass(frozen=True)
class BankLayout:
    """Placement of one compressed waveform in banked memory.

    Words are striped across ``n_banks`` in window order: window ``w``'s
    ``width`` words live at per-bank address ``w`` in banks
    ``0..width-1`` (Fig 12c pads short windows with zeros so every
    window occupies the uniform width).
    """

    waveform_name: str
    n_banks: int
    width: int
    n_windows: int

    @property
    def words_per_bank(self) -> int:
        return self.n_windows

    def address_of(self, window: int, slot: int) -> Tuple[int, int]:
        """(bank, address) of word ``slot`` of window ``window``."""
        if not 0 <= window < self.n_windows:
            raise CompressionError(f"window {window} outside 0..{self.n_windows - 1}")
        if not 0 <= slot < self.width:
            raise CompressionError(f"slot {slot} outside 0..{self.width - 1}")
        return slot, window


def pack_waveform(
    compressed: CompressedWaveform, clock_ratio: int
) -> BankLayout:
    """Compute the banked layout for one compressed waveform stream."""
    width = compressed.worst_case_window_words
    n_banks = brams_per_stream_compaqt(
        clock_ratio, compressed.window_size, width
    )
    return BankLayout(
        waveform_name=compressed.name,
        n_banks=n_banks,
        width=width,
        n_windows=compressed.n_windows,
    )


def _check_ratio(clock_ratio: int) -> None:
    if clock_ratio < 1:
        raise CompressionError(f"clock ratio must be >= 1, got {clock_ratio}")
