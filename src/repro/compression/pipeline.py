"""The COMPAQT compression pipelines: DCT-N, DCT-W, int-DCT-W.

Compression (software, compile time -- Section IV-C):

1. quantize the float envelope to 16-bit I/Q codes (memory contents);
2. per window: transform (float DCT or integer DCT), storing
   coefficients at 16-bit width with a ``1/sqrt(N)`` fixed-point
   convention so any window content fits;
3. hard-threshold small coefficients to zero;
4. fold the trailing zero run of each window into one RLE codeword.

Decompression (hardware, runtime -- Fig 10) is the exact reverse: RLE
expand, inverse transform, stream to the DAC.  :func:`decompress_waveform`
is bit-faithful to the cycle-level engine in :mod:`repro.microarch`.

Both channels of a window are kept at the same stored word count
(Section IV-C: "the number of samples per window after compression are
kept the same for both channels"), so per-window occupancy is the max of
the I and Q occupancies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.metrics import compression_ratio, mean_squared_error
from repro.compression.window import merge_windows, split_windows
from repro.pulses.waveform import Waveform
from repro.transforms.dct import dct_matrix
from repro.transforms.integer_dct import (
    SUPPORTED_SIZES,
    int_dct,
    int_dct_blocks,
    int_idct,
    int_idct_blocks,
)
from repro.transforms.rle import EncodedWindow, rle_encode_window
from repro.transforms.threshold import hard_threshold

__all__ = [
    "VARIANTS",
    "DEFAULT_THRESHOLD",
    "CompressedChannel",
    "CompressedWaveform",
    "CompressionResult",
    "compress_waveform",
    "decompress_waveform",
    "compress_channel",
    "decompress_channel",
    "forward_transform",
    "inverse_transform",
    "forward_transform_blocks",
    "inverse_transform_blocks",
]

#: Supported pipeline variants (Table II).
VARIANTS = ("DCT-N", "DCT-W", "int-DCT-W")

#: Default hard threshold in integer-coefficient units (16-bit codes).
#: 128 codes (~0.4% of full scale) keeps every IBM-library window at
#: <= 3 stored words (Fig 11) with MSE in the paper's 1e-7..1e-5 band;
#: Algorithm 1 tunes it per pulse when fidelity-aware mode is on.
DEFAULT_THRESHOLD = 128


@dataclass(frozen=True)
class CompressedChannel:
    """One compressed I or Q channel: a sequence of encoded windows."""

    windows: Tuple[EncodedWindow, ...]
    variant: str
    window_size: int
    original_length: int

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def stored_words_variable(self) -> int:
        """ASIC-style packing: every window at its true occupancy."""
        return sum(w.n_words for w in self.windows)

    @property
    def worst_case_words(self) -> int:
        """Largest per-window occupancy (sets the uniform memory width)."""
        return max(w.n_words for w in self.windows)


@dataclass(frozen=True)
class CompressedWaveform:
    """A fully compressed waveform (both channels) plus its binding."""

    name: str
    gate: str
    qubits: Tuple[int, ...]
    dt: float
    i_channel: CompressedChannel
    q_channel: CompressedChannel

    def __post_init__(self) -> None:
        if self.i_channel.n_windows != self.q_channel.n_windows:
            raise CompressionError("I and Q channels must have equal window counts")

    @property
    def variant(self) -> str:
        return self.i_channel.variant

    @property
    def window_size(self) -> int:
        return self.i_channel.window_size

    @property
    def n_windows(self) -> int:
        return self.i_channel.n_windows

    @property
    def original_samples(self) -> int:
        return self.i_channel.original_length

    # -- storage accounting --------------------------------------------------

    @property
    def window_words(self) -> Tuple[int, ...]:
        """Per-window occupancy: max of the two channels (Section IV-C)."""
        return tuple(
            max(i.n_words, q.n_words)
            for i, q in zip(self.i_channel.windows, self.q_channel.windows)
        )

    @property
    def worst_case_window_words(self) -> int:
        """The uniform memory width for this waveform (Fig 11's max)."""
        return max(self.window_words)

    def stored_words(self, packing: str = "uniform") -> int:
        """Stored words per channel under the given packing.

        ``"uniform"`` (RFSoC, Section V-A): every window padded to the
        waveform's worst case.  ``"variable"`` (ASIC, Section VII-D):
        windows at true occupancy.
        """
        if packing == "uniform":
            return self.n_windows * self.worst_case_window_words
        if packing == "variable":
            return sum(self.window_words)
        raise CompressionError(f"unknown packing {packing!r}")

    def compression_ratio(self, packing: str = "uniform") -> float:
        """R = original samples / stored words (per channel; the I+Q
        factor of two cancels)."""
        return compression_ratio(self.original_samples, self.stored_words(packing))

    @property
    def stored_bits(self) -> int:
        """Total compressed footprint (both channels, uniform packing,
        16-bit words)."""
        return 2 * 16 * self.stored_words("uniform")


@dataclass(frozen=True)
class CompressionResult:
    """Everything a caller needs after compressing one waveform."""

    compressed: CompressedWaveform
    reconstructed: Waveform
    mse: float
    threshold: float

    @property
    def compression_ratio(self) -> float:
        """Uniform-packing ratio (the paper's headline R)."""
        return self.compressed.compression_ratio("uniform")

    @property
    def compression_ratio_variable(self) -> float:
        return self.compressed.compression_ratio("variable")


# ---------------------------------------------------------------------------
# Channel-level codec.
# ---------------------------------------------------------------------------


def compress_channel(
    codes: np.ndarray,
    window_size: int,
    variant: str,
    threshold: float,
    max_coefficients: int = 0,
) -> CompressedChannel:
    """Compress one int16 channel into encoded windows.

    Args:
        codes: Quantized samples (int16 range).
        window_size: Window length; for DCT-N pass the channel length.
        variant: One of :data:`VARIANTS`.
        threshold: Hard threshold in coefficient units.
        max_coefficients: If positive, additionally keep only the k
            largest-magnitude coefficients per window.  This enforces a
            hard uniform memory width of ``k + 1`` words (Section V-A's
            fixed input-buffer design) at the cost of extra distortion
            -- the mechanism behind Fig 15's WS=8 fidelity losses.
    """
    _check_variant(variant)
    if max_coefficients < 0:
        raise CompressionError(
            f"max_coefficients must be >= 0, got {max_coefficients}"
        )
    codes = np.asarray(codes, dtype=np.int64)
    blocks = split_windows(codes, window_size)
    encoded: List[EncodedWindow] = []
    for block in blocks:
        coeffs = _forward(block, variant)
        kept = hard_threshold(coeffs, threshold)
        if max_coefficients and np.count_nonzero(kept) > max_coefficients:
            order = np.argsort(np.abs(kept))
            kept[order[: kept.size - max_coefficients]] = 0
        encoded.append(rle_encode_window(kept))
    return CompressedChannel(
        windows=tuple(encoded),
        variant=variant,
        window_size=window_size,
        original_length=int(codes.size),
    )


def decompress_channel(channel: CompressedChannel) -> np.ndarray:
    """Reconstruct the int16 sample codes of one channel."""
    blocks = []
    for window in channel.windows:
        coeffs = np.zeros(channel.window_size, dtype=np.int64)
        expanded = _expand_window(window, channel.window_size)
        coeffs[: expanded.size] = expanded
        blocks.append(_inverse(coeffs, channel.variant))
    return merge_windows(np.asarray(blocks), channel.original_length)


def _expand_window(window: EncodedWindow, window_size: int) -> np.ndarray:
    if window.window_size != window_size:
        raise CompressionError(
            f"window decodes to {window.window_size} samples, expected {window_size}"
        )
    from repro.transforms.rle import rle_decode_window

    return rle_decode_window(window)


# ---------------------------------------------------------------------------
# Waveform-level API.
# ---------------------------------------------------------------------------


def compress_waveform(
    waveform: Waveform,
    window_size: int = 16,
    variant: str = "int-DCT-W",
    threshold: float = DEFAULT_THRESHOLD,
    max_coefficients: int = 0,
) -> CompressionResult:
    """Compress a waveform and report reconstruction quality.

    Args:
        waveform: The pulse to compress.
        window_size: DCT window (8/16/32); ignored for DCT-N, which uses
            the full waveform length.
        variant: "DCT-N", "DCT-W" or "int-DCT-W".
        threshold: Hard threshold in integer coefficient units.
        max_coefficients: Optional per-window top-k cap (see
            :func:`compress_channel`).

    Returns:
        A :class:`CompressionResult` carrying the compressed form, the
        decompressed (as-played) waveform, MSE and R.
    """
    _check_variant(variant)
    if variant == "DCT-N":
        window_size = waveform.n_samples
    elif window_size not in SUPPORTED_SIZES:
        raise CompressionError(
            f"window size {window_size} not in {SUPPORTED_SIZES}"
        )
    if threshold < 0:
        raise CompressionError(f"threshold must be >= 0, got {threshold}")
    i_codes, q_codes = waveform.to_fixed_point()
    i_channel = compress_channel(
        i_codes, window_size, variant, threshold, max_coefficients
    )
    q_channel = compress_channel(
        q_codes, window_size, variant, threshold, max_coefficients
    )
    compressed = CompressedWaveform(
        name=waveform.name,
        gate=waveform.gate,
        qubits=waveform.qubits,
        dt=waveform.dt,
        i_channel=i_channel,
        q_channel=q_channel,
    )
    reconstructed = decompress_waveform(compressed)
    return CompressionResult(
        compressed=compressed,
        reconstructed=reconstructed,
        mse=mean_squared_error(waveform.samples, reconstructed.samples),
        threshold=threshold,
    )


def decompress_waveform(compressed: CompressedWaveform) -> Waveform:
    """Reconstruct the playable waveform from its compressed form.

    This is the functional model of the hardware decompression pipeline;
    :mod:`repro.microarch.pipeline_sim` produces bit-identical samples
    cycle by cycle.
    """
    i_codes = decompress_channel(compressed.i_channel)
    q_codes = decompress_channel(compressed.q_channel)
    return Waveform.from_fixed_point(
        np.clip(i_codes, -32768, 32767).astype(np.int16),
        np.clip(q_codes, -32768, 32767).astype(np.int16),
        dt=compressed.dt,
        name=f"{compressed.name}~{compressed.variant}",
        gate=compressed.gate,
        qubits=compressed.qubits,
    )


# ---------------------------------------------------------------------------
# Transforms with a common 16-bit fixed-point convention.
#
# Stored coefficients approximate ``DCT(x) / sqrt(N)``, which is bounded
# by ``max|x|`` (Cauchy-Schwarz), so every window fits 16-bit storage.
# The integer path realizes the same convention through the HEVC forward
# shift of ``6 + log2(N)`` bits.
# ---------------------------------------------------------------------------


def _forward(block: np.ndarray, variant: str) -> np.ndarray:
    n = block.size
    if variant == "int-DCT-W":
        if n not in SUPPORTED_SIZES:
            raise CompressionError(
                f"int-DCT-W needs a window in {SUPPORTED_SIZES}, got {n}"
            )
        return int_dct(block).astype(np.int64)
    matrix = dct_matrix(n)
    coeffs = (matrix @ block.astype(np.float64)) / math.sqrt(n)
    out = np.rint(coeffs).astype(np.int64)
    _fix_rational_rows(block.reshape(1, -1), out.reshape(1, -1))
    return out


def _inverse(coeffs: np.ndarray, variant: str) -> np.ndarray:
    n = coeffs.size
    if variant == "int-DCT-W":
        if n not in SUPPORTED_SIZES:
            raise CompressionError(
                f"int-DCT-W needs a window in {SUPPORTED_SIZES}, got {n}"
            )
        return int_idct(coeffs).astype(np.int64)
    matrix = dct_matrix(n)
    samples = matrix.T @ (coeffs.astype(np.float64) * math.sqrt(n))
    return np.rint(samples).astype(np.int64)


def _rint_div_exact(s: np.ndarray, n: int) -> np.ndarray:
    """Round-half-even of ``s / n`` in exact integer arithmetic."""
    q, r = np.divmod(s, n)
    twice = 2 * r
    round_up = (twice > n) | ((twice == n) & (q % 2 != 0))
    return q + round_up


@lru_cache(maxsize=64)
def _nyquist_signs(n: int) -> np.ndarray:
    """Sign pattern of the DCT's Nyquist row: cos(pi*(2j+1)/4) signs."""
    j = np.arange(n) % 4
    signs = np.where((j == 0) | (j == 3), 1, -1).astype(np.int64)
    signs.setflags(write=False)
    return signs


def _fix_rational_rows(blocks: np.ndarray, out: np.ndarray) -> None:
    """Recompute the exactly-rational coefficient rows in integer math.

    In the stored convention ``DCT(x) / sqrt(N)``, the DC coefficient is
    exactly ``sum(x) / N`` and (for even N) the Nyquist coefficient is
    exactly ``sum(+-x) / N`` -- both can land exactly on a rounding
    half-point, where the float matmul's last-ulp error (which differs
    between BLAS gemv and gemm kernels) would flip ``rint``.  Computing
    the two rows exactly keeps scalar and batched streams bit-identical
    on any BLAS.  ``out`` is modified in place; rows are coefficient
    columns of the ``(n_windows, N)`` layout.
    """
    n = blocks.shape[1]
    out[:, 0] = _rint_div_exact(blocks.sum(axis=1), n)
    if n % 2 == 0:
        out[:, n // 2] = _rint_div_exact(blocks @ _nyquist_signs(n), n)


def _check_variant(variant: str) -> None:
    if variant not in VARIANTS:
        raise CompressionError(
            f"unknown variant {variant!r}; expected one of {VARIANTS}"
        )


def forward_transform(block: np.ndarray, variant: str) -> np.ndarray:
    """Public forward transform in the common 16-bit convention.

    The cycle-level microarchitecture reuses this so the hardware model
    is bit-identical to the functional codec.
    """
    _check_variant(variant)
    return _forward(np.asarray(block, dtype=np.int64), variant)


def inverse_transform(coeffs: np.ndarray, variant: str) -> np.ndarray:
    """Public inverse transform (what the IDCT engine computes)."""
    _check_variant(variant)
    return _inverse(np.asarray(coeffs, dtype=np.int64), variant)


# ---------------------------------------------------------------------------
# Batched (row-wise) transforms: one matmul for a whole window matrix.
#
# These apply the same fixed-point convention as the scalar `_forward` /
# `_inverse` pair, but to a ``(n_windows, window_size)`` matrix in a
# single pass.  The integer path is exact, so it is bit-identical to the
# scalar reference by construction; the float path performs the same
# dot products in float64 and is verified bit-identical by the parity
# test suite.
# ---------------------------------------------------------------------------


def forward_transform_blocks(blocks: np.ndarray, variant: str) -> np.ndarray:
    """Row-wise :func:`forward_transform` of a window matrix (int64 out)."""
    _check_variant(variant)
    blocks = np.asarray(blocks)
    if blocks.ndim != 2:
        raise CompressionError(
            f"expected (n_windows, ws) blocks, got shape {blocks.shape}"
        )
    n = blocks.shape[1]
    if variant == "int-DCT-W":
        if n not in SUPPORTED_SIZES:
            raise CompressionError(
                f"int-DCT-W needs a window in {SUPPORTED_SIZES}, got {n}"
            )
        return int_dct_blocks(blocks).astype(np.int64)
    matrix = dct_matrix(n)
    coeffs = (blocks.astype(np.float64) @ matrix.T) / math.sqrt(n)
    out = np.rint(coeffs).astype(np.int64)
    _fix_rational_rows(np.asarray(blocks, dtype=np.int64), out)
    return out


def inverse_transform_blocks(coeffs: np.ndarray, variant: str) -> np.ndarray:
    """Row-wise :func:`inverse_transform` of a coefficient matrix."""
    _check_variant(variant)
    coeffs = np.asarray(coeffs)
    if coeffs.ndim != 2:
        raise CompressionError(
            f"expected (n_windows, ws) coefficients, got shape {coeffs.shape}"
        )
    n = coeffs.shape[1]
    if variant == "int-DCT-W":
        if n not in SUPPORTED_SIZES:
            raise CompressionError(
                f"int-DCT-W needs a window in {SUPPORTED_SIZES}, got {n}"
            )
        return int_idct_blocks(coeffs).astype(np.int64)
    matrix = dct_matrix(n)
    samples = (coeffs.astype(np.float64) * math.sqrt(n)) @ matrix
    return np.rint(samples).astype(np.int64)
