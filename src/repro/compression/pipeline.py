"""The COMPAQT compression pipeline over pluggable codecs.

Variant dispatch lives in :mod:`repro.compression.codecs`: any
registered codec (the DCT family of Table II, delta, dictionary, or a
third-party registration) flows through the same window / threshold /
RLE machinery below.

Compression (software, compile time -- Section IV-C):

1. quantize the float envelope to 16-bit I/Q codes (memory contents);
2. per window: the codec's forward transform, storing coefficients at
   16-bit width (the DCT family uses a ``1/sqrt(N)`` fixed-point
   convention so any window content fits);
3. hard-threshold small coefficients to zero;
4. fold the trailing zero run of each window into one RLE codeword.

Decompression (hardware, runtime -- Fig 10) is the exact reverse: RLE
expand, inverse transform, stream to the DAC.  :func:`decompress_waveform`
is bit-faithful to the cycle-level engine in :mod:`repro.microarch`.

Both channels of a window are kept at the same stored word count
(Section IV-C: "the number of samples per window after compression are
kept the same for both channels"), so per-window occupancy is the max of
the I and Q occupancies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs import (
    Codec,
    ensure_registered,
    resolve_codec,
    resolve_codec_arg,
)
from repro.compression.metrics import compression_ratio, mean_squared_error
from repro.compression.window import merge_windows, split_windows
from repro.pulses.waveform import Waveform
from repro.transforms.rle import EncodedWindow, rle_encode_window

__all__ = [
    "VARIANTS",
    "CodecLike",
    "VariantLike",
    "DEFAULT_THRESHOLD",
    "CompressedChannel",
    "CompressedWaveform",
    "CompressionResult",
    "compress_waveform",
    "decompress_waveform",
    "compress_channel",
    "decompress_channel",
    "forward_transform",
    "inverse_transform",
    "forward_transform_blocks",
    "inverse_transform_blocks",
]

#: The paper's Table II DCT variants.  Kept as a back-compat constant;
#: the codec registry (:func:`repro.compression.codecs.list_codecs`) is
#: the authoritative catalog and also carries delta and dictionary.
VARIANTS = ("DCT-N", "DCT-W", "int-DCT-W")

#: A codec argument: a registry name or a first-class Codec object.
CodecLike = Union[str, Codec]

#: Legacy spelling of :data:`CodecLike`, kept for annotations written
#: against the pre-``codec=`` API.
VariantLike = CodecLike

#: Default hard threshold in integer-coefficient units (16-bit codes).
#: 128 codes (~0.4% of full scale) keeps every IBM-library window at
#: <= 3 stored words (Fig 11) with MSE in the paper's 1e-7..1e-5 band;
#: Algorithm 1 tunes it per pulse when fidelity-aware mode is on.
DEFAULT_THRESHOLD = 128


@dataclass(frozen=True, slots=True)
class CompressedChannel:
    """One compressed I or Q channel: a sequence of encoded windows."""

    windows: Tuple[EncodedWindow, ...]
    variant: str
    window_size: int
    original_length: int

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def stored_words_variable(self) -> int:
        """ASIC-style packing: every window at its true occupancy."""
        return sum(w.n_words for w in self.windows)

    @property
    def worst_case_words(self) -> int:
        """Largest per-window occupancy (sets the uniform memory width)."""
        return max(w.n_words for w in self.windows)


@dataclass(frozen=True, slots=True)
class CompressedWaveform:
    """A fully compressed waveform (both channels) plus its binding."""

    name: str
    gate: str
    qubits: Tuple[int, ...]
    dt: float
    i_channel: CompressedChannel
    q_channel: CompressedChannel

    def __post_init__(self) -> None:
        if self.i_channel.n_windows != self.q_channel.n_windows:
            raise CompressionError("I and Q channels must have equal window counts")

    @property
    def variant(self) -> str:
        return self.i_channel.variant

    @property
    def window_size(self) -> int:
        return self.i_channel.window_size

    @property
    def n_windows(self) -> int:
        return self.i_channel.n_windows

    @property
    def original_samples(self) -> int:
        return self.i_channel.original_length

    # -- storage accounting --------------------------------------------------

    @property
    def window_words(self) -> Tuple[int, ...]:
        """Per-window occupancy: max of the two channels (Section IV-C)."""
        return tuple(
            max(i.n_words, q.n_words)
            for i, q in zip(self.i_channel.windows, self.q_channel.windows)
        )

    @property
    def worst_case_window_words(self) -> int:
        """The uniform memory width for this waveform (Fig 11's max)."""
        return max(self.window_words)

    def stored_words(self, packing: str = "uniform") -> int:
        """Stored words per channel under the given packing.

        ``"uniform"`` (RFSoC, Section V-A): every window padded to the
        waveform's worst case.  ``"variable"`` (ASIC, Section VII-D):
        windows at true occupancy.
        """
        if packing == "uniform":
            return self.n_windows * self.worst_case_window_words
        if packing == "variable":
            return sum(self.window_words)
        raise CompressionError(f"unknown packing {packing!r}")

    def compression_ratio(self, packing: str = "uniform") -> float:
        """R = original samples / stored words (per channel; the I+Q
        factor of two cancels)."""
        return compression_ratio(self.original_samples, self.stored_words(packing))

    @property
    def stored_bits(self) -> int:
        """Total compressed footprint (both channels, uniform packing,
        16-bit words)."""
        return 2 * 16 * self.stored_words("uniform")


@dataclass(frozen=True, slots=True)
class CompressionResult:
    """Everything a caller needs after compressing one waveform."""

    compressed: CompressedWaveform
    reconstructed: Waveform
    mse: float
    threshold: float

    @property
    def compression_ratio(self) -> float:
        """Uniform-packing ratio (the paper's headline R)."""
        return self.compressed.compression_ratio("uniform")

    @property
    def compression_ratio_variable(self) -> float:
        return self.compressed.compression_ratio("variable")


# ---------------------------------------------------------------------------
# Channel-level codec.
# ---------------------------------------------------------------------------


def compress_channel(
    codes: np.ndarray,
    window_size: int,
    codec: Optional[CodecLike] = None,
    threshold: float = DEFAULT_THRESHOLD,
    max_coefficients: int = 0,
    *,
    variant: Optional[CodecLike] = None,
) -> CompressedChannel:
    """Compress one int16 channel into encoded windows.

    Args:
        codes: Quantized samples (int16 range).
        window_size: Window length; for a full-frame codec (DCT-N) pass
            the channel length.
        codec: A registered codec name or a :class:`Codec` object.
        threshold: Hard threshold in coefficient units.
        max_coefficients: If positive, additionally keep only the k
            largest-magnitude coefficients per window.  This enforces a
            hard uniform memory width of ``k + 1`` words (Section V-A's
            fixed input-buffer design) at the cost of extra distortion
            -- the mechanism behind Fig 15's WS=8 fidelity losses.
        variant: Deprecated alias for ``codec``.
    """
    codec = resolve_codec_arg(codec, variant)
    if codec is None:
        raise CompressionError("compress_channel requires a codec")
    codec = ensure_registered(resolve_codec(codec))
    if max_coefficients < 0:
        raise CompressionError(
            f"max_coefficients must be >= 0, got {max_coefficients}"
        )
    if threshold < 0:
        raise CompressionError(f"threshold must be >= 0, got {threshold}")
    codes = np.asarray(codes, dtype=np.int64)
    blocks = split_windows(codes, window_size)
    encoded: List[EncodedWindow] = []
    for block in blocks:
        coeffs = codec.forward(block)
        kept = codec.threshold_blocks(coeffs.reshape(1, -1), threshold)
        if max_coefficients:
            kept = codec.top_k_blocks(kept, max_coefficients)
        encoded.append(rle_encode_window(kept[0]))
    return CompressedChannel(
        windows=tuple(encoded),
        variant=codec.name,
        window_size=window_size,
        original_length=int(codes.size),
    )


def decompress_channel(channel: CompressedChannel) -> np.ndarray:
    """Reconstruct the int16 sample codes of one channel."""
    codec = resolve_codec(channel.variant)
    width = codec.coeff_count(channel.window_size)
    blocks = []
    for window in channel.windows:
        # _expand_window returns the full zero-padded width-length vector.
        blocks.append(codec.inverse(_expand_window(window, width)))
    return merge_windows(np.asarray(blocks), channel.original_length)


def _expand_window(window: EncodedWindow, window_size: int) -> np.ndarray:
    if window.window_size != window_size:
        raise CompressionError(
            f"window decodes to {window.window_size} samples, expected {window_size}"
        )
    from repro.transforms.rle import rle_decode_window

    return rle_decode_window(window)


# ---------------------------------------------------------------------------
# Waveform-level API.
# ---------------------------------------------------------------------------


def compress_waveform(
    waveform: Waveform,
    window_size: int = 16,
    codec: Optional[CodecLike] = None,
    threshold: float = DEFAULT_THRESHOLD,
    max_coefficients: int = 0,
    *,
    variant: Optional[CodecLike] = None,
) -> CompressionResult:
    """Compress a waveform and report reconstruction quality.

    Args:
        waveform: The pulse to compress.
        window_size: Codec window (8/16/32 for the DCT family); ignored
            by full-frame codecs (DCT-N), which use the waveform length.
        codec: A registered codec name (``"int-DCT-W"``, ``"delta"``,
            ...) or a :class:`~repro.compression.codecs.Codec` object;
            defaults to ``"int-DCT-W"``.
        threshold: Hard threshold in integer coefficient units.
        max_coefficients: Optional per-window top-k cap (see
            :func:`compress_channel`).
        variant: Deprecated alias for ``codec``.

    Returns:
        A :class:`CompressionResult` carrying the compressed form, the
        decompressed (as-played) waveform, MSE and R.
    """
    codec = resolve_codec(resolve_codec_arg(codec, variant, default="int-DCT-W"))
    window_size = codec.resolve_window_size(waveform.n_samples, window_size)
    codec.check_window_size(window_size)
    if threshold < 0:
        raise CompressionError(f"threshold must be >= 0, got {threshold}")
    i_codes, q_codes = waveform.to_fixed_point()
    i_channel = compress_channel(
        i_codes, window_size, codec, threshold, max_coefficients
    )
    q_channel = compress_channel(
        q_codes, window_size, codec, threshold, max_coefficients
    )
    compressed = CompressedWaveform(
        name=waveform.name,
        gate=waveform.gate,
        qubits=waveform.qubits,
        dt=waveform.dt,
        i_channel=i_channel,
        q_channel=q_channel,
    )
    reconstructed = decompress_waveform(compressed)
    return CompressionResult(
        compressed=compressed,
        reconstructed=reconstructed,
        mse=mean_squared_error(waveform.samples, reconstructed.samples),
        threshold=threshold,
    )


def decompress_waveform(compressed: CompressedWaveform) -> Waveform:
    """Reconstruct the playable waveform from its compressed form.

    This is the functional model of the hardware decompression pipeline;
    :mod:`repro.microarch.pipeline_sim` produces bit-identical samples
    cycle by cycle.
    """
    i_codes = decompress_channel(compressed.i_channel)
    q_codes = decompress_channel(compressed.q_channel)
    return Waveform.from_fixed_point(
        np.clip(i_codes, -32768, 32767).astype(np.int16),
        np.clip(q_codes, -32768, 32767).astype(np.int16),
        dt=compressed.dt,
        name=f"{compressed.name}~{compressed.variant}",
        gate=compressed.gate,
        qubits=compressed.qubits,
    )


# ---------------------------------------------------------------------------
# Transform entry points, kept for API stability.
#
# All dispatch lives in :mod:`repro.compression.codecs`; these wrappers
# resolve the codec (name or object) and delegate to its kernels.  The
# cycle-level microarchitecture reuses them so the hardware model is
# bit-identical to the functional codec.
# ---------------------------------------------------------------------------


def _transform_codec(
    codec: Optional[CodecLike], variant: Optional[CodecLike]
) -> Codec:
    codec = resolve_codec_arg(codec, variant, stacklevel=4)
    if codec is None:
        raise CompressionError("transform entry points require a codec")
    return resolve_codec(codec)


def forward_transform(
    block: np.ndarray,
    codec: Optional[CodecLike] = None,
    *,
    variant: Optional[CodecLike] = None,
) -> np.ndarray:
    """Public forward transform in the common 16-bit convention."""
    return _transform_codec(codec, variant).forward(
        np.asarray(block, dtype=np.int64)
    )


def inverse_transform(
    coeffs: np.ndarray,
    codec: Optional[CodecLike] = None,
    *,
    variant: Optional[CodecLike] = None,
) -> np.ndarray:
    """Public inverse transform (what the IDCT engine computes)."""
    return _transform_codec(codec, variant).inverse(
        np.asarray(coeffs, dtype=np.int64)
    )


def forward_transform_blocks(
    blocks: np.ndarray,
    codec: Optional[CodecLike] = None,
    *,
    variant: Optional[CodecLike] = None,
) -> np.ndarray:
    """Row-wise :func:`forward_transform` of a window matrix (int64 out)."""
    return _transform_codec(codec, variant).forward_blocks(blocks)


def inverse_transform_blocks(
    coeffs: np.ndarray,
    codec: Optional[CodecLike] = None,
    *,
    variant: Optional[CodecLike] = None,
) -> np.ndarray:
    """Row-wise :func:`inverse_transform` of a coefficient matrix."""
    return _transform_codec(codec, variant).inverse_blocks(coeffs)
