"""Compression quality metrics (Fig 7's R and MSE).

R is always ``old size / new size`` on the *stored* representation;
MSE is measured between the original and reconstructed float waveforms,
the quantity Algorithm 1 drives to a target because it tracks gate
fidelity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mean_squared_error", "compression_ratio", "signal_to_noise_db"]


def mean_squared_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """MSE over complex samples (I and Q errors combined)."""
    original = np.asarray(original, dtype=np.complex128)
    reconstructed = np.asarray(reconstructed, dtype=np.complex128)
    if original.shape != reconstructed.shape:
        raise ValueError(f"shape mismatch: {original.shape} vs {reconstructed.shape}")
    diff = original - reconstructed
    return float(np.mean(diff.real**2 + diff.imag**2))


def compression_ratio(original_words: int, stored_words: int) -> float:
    """R = old size / new size; stored size is floored at one word."""
    if original_words < 1:
        raise ValueError(f"original size must be positive, got {original_words}")
    return original_words / max(1, stored_words)


def signal_to_noise_db(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Reconstruction SNR in dB (infinite for exact reconstruction)."""
    original = np.asarray(original, dtype=np.complex128)
    noise = mean_squared_error(original, reconstructed)
    signal = float(np.mean(original.real**2 + original.imag**2))
    if noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)
