"""Windowing helpers shared by the compression pipelines.

The windowed DCT (DCT-W / int-DCT-W) splits a waveform channel into
fixed-size windows, zero-padding the tail (Section IV-C).  DCT-N treats
the whole waveform as a single window.
"""

from __future__ import annotations


import numpy as np

from repro.errors import CompressionError

__all__ = ["split_windows", "merge_windows", "n_windows"]


def n_windows(length: int, window_size: int) -> int:
    """Window count covering ``length`` samples (ceil division)."""
    if length < 1:
        raise CompressionError(f"need at least one sample, got {length}")
    if window_size < 1:
        raise CompressionError(f"window size must be >= 1, got {window_size}")
    return -(-length // window_size)


def split_windows(values: np.ndarray, window_size: int) -> np.ndarray:
    """Reshape a 1-D integer channel into ``(n_windows, window_size)``.

    The tail window is zero-padded; callers record the original length
    so :func:`merge_windows` can truncate.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise CompressionError(f"expected a 1-D channel, got {values.shape}")
    count = n_windows(values.size, window_size)
    padded = np.zeros(count * window_size, dtype=values.dtype)
    padded[: values.size] = values
    return padded.reshape(count, window_size)


def merge_windows(blocks: np.ndarray, original_length: int) -> np.ndarray:
    """Flatten windows back to a channel, dropping the zero padding."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 2:
        raise CompressionError(f"expected (n, ws) windows, got {blocks.shape}")
    flat = blocks.reshape(-1)
    if original_length > flat.size:
        raise CompressionError(
            f"original length {original_length} exceeds decoded {flat.size}"
        )
    return flat[:original_length]
