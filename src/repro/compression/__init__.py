"""Compression pipeline, pluggable codec registry, and memory packing."""

from repro.compression.codecs import (
    Codec,
    get_codec,
    list_codecs,
    register_codec,
    resolve_codec,
)
from repro.compression.pipeline import (
    VARIANTS,
    DEFAULT_THRESHOLD,
    CompressedChannel,
    CompressedWaveform,
    CompressionResult,
    compress_waveform,
    decompress_waveform,
    compress_channel,
    decompress_channel,
)
from repro.compression.batch import (
    BatchCompressionResult,
    compress_batch,
    decompress_batch,
    decompress_channels,
)
from repro.compression.bitstream import (
    LibraryBitstream,
    LibraryEntry,
    parse_library,
    parse_library_scalar,
    parse_waveform,
    parse_waveform_scalar,
    serialize_library,
    serialize_waveform,
)
from repro.compression.fastpath import (
    decode_library_bytes,
    decode_record_bytes,
    decode_records,
)
from repro.compression.window import split_windows, merge_windows, n_windows
from repro.compression.metrics import (
    mean_squared_error,
    compression_ratio,
    signal_to_noise_db,
)
from repro.compression.packing import (
    brams_per_stream_uncompressed,
    brams_per_stream_compaqt,
    idct_engines_needed,
    BankLayout,
    pack_waveform,
)
from repro.compression.overlap import (
    OverlappingChannel,
    OverlappingCompressionResult,
    compress_channel_overlapping,
    decompress_channel_overlapping,
    compress_waveform_overlapping,
)

__all__ = [
    "Codec",
    "get_codec",
    "list_codecs",
    "register_codec",
    "resolve_codec",
    "VARIANTS",
    "DEFAULT_THRESHOLD",
    "CompressedChannel",
    "CompressedWaveform",
    "CompressionResult",
    "compress_waveform",
    "decompress_waveform",
    "compress_channel",
    "decompress_channel",
    "BatchCompressionResult",
    "compress_batch",
    "decompress_batch",
    "decompress_channels",
    "LibraryBitstream",
    "LibraryEntry",
    "parse_library",
    "parse_library_scalar",
    "parse_waveform",
    "parse_waveform_scalar",
    "serialize_library",
    "serialize_waveform",
    "decode_library_bytes",
    "decode_record_bytes",
    "decode_records",
    "split_windows",
    "merge_windows",
    "n_windows",
    "mean_squared_error",
    "compression_ratio",
    "signal_to_noise_db",
    "brams_per_stream_uncompressed",
    "brams_per_stream_compaqt",
    "idct_engines_needed",
    "BankLayout",
    "pack_waveform",
    "OverlappingChannel",
    "OverlappingCompressionResult",
    "compress_channel_overlapping",
    "decompress_channel_overlapping",
    "compress_waveform_overlapping",
]
