"""Batched compression engine: one vectorized pass for many waveforms.

The scalar pipeline in :mod:`repro.compression.pipeline` compresses one
window at a time -- fine for a single pulse, but the compiler walks
whole device libraries (hundreds of pulses, tens of thousands of
windows) every calibration cycle.  This module stacks every window of
every channel of every pulse into a single ``(n_windows, window_size)``
matrix and runs each pipeline stage once:

1. quantize all envelopes to int16 I/Q codes;
2. one call into the codec's vectorized forward kernel (one matmul for
   the DCT family, one pass of integer arithmetic for delta/dictionary);
3. one vectorized hard-threshold (plus optional top-k cap);
4. one vectorized trailing-zero reduction feeding the RLE encoder;
5. one inverse block-kernel call to reconstruct the as-played samples.

The result is a :class:`BatchCompressionResult` whose per-pulse entries
are ordinary :class:`~repro.compression.pipeline.CompressionResult`
objects, bit-identical to what :func:`compress_waveform` produces pulse
by pulse (the scalar path remains the reference implementation; the
parity test suite holds the two paths equal window for window).

DCT-N has no fixed window -- its "window" is the full pulse -- so the
engine groups pulses by length and runs one matmul per distinct length,
which on real libraries (two or three distinct durations) is still a
handful of matmuls total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs import (
    ensure_registered,
    resolve_codec,
    resolve_codec_arg,
)
from repro.compression.metrics import mean_squared_error
from repro.compression.pipeline import (
    DEFAULT_THRESHOLD,
    CompressedChannel,
    CompressedWaveform,
    CompressionResult,
    VariantLike,
)
from repro.compression.window import merge_windows, split_windows
from repro.pulses.waveform import Waveform
from repro.transforms.rle import rle_encode_blocks, rle_expand_blocks

__all__ = [
    "BatchCompressionResult",
    "compress_batch",
    "decompress_channels",
    "decompress_batch",
]


@dataclass(frozen=True)
class BatchCompressionResult:
    """Results of one batched compression pass over many waveforms.

    Per-pulse provenance is preserved: ``results[i]`` is the full
    :class:`CompressionResult` for ``waveforms[i]``, so any caller that
    consumed the scalar API can consume a batch entry unchanged.
    """

    results: Tuple[CompressionResult, ...]
    variant: str
    window_size: int
    threshold: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> CompressionResult:
        return self.results[index]

    def result_for(self, name: str) -> CompressionResult:
        """Look up one pulse's result by waveform name."""
        for result in self.results:
            if result.compressed.name == name:
                return result
        raise CompressionError(f"no batch entry named {name!r}")

    # -- aggregate metrics ---------------------------------------------------

    @property
    def n_pulses(self) -> int:
        return len(self.results)

    @property
    def total_samples(self) -> int:
        """Original complex samples across all pulses."""
        return sum(r.compressed.original_samples for r in self.results)

    def total_stored_words(self, packing: str = "uniform") -> int:
        return sum(r.compressed.stored_words(packing) for r in self.results)

    def overall_ratio(self, packing: str = "uniform") -> float:
        """Library-level R: total old size / total new size."""
        stored = self.total_stored_words(packing)
        if stored == 0:
            raise CompressionError("empty batch compression result")
        return self.total_samples / stored

    @property
    def mean_mse(self) -> float:
        return float(np.mean([r.mse for r in self.results]))

    @property
    def max_mse(self) -> float:
        return float(np.max([r.mse for r in self.results]))


def compress_batch(
    waveforms: Sequence[Waveform],
    window_size: int = 16,
    codec: Optional[VariantLike] = None,
    threshold: float = DEFAULT_THRESHOLD,
    max_coefficients: int = 0,
    *,
    variant: Optional[VariantLike] = None,
) -> BatchCompressionResult:
    """Compress many waveforms in one vectorized pass.

    Args:
        waveforms: The pulses to compress (e.g. a whole device library).
        window_size: Codec window (8/16/32 for the DCT family); ignored
            by full-frame codecs (DCT-N), which use each pulse's length.
        codec: A registered codec name or a
            :class:`~repro.compression.codecs.Codec` object; defaults
            to ``"int-DCT-W"``.
        threshold: Hard threshold in integer coefficient units.
        max_coefficients: Optional per-window top-k cap.
        variant: Deprecated alias for ``codec``.

    Returns:
        A :class:`BatchCompressionResult` whose entries are bit-identical
        to per-pulse :func:`~repro.compression.pipeline.compress_waveform`
        calls with the same configuration.
    """
    codec = resolve_codec_arg(codec, variant, default="int-DCT-W")
    codec = ensure_registered(resolve_codec(codec))
    if not waveforms:
        raise CompressionError("cannot batch-compress an empty waveform list")
    if threshold < 0:
        raise CompressionError(f"threshold must be >= 0, got {threshold}")
    if max_coefficients < 0:
        raise CompressionError(
            f"max_coefficients must be >= 0, got {max_coefficients}"
        )
    if codec.windowed:
        codec.check_window_size(window_size)

    # Quantize every envelope and split each channel into windows.  A
    # "channel" here is one of the 2 * n_pulses int16 streams; channels
    # are concatenated in (pulse, I-then-Q) order so slices recover
    # per-pulse provenance.
    channels: List[np.ndarray] = []  # int64 codes, one entry per channel
    lengths: List[int] = []  # original sample count per channel
    pulse_window_sizes: List[int] = []
    for waveform in waveforms:
        ws = codec.resolve_window_size(waveform.n_samples, window_size)
        pulse_window_sizes.append(ws)
        i_codes, q_codes = waveform.to_fixed_point()
        channels.append(np.asarray(i_codes, dtype=np.int64))
        channels.append(np.asarray(q_codes, dtype=np.int64))
        lengths.extend([i_codes.size, q_codes.size])

    # Group channels by window size (one group for windowed codecs;
    # one group per distinct pulse length for full-frame codecs), then
    # run every pipeline stage once per group.
    groups: Dict[int, List[int]] = {}
    for index, codes in enumerate(channels):
        ws = pulse_window_sizes[index // 2]
        groups.setdefault(ws, []).append(index)

    encoded_by_channel: List[Tuple] = [None] * len(channels)
    recon_by_channel: List[np.ndarray] = [None] * len(channels)
    for ws, indices in groups.items():
        blocks_per_channel = [
            split_windows(channels[i], ws) for i in indices
        ]
        counts = [b.shape[0] for b in blocks_per_channel]
        stacked = np.vstack(blocks_per_channel)

        coeffs = codec.forward_blocks(stacked)
        kept = codec.threshold_blocks(coeffs, threshold)
        if max_coefficients:
            kept = codec.top_k_blocks(kept, max_coefficients)
        encoded = rle_encode_blocks(kept)
        recon = codec.inverse_blocks(kept)

        offset = 0
        for i, count in zip(indices, counts):
            encoded_by_channel[i] = tuple(encoded[offset : offset + count])
            recon_by_channel[i] = merge_windows(
                recon[offset : offset + count], lengths[i]
            )
            offset += count

    # Reassemble per-pulse results in the scalar pipeline's exact shape.
    results: List[CompressionResult] = []
    for p, waveform in enumerate(waveforms):
        ws = pulse_window_sizes[p]
        i_index, q_index = 2 * p, 2 * p + 1
        compressed = CompressedWaveform(
            name=waveform.name,
            gate=waveform.gate,
            qubits=waveform.qubits,
            dt=waveform.dt,
            i_channel=CompressedChannel(
                windows=encoded_by_channel[i_index],
                variant=codec.name,
                window_size=ws,
                original_length=lengths[i_index],
            ),
            q_channel=CompressedChannel(
                windows=encoded_by_channel[q_index],
                variant=codec.name,
                window_size=ws,
                original_length=lengths[q_index],
            ),
        )
        reconstructed = Waveform.from_fixed_point(
            np.clip(recon_by_channel[i_index], -32768, 32767).astype(np.int16),
            np.clip(recon_by_channel[q_index], -32768, 32767).astype(np.int16),
            dt=waveform.dt,
            name=f"{waveform.name}~{codec.name}",
            gate=waveform.gate,
            qubits=waveform.qubits,
        )
        results.append(
            CompressionResult(
                compressed=compressed,
                reconstructed=reconstructed,
                mse=mean_squared_error(waveform.samples, reconstructed.samples),
                threshold=threshold,
            )
        )
    return BatchCompressionResult(
        results=tuple(results),
        variant=codec.name,
        window_size=window_size,
        threshold=threshold,
    )


# ---------------------------------------------------------------------------
# Batched decode: the symmetric half of the engine.
#
# The scalar reference (`decompress_channel`) expands and inverts one
# window at a time; playing back a whole device library that way costs
# one Python iteration (and one tiny matmul) per window.  The batched
# path stacks every window of every channel into one matrix, expands all
# RLE runs with a single scatter, and inverts the lot with one matmul
# per distinct window size -- bit-identical to the scalar path, which
# the conformance suite and the bench decode-parity gate both enforce.
# ---------------------------------------------------------------------------


def decompress_channels(channels: Sequence[CompressedChannel]) -> List[np.ndarray]:
    """Batched :func:`~repro.compression.pipeline.decompress_channel`.

    All windows of all channels are grouped by ``(window_size, variant)``
    (one group for a homogeneous library; one per distinct pulse length
    for DCT-N), RLE-expanded in one pass and inverted in one matmul per
    group.  Entry ``i`` of the returned list is bit-identical to
    ``decompress_channel(channels[i])``.
    """
    channels = list(channels)
    if not channels:
        raise CompressionError("cannot batch-decompress an empty channel list")

    groups: Dict[Tuple[int, str], List[int]] = {}
    for index, channel in enumerate(channels):
        groups.setdefault((channel.window_size, channel.variant), []).append(index)

    codes: List[np.ndarray] = [None] * len(channels)
    for (ws, variant), indices in groups.items():
        codec = resolve_codec(variant)
        counts = [channels[i].n_windows for i in indices]
        stacked_windows = [w for i in indices for w in channels[i].windows]
        coeffs = rle_expand_blocks(stacked_windows, codec.coeff_count(ws))
        recon = codec.inverse_blocks(coeffs)
        offset = 0
        for i, count in zip(indices, counts):
            codes[i] = merge_windows(
                recon[offset : offset + count], channels[i].original_length
            )
            offset += count
    return codes


def decompress_batch(
    compressed: "BatchCompressionResult | Sequence",
) -> Tuple[Waveform, ...]:
    """Decompress many waveforms in one vectorized pass.

    Args:
        compressed: A :class:`BatchCompressionResult`, or any sequence of
            :class:`~repro.compression.pipeline.CompressedWaveform` /
            :class:`~repro.compression.pipeline.CompressionResult`
            entries (mixed variants and window sizes are fine).

    Returns:
        One reconstructed :class:`~repro.pulses.waveform.Waveform` per
        input, bit-identical to calling
        :func:`~repro.compression.pipeline.decompress_waveform` on each
        entry individually.
    """
    if isinstance(compressed, BatchCompressionResult):
        entries = [r.compressed for r in compressed]
    else:
        entries = [
            e.compressed if isinstance(e, CompressionResult) else e
            for e in compressed
        ]
    if not entries:
        raise CompressionError("cannot batch-decompress an empty waveform list")
    for entry in entries:
        if not isinstance(entry, CompressedWaveform):
            raise CompressionError(
                f"expected CompressedWaveform entries, got {type(entry).__name__}"
            )

    channels: List = []
    for entry in entries:
        channels.append(entry.i_channel)
        channels.append(entry.q_channel)
    codes = decompress_channels(channels)

    waveforms: List[Waveform] = []
    for p, entry in enumerate(entries):
        waveforms.append(
            Waveform.from_fixed_point(
                np.clip(codes[2 * p], -32768, 32767).astype(np.int16),
                np.clip(codes[2 * p + 1], -32768, 32767).astype(np.int16),
                dt=entry.dt,
                name=f"{entry.name}~{entry.variant}",
                gate=entry.gate,
                qubits=entry.qubits,
            )
        )
    return tuple(waveforms)
