"""The DCT codec family: DCT-N, DCT-W and int-DCT-W (Table II).

All three share the 16-bit fixed-point convention: stored coefficients
approximate ``DCT(x) / sqrt(N)``, which is bounded by ``max|x|``
(Cauchy-Schwarz), so every window fits 16-bit storage.  The integer
path realizes the same convention through the HEVC forward shift of
``6 + log2(N)`` bits.

The float codecs keep *separate* scalar and block kernels on purpose:
the scalar kernel is the per-window reference (one gemv per window),
the block kernel is one gemm for the whole matrix, and the exactly-
rational coefficient rows (DC and, for even N, Nyquist) are recomputed
in integer math so the two stay bit-identical on any BLAS -- see
:func:`_fix_rational_rows`.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs.base import Codec
from repro.transforms.dct import dct_matrix
from repro.transforms.integer_dct import (
    SUPPORTED_SIZES,
    int_dct,
    int_dct_blocks,
    int_idct,
    int_idct_blocks,
)

__all__ = ["FloatDctCodec", "IntDctCodec"]


def _rint_div_exact(s: np.ndarray, n: int) -> np.ndarray:
    """Round-half-even of ``s / n`` in exact integer arithmetic."""
    q, r = np.divmod(s, n)
    twice = 2 * r
    round_up = (twice > n) | ((twice == n) & (q % 2 != 0))
    return q + round_up


@lru_cache(maxsize=64)
def _nyquist_signs(n: int) -> np.ndarray:
    """Sign pattern of the DCT's Nyquist row: cos(pi*(2j+1)/4) signs."""
    j = np.arange(n) % 4
    signs = np.where((j == 0) | (j == 3), 1, -1).astype(np.int64)
    signs.setflags(write=False)
    return signs


def _fix_rational_rows(blocks: np.ndarray, out: np.ndarray) -> None:
    """Recompute the exactly-rational coefficient rows in integer math.

    In the stored convention ``DCT(x) / sqrt(N)``, the DC coefficient is
    exactly ``sum(x) / N`` and (for even N) the Nyquist coefficient is
    exactly ``sum(+-x) / N`` -- both can land exactly on a rounding
    half-point, where the float matmul's last-ulp error (which differs
    between BLAS gemv and gemm kernels) would flip ``rint``.  Computing
    the two rows exactly keeps scalar and batched streams bit-identical
    on any BLAS.  ``out`` is modified in place; rows are coefficient
    columns of the ``(n_windows, N)`` layout.
    """
    n = blocks.shape[1]
    out[:, 0] = _rint_div_exact(blocks.sum(axis=1), n)
    if n % 2 == 0:
        out[:, n // 2] = _rint_div_exact(blocks @ _nyquist_signs(n), n)


class FloatDctCodec(Codec):
    """Float64 orthonormal DCT-II, rounded to integer coefficients.

    One class serves both Table II float variants: ``DCT-N`` treats the
    whole waveform as a single window (``windowed=False``), ``DCT-W``
    uses fixed windows.
    """

    batchable = True
    exact_rational_rows = True
    lossless = False

    def __init__(self, name: str, wire_id: int, windowed: bool) -> None:
        self.name = name
        self.wire_id = wire_id
        self.windowed = windowed
        self.supported_window_sizes = SUPPORTED_SIZES if windowed else None

    def forward(self, block: np.ndarray) -> np.ndarray:
        block = self._require_1d(block, "window")
        n = block.size
        matrix = dct_matrix(n)
        coeffs = (matrix @ block.astype(np.float64)) / math.sqrt(n)
        out = np.rint(coeffs).astype(np.int64)
        _fix_rational_rows(block.reshape(1, -1), out.reshape(1, -1))
        return out

    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_1d(coeffs, "coefficient window")
        n = coeffs.size
        matrix = dct_matrix(n)
        samples = matrix.T @ (coeffs.astype(np.float64) * math.sqrt(n))
        return np.rint(samples).astype(np.int64)

    def forward_blocks(self, blocks: np.ndarray) -> np.ndarray:
        blocks = self._require_2d(blocks, "blocks")
        n = blocks.shape[1]
        matrix = dct_matrix(n)
        coeffs = (blocks.astype(np.float64) @ matrix.T) / math.sqrt(n)
        out = np.rint(coeffs).astype(np.int64)
        _fix_rational_rows(blocks, out)
        return out

    def inverse_blocks(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_2d(coeffs, "coefficients")
        n = coeffs.shape[1]
        matrix = dct_matrix(n)
        samples = (coeffs.astype(np.float64) * math.sqrt(n)) @ matrix
        return np.rint(samples).astype(np.int64)


class IntDctCodec(Codec):
    """HEVC-style integer DCT (``int-DCT-W``) -- the paper's hardware pick.

    Exact int64 arithmetic end to end, so the block kernels are
    bit-identical to the scalar ones by construction and no rational-row
    fixup is needed.
    """

    name = "int-DCT-W"
    wire_id = 2
    windowed = True
    batchable = True
    exact_rational_rows = False
    lossless = False
    supported_window_sizes = SUPPORTED_SIZES

    def _check_transform_size(self, n: int) -> None:
        if n not in SUPPORTED_SIZES:
            raise CompressionError(
                f"{self.name} needs a window in {SUPPORTED_SIZES}, got {n}"
            )

    def forward(self, block: np.ndarray) -> np.ndarray:
        block = self._require_1d(block, "window")
        self._check_transform_size(block.size)
        return int_dct(block).astype(np.int64)

    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_1d(coeffs, "coefficient window")
        self._check_transform_size(coeffs.size)
        return int_idct(coeffs).astype(np.int64)

    def forward_blocks(self, blocks: np.ndarray) -> np.ndarray:
        blocks = self._require_2d(blocks, "blocks")
        self._check_transform_size(blocks.shape[1])
        return int_dct_blocks(blocks).astype(np.int64)

    def inverse_blocks(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_2d(coeffs, "coefficients")
        self._check_transform_size(coeffs.shape[1])
        return int_idct_blocks(coeffs).astype(np.int64)
