"""The codec registry: one place where variant names resolve.

Every consumer -- scalar pipeline, batch engine, bitstream, compiler,
CLI, bench -- resolves codecs here instead of string-matching variant
names.  Registering a codec therefore plugs it into the whole stack at
once:

    >>> from repro.compression.codecs import Codec, register_codec
    >>> class MyCodec(Codec):
    ...     name = "my-scheme"
    ...     wire_id = 17
    ...     ...
    >>> register_codec(MyCodec())
    >>> compress_waveform(wf, variant="my-scheme")  # now works everywhere
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple, Union

from repro.errors import CompressionError
from repro.compression.codecs.base import Codec

__all__ = [
    "register_codec",
    "unregister_codec",
    "get_codec",
    "resolve_codec",
    "resolve_codec_arg",
    "ensure_registered",
    "list_codecs",
    "codec_for_wire_id",
]

_BY_NAME: Dict[str, Codec] = {}
_BY_WIRE_ID: Dict[int, Codec] = {}


def register_codec(codec: Codec, replace: bool = False) -> Codec:
    """Add a codec to the registry; returns it for chaining.

    Args:
        codec: A :class:`Codec` instance with a non-empty ``name`` and a
            wire id in 0..255 that no other codec claims.
        replace: Allow re-registering an existing name/wire id (useful
            for tests and experimentation).
    """
    if not isinstance(codec, Codec):
        raise CompressionError(
            f"expected a Codec instance, got {type(codec).__name__}"
        )
    if not codec.name:
        raise CompressionError("codec must define a non-empty name")
    if not 0 <= codec.wire_id <= 0xFF:
        raise CompressionError(
            f"codec {codec.name!r} wire id {codec.wire_id} does not fit "
            f"the u8 bitstream header"
        )
    if not replace:
        if codec.name in _BY_NAME:
            raise CompressionError(f"codec {codec.name!r} is already registered")
        if codec.wire_id in _BY_WIRE_ID:
            raise CompressionError(
                f"wire id {codec.wire_id} is already taken by "
                f"{_BY_WIRE_ID[codec.wire_id].name!r}"
            )
    else:
        # Drop any previous holder of this name or wire id so the two
        # indices never disagree.
        previous = _BY_NAME.pop(codec.name, None)
        if previous is not None:
            _BY_WIRE_ID.pop(previous.wire_id, None)
        shadowed = _BY_WIRE_ID.pop(codec.wire_id, None)
        if shadowed is not None:
            _BY_NAME.pop(shadowed.name, None)
    _BY_NAME[codec.name] = codec
    _BY_WIRE_ID[codec.wire_id] = codec
    return codec


def unregister_codec(name: str) -> None:
    """Remove a codec by name (primarily for tests)."""
    codec = _BY_NAME.pop(name, None)
    if codec is None:
        raise CompressionError(f"codec {name!r} is not registered")
    _BY_WIRE_ID.pop(codec.wire_id, None)


def list_codecs() -> Tuple[str, ...]:
    """Registered codec names, in wire-id order."""
    return tuple(
        codec.name for _id, codec in sorted(_BY_WIRE_ID.items())
    )


def get_codec(name: str) -> Codec:
    """Look up a codec by its registry name.

    Raises :class:`CompressionError` naming the registered codecs when
    the name is unknown -- the message every legacy ``variant=`` string
    error now routes through.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; registered codecs: {list_codecs()}"
        ) from None


def resolve_codec(variant: Union[str, Codec]) -> Codec:
    """Resolve a codec name *or* pass a codec object through.

    This is the single entry point that keeps ``variant="int-DCT-W"``-
    style string arguments working everywhere while also accepting
    first-class :class:`Codec` objects.  An object passes through
    unchanged, but the compress entry points additionally require it to
    be *registered* (:func:`ensure_registered`): compressed channels,
    the batch decoder and the bitstream all resolve codecs back by
    name, so an unregistered object would fail later and further away.
    """
    if isinstance(variant, Codec):
        return variant
    if not isinstance(variant, str):
        raise CompressionError(
            f"variant must be a codec name or Codec instance, "
            f"got {type(variant).__name__}"
        )
    return get_codec(variant)


def resolve_codec_arg(
    codec: Optional[Union[str, Codec]] = None,
    variant: Optional[Union[str, Codec]] = None,
    default: Optional[Union[str, Codec]] = None,
    stacklevel: int = 3,
) -> Optional[Union[str, Codec]]:
    """Merge the ``codec=`` and legacy ``variant=`` spellings of one arg.

    Every public entry point that historically took ``variant=`` now
    takes ``codec=`` and routes both spellings through this helper, so
    the deprecation lives in exactly one place.  Passing ``variant=``
    emits a single :class:`DeprecationWarning` (pointed at the caller
    via ``stacklevel``); passing both is an error; passing neither
    yields ``default``.
    """
    if variant is not None:
        if codec is not None:
            raise CompressionError(
                "pass codec=..., not both codec= and the deprecated variant="
            )
        warnings.warn(
            "the variant= argument is deprecated; pass codec= instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return variant
    if codec is not None:
        return codec
    return default


def ensure_registered(codec: Codec) -> Codec:
    """Raise unless this exact codec instance is reachable by its name.

    Called by the compress entry points so that handing in an
    unregistered (or stale, replaced) :class:`Codec` object fails
    immediately with a clear message instead of mid-reconstruction or
    at serialization time.
    """
    if _BY_NAME.get(codec.name) is not codec:
        raise CompressionError(
            f"codec {codec.name!r} is not registered; call "
            f"register_codec() first so the decode, batch and bitstream "
            f"layers can resolve it by name"
        )
    return codec


def codec_for_wire_id(wire_id: int) -> Codec:
    """Resolve a bitstream codec id back to its codec."""
    try:
        return _BY_WIRE_ID[wire_id]
    except KeyError:
        raise CompressionError(
            f"unknown codec id {wire_id}; known ids: "
            f"{sorted(_BY_WIRE_ID)}"
        ) from None
