"""The dictionary codec: per-window mode dictionary plus residuals.

Two related pieces live here, both single-sourced in this module (the
old :mod:`repro.transforms.dictionary` island is now a deprecation
shim): the :class:`DictionaryCodec` pipeline codec, and the paper's
frequency-dictionary baseline (:func:`dictionary_compress` /
:func:`dictionary_decompress`, the hit-rate study showing that waveform
samples "can have arbitrary values, which rarely repeat").

The codec promotes that baseline to a first-class pipeline stage.
Each window carries a one-entry dictionary -- its most frequent sample
value -- in the leading coefficient slot, followed by every sample's
residual against that entry, wrapped into the 16-bit payload with
modular arithmetic:

    coeffs[0]   = mode(block)            (the dictionary entry)
    coeffs[1+j] = wrap16(block[j] - mode)

Samples equal to the dictionary entry become zero residuals, so
constant tails (the zero run after a pulse, a flat-top plateau) fold
into one RLE codeword; thresholding additionally snaps near-entry
samples onto the entry, the classic lossy dictionary substitution.
Because stored residuals are wrapped, the threshold cut is made on the
**un-wrapped** distance to the entry
(:meth:`DictionaryCodec.threshold_blocks`), and the entry slot itself
is exempt -- zeroing it would re-base every wrapped residual and alias
far samples across the int16 boundary.  The
entry itself costs one extra stored word per window
(``coeff_count = window_size + 1``) -- the dictionary overhead the
paper charges this scheme -- so windows with "arbitrary values, which
rarely repeat" *expand*, mechanizing Section IV-B's verdict while still
round-tripping losslessly at threshold 0.

Ties for the most frequent value break toward the smallest value, so
the transform is deterministic and the scalar and batched kernels are
bit-identical by construction.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs.base import Codec, wrap_int16
from repro.transforms.threshold import top_k_blocks

__all__ = [
    "DictionaryCodec",
    "DictionaryEncoded",
    "dictionary_compress",
    "dictionary_decompress",
]


def _row_modes(blocks: np.ndarray) -> np.ndarray:
    """Most frequent value of each row; ties break to the smallest value.

    Vectorized over rows: sort each row, measure run lengths, and pick
    the value whose run is longest (``argmax`` returns the first --
    i.e. smallest, since rows are sorted ascending -- maximal run).
    """
    ordered = np.sort(blocks, axis=1)
    n, width = ordered.shape
    index = np.arange(width)
    starts_here = np.ones((n, width), dtype=bool)
    starts_here[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    run_start = np.maximum.accumulate(np.where(starts_here, index, 0), axis=1)
    ends_here = np.ones((n, width), dtype=bool)
    ends_here[:, :-1] = starts_here[:, 1:]
    run_lengths = np.where(ends_here, index - run_start + 1, 0)
    best = np.argmax(run_lengths, axis=1)
    return ordered[np.arange(n), best]


class DictionaryCodec(Codec):
    """Per-window one-entry frequency dictionary with wrapped residuals."""

    name = "dictionary"
    wire_id = 4
    windowed = True
    batchable = True
    exact_rational_rows = False
    lossless = True
    supported_window_sizes = None  # any window length >= 1

    def coeff_count(self, window_size: int) -> int:
        """One slot for the dictionary entry plus one residual per sample."""
        return window_size + 1

    def forward(self, block: np.ndarray) -> np.ndarray:
        block = self._require_1d(block, "window")
        return self.forward_blocks(block.reshape(1, -1))[0]

    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_1d(coeffs, "coefficient window")
        return self.inverse_blocks(coeffs.reshape(1, -1))[0]

    def forward_blocks(self, blocks: np.ndarray) -> np.ndarray:
        blocks = self._require_2d(blocks, "blocks")
        modes = _row_modes(blocks)
        out = np.empty((blocks.shape[0], blocks.shape[1] + 1), dtype=np.int64)
        out[:, 0] = wrap_int16(modes)
        out[:, 1:] = wrap_int16(blocks - modes[:, None])
        return out

    def inverse_blocks(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_2d(coeffs, "coefficients")
        return wrap_int16(coeffs[:, :1] + coeffs[:, 1:])

    def _true_residuals(self, coeffs: np.ndarray) -> np.ndarray:
        """Un-wrapped per-sample distance to the window's entry."""
        return self.inverse_blocks(coeffs) - wrap_int16(coeffs[:, :1])

    def threshold_blocks(
        self, coeffs: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Threshold residuals on their un-wrapped distance to the entry.

        A sample 40000 codes away from the dictionary entry stores the
        wrapped residual -25536; the cut must see the true 40000, not
        the wrapped word, or near-boundary samples get snapped onto the
        entry from across the range.  The entry slot (column 0) is never
        thresholded: it is the dictionary, not a coefficient, and every
        residual in the window is relative to it.
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        self._check_threshold(threshold)
        out = coeffs.copy()
        out[:, 1:][np.abs(self._true_residuals(coeffs)) < threshold] = 0
        return out

    def top_k_blocks(
        self, coeffs: np.ndarray, max_coefficients: int
    ) -> np.ndarray:
        """Top-k by un-wrapped residual magnitude; the entry never drops.

        The entry slot ranks above every residual (it re-bases the whole
        window), so it counts as one of the k kept words and the cap
        still bounds each window's non-zero count.
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        rank = np.empty_like(coeffs)
        rank[:, 0] = np.iinfo(np.int64).max  # the entry outranks everything
        rank[:, 1:] = np.abs(self._true_residuals(coeffs))
        return top_k_blocks(coeffs, max_coefficients, rank=rank)


# ---------------------------------------------------------------------------
# The paper's frequency-dictionary baseline (hit-rate study, Section IV-B).
#
# Encoding model: a dictionary of the ``dict_size`` most frequent sample
# values is stored alongside the stream; every sample costs 1 flag bit
# plus either ``log2(dict_size)`` index bits (hit) or the full sample
# (miss).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DictionaryEncoded:
    """A dictionary-compressed sample stream (lossless)."""

    dictionary: Tuple[int, ...]
    hits: np.ndarray  # bool per sample
    indices: np.ndarray  # dictionary index where hit, else -1
    misses: np.ndarray  # raw values of the missed samples, in order
    sample_bits: int

    @property
    def n_samples(self) -> int:
        return self.hits.size

    @property
    def index_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(len(self.dictionary), 2))))

    @property
    def encoded_bits(self) -> int:
        dictionary_bits = len(self.dictionary) * self.sample_bits
        hit_bits = int(self.hits.sum()) * self.index_bits
        miss_bits = int(self.misses.size) * self.sample_bits
        flag_bits = self.n_samples  # 1 hit/miss flag per sample
        return dictionary_bits + hit_bits + miss_bits + flag_bits

    @property
    def compression_ratio(self) -> float:
        return (self.n_samples * self.sample_bits) / self.encoded_bits

    @property
    def hit_rate(self) -> float:
        return float(self.hits.mean()) if self.hits.size else 0.0


def dictionary_compress(
    samples: np.ndarray, dict_size: int = 64, sample_bits: int = 16
) -> DictionaryEncoded:
    """Compress with a most-frequent-values dictionary.

    Args:
        samples: 1-D integer samples.
        dict_size: Dictionary entries (power of two recommended).
        sample_bits: Raw sample width.
    """
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1 or samples.size == 0:
        raise CompressionError(f"expected non-empty 1-D samples, got {samples.shape}")
    if dict_size < 1:
        raise CompressionError(f"dict_size must be >= 1, got {dict_size}")
    counts = Counter(samples.tolist())
    dictionary = tuple(value for value, _count in counts.most_common(dict_size))
    lookup: Dict[int, int] = {value: i for i, value in enumerate(dictionary)}
    indices = np.array([lookup.get(int(v), -1) for v in samples], dtype=np.int64)
    hits = indices >= 0
    misses = samples[~hits].copy()
    return DictionaryEncoded(
        dictionary=dictionary,
        hits=hits,
        indices=indices,
        misses=misses,
        sample_bits=sample_bits,
    )


def dictionary_decompress(encoded: DictionaryEncoded) -> np.ndarray:
    """Exact inverse of :func:`dictionary_compress`."""
    out = np.empty(encoded.n_samples, dtype=np.int64)
    dictionary = np.asarray(encoded.dictionary, dtype=np.int64)
    out[encoded.hits] = dictionary[encoded.indices[encoded.hits]]
    out[~encoded.hits] = encoded.misses
    return out
