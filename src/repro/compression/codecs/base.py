"""The :class:`Codec` interface every compression scheme implements.

A codec is the per-window transform at the heart of the COMPAQT
pipeline: samples in, integer "coefficients" out, with the shared
threshold → RLE → bitstream machinery wrapped around it.  The contract:

* ``forward`` maps one window of int16-range sample codes to
  ``coeff_count(window_size)`` int64 coefficients, every one of which
  fits a 16-bit memory word (the wire format's payload width);
* ``inverse`` maps a (possibly thresholded) coefficient window back to
  ``window_size`` sample codes;
* ``forward_blocks`` / ``inverse_blocks`` are the row-wise vectorized
  kernels over a ``(n_windows, ·)`` matrix, **bit-identical** to mapping
  the scalar kernels over the rows (the batch engine and the
  scalar/batched parity gates rely on this);
* both directions are deterministic -- same input, same bytes, on any
  BLAS and any platform.

Capability flags let the layers above dispatch without string matching:

``windowed``
    The codec compresses fixed-size windows.  Full-frame codecs
    (DCT-N) instead treat the whole waveform as one window, so
    :meth:`Codec.resolve_window_size` returns the pulse length.
``batchable``
    The block kernels are real vectorized implementations (all built-in
    codecs).  ``False`` means the codec only implemented the scalar
    pair and inherits the base class's row-by-row block kernels -- the
    batch engine still works, just without the vectorized speedup.
``exact_rational_rows``
    The forward transform has exactly-rational coefficient rows that
    must be recomputed in integer math to keep scalar and batched
    streams bit-identical on any BLAS (the float DCT family).
``lossless``
    ``inverse(forward(x)) == x`` exactly at threshold 0 (delta and
    dictionary; the DCT family has an integer-rounding floor).
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.transforms.threshold import hard_threshold, top_k_blocks

__all__ = ["Codec", "wrap_int16"]


def wrap_int16(values: np.ndarray) -> np.ndarray:
    """Wrap integers into int16 range with two's-complement semantics.

    Modular (mod 2**16) arithmetic is what makes the delta and
    dictionary codecs exactly invertible: a residual that overflows the
    16-bit payload wraps on encode and un-wraps on decode, because
    addition mod 2**16 is associative.  In-range values pass through
    unchanged.
    """
    return ((np.asarray(values, dtype=np.int64) + 0x8000) & 0xFFFF) - 0x8000


class Codec(abc.ABC):
    """One compression scheme, pluggable into every pipeline layer.

    Subclasses set the class attributes and implement the four kernels.
    Registering an instance (:func:`repro.compression.codecs.register_codec`)
    makes it reachable from the scalar pipeline, the batch engine, the
    wire-format bitstream, the compiler, the CLI and the perf bench --
    all at once.
    """

    #: Canonical registry name (``variant=`` strings resolve to this).
    name: str = ""
    #: Stable bitstream id (u8 in the ``CQW1``/``CQL1`` header).  Ids
    #: 0..2 are the frozen v1 DCT layout and must never be reassigned.
    wire_id: int = -1
    windowed: bool = True
    batchable: bool = True
    exact_rational_rows: bool = False
    lossless: bool = False
    #: Allowed window sizes, or ``None`` for any size >= 1.
    supported_window_sizes: Optional[Tuple[int, ...]] = None

    # -- window geometry -----------------------------------------------------

    def coeff_count(self, window_size: int) -> int:
        """Coefficient slots one encoded window occupies (before RLE).

        Most codecs are length-preserving; the dictionary codec stores
        one extra slot for its per-window dictionary entry.
        """
        return window_size

    def resolve_window_size(self, n_samples: int, window_size: int) -> int:
        """The effective window for an ``n_samples``-long channel."""
        return window_size if self.windowed else n_samples

    def check_window_size(self, window_size: int) -> None:
        """Raise :class:`CompressionError` for an unusable window size."""
        if window_size < 1:
            raise CompressionError(
                f"window size must be >= 1, got {window_size}"
            )
        sizes = self.supported_window_sizes
        if self.windowed and sizes is not None and window_size not in sizes:
            raise CompressionError(
                f"{self.name} needs a window in {sizes}, got {window_size}"
            )

    # -- thresholding --------------------------------------------------------

    def threshold_blocks(
        self, coeffs: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Zero the coefficients this codec deems below ``threshold``.

        The default is a plain magnitude cut (:func:`hard_threshold`),
        which is right for transform-domain codecs.  Codecs that store
        mod-2**16 *wrapped* residuals override this to threshold on the
        **un-wrapped** residual magnitude: a near-full-range jump whose
        wrapped representation happens to be tiny must survive, or the
        decoder reconstructs a full-scale error from one zeroed word.
        Returns a copy; rows are windows.
        """
        self._check_threshold(threshold)
        return hard_threshold(coeffs, threshold)

    def top_k_blocks(
        self, coeffs: np.ndarray, max_coefficients: int
    ) -> np.ndarray:
        """Keep only the k largest coefficients of each row.

        Default ranking is stored-word magnitude (right for transform
        domains); wrapped-residual codecs override to pass a rank matrix
        of un-wrapped residuals, for the same aliasing reason as
        :meth:`threshold_blocks`.  Returns a copy; rows already at or
        under the cap pass through untouched.
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        return top_k_blocks(coeffs, max_coefficients)

    @staticmethod
    def _check_threshold(threshold: float) -> float:
        if threshold < 0:
            raise CompressionError(
                f"threshold must be >= 0, got {threshold}"
            )
        return threshold

    # -- kernels -------------------------------------------------------------

    @abc.abstractmethod
    def forward(self, block: np.ndarray) -> np.ndarray:
        """Transform one window of sample codes into coefficients."""

    @abc.abstractmethod
    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        """Reconstruct one window of sample codes from coefficients."""

    def forward_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`forward` of a ``(n_windows, ws)`` matrix.

        Default: a Python loop over the scalar kernel -- the fallback a
        ``batchable=False`` codec relies on.  Vectorized codecs override
        this with a bit-identical single-pass implementation.
        """
        blocks = self._require_2d(blocks, "blocks")
        return np.stack([np.asarray(self.forward(row)) for row in blocks])

    def inverse_blocks(self, coeffs: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`inverse` of a coefficient matrix.

        Default: a Python loop over the scalar kernel (see
        :meth:`forward_blocks`).
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        return np.stack([np.asarray(self.inverse(row)) for row in coeffs])

    # -- shared validation helpers -------------------------------------------

    def _require_1d(self, values: np.ndarray, what: str) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1 or values.size == 0:
            raise CompressionError(
                f"{self.name}: expected a non-empty 1-D {what}, "
                f"got shape {values.shape}"
            )
        return values.astype(np.int64, copy=False)

    def _require_2d(self, values: np.ndarray, what: str) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 2 or values.shape[1] == 0:
            raise CompressionError(
                f"{self.name}: expected (n_windows, ws) {what}, "
                f"got shape {values.shape}"
            )
        return values.astype(np.int64, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} wire_id={self.wire_id}>"
