"""The delta codec and the paper's base-delta baseline (Section IV-B).

Two related pieces live here, both single-sourced in this module (the
old :mod:`repro.transforms.delta` island is now a deprecation shim):

* :class:`DeltaCodec` promotes the paper's base-delta baseline to a
  first-class pipeline codec: each window stores its first sample code
  followed by sample-to-sample differences, all wrapped into the
  16-bit payload with modular (mod 2**16) arithmetic so the round trip
  is *exactly* lossless even across sign-magnitude-style jumps.
* :func:`delta_compress` / :func:`delta_decompress` mechanize the
  paper's bit-width accounting argument (Fig 7a): deltas are taken on
  integer *codes* in the chosen sample representation, and the encoded
  width is the width of the largest code delta -- in sign-magnitude
  form (what control-hardware DACs consume) any zero crossing flips
  the sign bit, the delta occupies the full bit-field, and the gain
  collapses.  ``representation="twos-complement"`` is the ablation
  showing delta would survive zero crossings under a different sample
  format.

Where the gain comes from: a smooth pulse quantized to int16 changes by
only a few codes per sample, so after thresholding most deltas are zero
and the trailing run folds into one RLE codeword -- while any window
with structure keeps full-width residuals, which is precisely why the
paper finds delta weak on real waveform memories.

Thresholding holds the previous decoded value through every zeroed
delta (a zero-order hold).  Because the stored residuals are wrapped, a
huge true delta can alias to a tiny stored word, so the threshold cut
is made on the **un-wrapped** delta recovered from the coefficient
stream (:meth:`DeltaCodec.threshold_blocks`) -- dropping a word always
means the true step was below the threshold.  Surviving words are then
**re-based on the decoder's held value** (closed-loop DPCM
quantization, :meth:`DeltaCodec._rebase_kept`): kept samples decode
exactly, so accumulated sub-threshold drift can never combine with a
kept delta to wrap a decoded sample across the +-32768 rail, and the
error at a dropped sample is bounded by its run of dropped steps
(< run length x threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs.base import Codec, wrap_int16
from repro.transforms.threshold import top_k_blocks

__all__ = [
    "DeltaCodec",
    "DeltaEncoded",
    "delta_compress",
    "delta_decompress",
]


class DeltaCodec(Codec):
    """First-sample base plus wrapped sequential deltas, per window."""

    name = "delta"
    wire_id = 3
    windowed = True
    batchable = True
    exact_rational_rows = False
    lossless = True
    supported_window_sizes = None  # any window length >= 1

    def forward(self, block: np.ndarray) -> np.ndarray:
        block = self._require_1d(block, "window")
        return self.forward_blocks(block.reshape(1, -1))[0]

    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_1d(coeffs, "coefficient window")
        return self.inverse_blocks(coeffs.reshape(1, -1))[0]

    def forward_blocks(self, blocks: np.ndarray) -> np.ndarray:
        blocks = self._require_2d(blocks, "blocks")
        out = np.empty_like(blocks)
        out[:, 0] = blocks[:, 0]
        out[:, 1:] = blocks[:, 1:] - blocks[:, :-1]
        return wrap_int16(out)

    def inverse_blocks(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_2d(coeffs, "coefficients")
        # Addition mod 2**16 is associative, so wrapping the running sum
        # once equals wrapping after every step; int64 cannot overflow
        # for any practical window length.
        return wrap_int16(np.cumsum(coeffs, axis=1))

    @staticmethod
    def _true_steps(samples: np.ndarray) -> np.ndarray:
        """Un-wrapped per-slot steps of the reconstructed samples."""
        true = np.empty_like(samples)
        true[:, 0] = samples[:, 0]
        true[:, 1:] = samples[:, 1:] - samples[:, :-1]
        return true

    @staticmethod
    def _rebase_kept(samples: np.ndarray, keep: np.ndarray) -> np.ndarray:
        """Closed-loop requantization: re-base kept words on decode state.

        After deciding which steps to drop, every kept word is
        recomputed against the value the *decoder* will actually hold
        there (DPCM-style closed-loop quantization).  Kept samples then
        decode exactly -- ``wrap(held + wrap(x - held)) == x`` for any
        in-range ``x`` -- so sub-threshold drift can never combine with
        a kept delta to wrap a sample across the int16 rail.  The loop
        runs over window positions (<= 32) with all rows vectorized.
        """
        out = np.zeros_like(samples)
        held = np.zeros(samples.shape[0], dtype=np.int64)
        for j in range(samples.shape[1]):
            kept = keep[:, j]
            word = wrap_int16(samples[:, j] - held)
            out[kept, j] = word[kept]
            held = np.where(kept, samples[:, j], held)
        return out

    def threshold_blocks(
        self, coeffs: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Threshold on the un-wrapped sample-to-sample delta.

        The stored word for a delta of 65528 is the wrapped value -8; a
        magnitude cut on the wrapped word would zero it and the decoder
        would hold the previous value across a full-range jump.  The
        true deltas are recoverable from the stream (reconstruct the
        samples, then difference them in plain arithmetic), so the cut
        happens there; surviving words are then re-based on the decoder
        state (:meth:`_rebase_kept`) so kept samples decode exactly and
        dropped ones err by at most the accumulated sub-threshold run.
        For streams with no dropped words this is the identity.
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        self._check_threshold(threshold)
        samples = self.inverse_blocks(coeffs)
        keep = np.abs(self._true_steps(samples)) >= threshold
        if np.all(keep):
            return coeffs.copy()
        return self._rebase_kept(samples, keep)

    def top_k_blocks(
        self, coeffs: np.ndarray, max_coefficients: int
    ) -> np.ndarray:
        """Top-k by un-wrapped delta magnitude, not by stored word.

        Ranking the wrapped words would drop a full-range jump stored
        as a tiny word -- the same aliasing hazard as thresholding --
        and the survivors are re-based just like
        :meth:`threshold_blocks` (a kept zero word and a dropped slot
        decode identically, so the non-zero cap still holds).
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        samples = self.inverse_blocks(coeffs)
        pruned = top_k_blocks(
            coeffs, max_coefficients, rank=np.abs(self._true_steps(samples))
        )
        if np.array_equal(pruned, coeffs):
            return pruned
        return self._rebase_kept(samples, pruned != 0)


# ---------------------------------------------------------------------------
# The paper's base-delta baseline (bit-width accounting, Fig 7a).
# ---------------------------------------------------------------------------

_REPRESENTATIONS = ("sign-magnitude", "twos-complement")


@dataclass(frozen=True)
class DeltaEncoded:
    """A delta-compressed sample stream.

    Attributes:
        base: First sample's code, stored at full width.
        deltas: Signed code differences (length ``n - 1``).
        delta_bits: Bit width allocated to each stored delta.
        sample_bits: Original sample width.
        representation: Code mapping used ("sign-magnitude" matches the
            paper's hardware model).
    """

    base: int
    deltas: np.ndarray
    delta_bits: int
    sample_bits: int
    representation: str

    @property
    def n_samples(self) -> int:
        return 1 + self.deltas.size

    @property
    def encoded_bits(self) -> int:
        """Total storage: one full-width base plus fixed-width deltas."""
        return self.sample_bits + self.deltas.size * self.delta_bits

    @property
    def original_bits(self) -> int:
        return self.n_samples * self.sample_bits

    @property
    def compression_ratio(self) -> float:
        """old size / new size, as defined in the paper (R)."""
        return self.original_bits / self.encoded_bits


def delta_compress(
    samples: np.ndarray,
    sample_bits: int = 16,
    representation: str = "sign-magnitude",
) -> DeltaEncoded:
    """Delta-compress integer samples.

    If the widest delta needs at least ``sample_bits`` bits the stream is
    effectively incompressible (R <= 1), which is what happens to
    zero-crossing waveforms in sign-magnitude form.

    Args:
        samples: 1-D array of signed integer samples.
        sample_bits: Width of one raw sample (16 for IBM I or Q).
        representation: "sign-magnitude" (paper model) or
            "twos-complement" (ablation).
    """
    if representation not in _REPRESENTATIONS:
        raise CompressionError(f"unknown representation: {representation!r}")
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1 or samples.size == 0:
        raise CompressionError(f"expected non-empty 1-D samples, got {samples.shape}")
    codes = _to_codes(samples, sample_bits, representation)
    deltas = np.diff(codes)
    delta_bits = _signed_width(deltas)
    delta_bits = min(max(delta_bits, 1), sample_bits)
    return DeltaEncoded(
        base=int(codes[0]),
        deltas=deltas,
        delta_bits=delta_bits,
        sample_bits=sample_bits,
        representation=representation,
    )


def delta_decompress(encoded: DeltaEncoded) -> np.ndarray:
    """Exact inverse of :func:`delta_compress`."""
    codes = np.concatenate(([encoded.base], encoded.deltas)).cumsum()
    return _from_codes(codes, encoded.sample_bits, encoded.representation)


def _to_codes(samples: np.ndarray, bits: int, representation: str) -> np.ndarray:
    limit = 1 << (bits - 1)
    if np.any(np.abs(samples) >= limit):
        raise CompressionError(f"samples exceed {bits}-bit signed range")
    if representation == "twos-complement":
        return samples.copy()
    # Sign-magnitude: sign bit at the top, magnitude below.  Crossing
    # zero jumps the code by ~2^(bits-1), which is the paper's point.
    sign = (samples < 0).astype(np.int64)
    return (sign << (bits - 1)) | np.abs(samples)


def _from_codes(codes: np.ndarray, bits: int, representation: str) -> np.ndarray:
    if representation == "twos-complement":
        return codes.copy()
    sign_bit = np.int64(1) << (bits - 1)
    magnitude = codes & (sign_bit - 1)
    negative = (codes & sign_bit) != 0
    return np.where(negative, -magnitude, magnitude)


def _signed_width(values: np.ndarray) -> int:
    """Minimum two's-complement width holding every value."""
    if values.size == 0:
        return 1
    lo, hi = int(values.min()), int(values.max())
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi < (1 << (width - 1))):
        width += 1
    return width
