"""The delta codec: intra-window sequential differences (Section IV-B).

This promotes the paper's base-delta baseline (the bit-width accounting
study in :mod:`repro.transforms.delta`) to a first-class pipeline codec:
each window stores its first sample code followed by sample-to-sample
differences, all wrapped into the 16-bit payload with modular
(mod 2**16) arithmetic so the round trip is *exactly* lossless even
across sign-magnitude-style jumps.

Where the gain comes from: a smooth pulse quantized to int16 changes by
only a few codes per sample, so after thresholding most deltas are zero
and the trailing run folds into one RLE codeword -- while any window
with structure keeps full-width residuals, which is precisely why the
paper finds delta weak on real waveform memories.

Thresholding holds the previous decoded value through every zeroed
delta (a zero-order hold).  Because the stored residuals are wrapped, a
huge true delta can alias to a tiny stored word, so the threshold cut
is made on the **un-wrapped** delta recovered from the coefficient
stream (:meth:`DeltaCodec.threshold_blocks`) -- dropping a word always
means the true step was below the threshold.  Surviving words are then
**re-based on the decoder's held value** (closed-loop DPCM
quantization, :meth:`DeltaCodec._rebase_kept`): kept samples decode
exactly, so accumulated sub-threshold drift can never combine with a
kept delta to wrap a decoded sample across the +-32768 rail, and the
error at a dropped sample is bounded by its run of dropped steps
(< run length x threshold).
"""

from __future__ import annotations

import numpy as np

from repro.compression.codecs.base import Codec, wrap_int16
from repro.transforms.threshold import top_k_blocks

__all__ = ["DeltaCodec"]


class DeltaCodec(Codec):
    """First-sample base plus wrapped sequential deltas, per window."""

    name = "delta"
    wire_id = 3
    windowed = True
    batchable = True
    exact_rational_rows = False
    lossless = True
    supported_window_sizes = None  # any window length >= 1

    def forward(self, block: np.ndarray) -> np.ndarray:
        block = self._require_1d(block, "window")
        return self.forward_blocks(block.reshape(1, -1))[0]

    def inverse(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_1d(coeffs, "coefficient window")
        return self.inverse_blocks(coeffs.reshape(1, -1))[0]

    def forward_blocks(self, blocks: np.ndarray) -> np.ndarray:
        blocks = self._require_2d(blocks, "blocks")
        out = np.empty_like(blocks)
        out[:, 0] = blocks[:, 0]
        out[:, 1:] = blocks[:, 1:] - blocks[:, :-1]
        return wrap_int16(out)

    def inverse_blocks(self, coeffs: np.ndarray) -> np.ndarray:
        coeffs = self._require_2d(coeffs, "coefficients")
        # Addition mod 2**16 is associative, so wrapping the running sum
        # once equals wrapping after every step; int64 cannot overflow
        # for any practical window length.
        return wrap_int16(np.cumsum(coeffs, axis=1))

    @staticmethod
    def _true_steps(samples: np.ndarray) -> np.ndarray:
        """Un-wrapped per-slot steps of the reconstructed samples."""
        true = np.empty_like(samples)
        true[:, 0] = samples[:, 0]
        true[:, 1:] = samples[:, 1:] - samples[:, :-1]
        return true

    @staticmethod
    def _rebase_kept(samples: np.ndarray, keep: np.ndarray) -> np.ndarray:
        """Closed-loop requantization: re-base kept words on decode state.

        After deciding which steps to drop, every kept word is
        recomputed against the value the *decoder* will actually hold
        there (DPCM-style closed-loop quantization).  Kept samples then
        decode exactly -- ``wrap(held + wrap(x - held)) == x`` for any
        in-range ``x`` -- so sub-threshold drift can never combine with
        a kept delta to wrap a sample across the int16 rail.  The loop
        runs over window positions (<= 32) with all rows vectorized.
        """
        out = np.zeros_like(samples)
        held = np.zeros(samples.shape[0], dtype=np.int64)
        for j in range(samples.shape[1]):
            kept = keep[:, j]
            word = wrap_int16(samples[:, j] - held)
            out[kept, j] = word[kept]
            held = np.where(kept, samples[:, j], held)
        return out

    def threshold_blocks(
        self, coeffs: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Threshold on the un-wrapped sample-to-sample delta.

        The stored word for a delta of 65528 is the wrapped value -8; a
        magnitude cut on the wrapped word would zero it and the decoder
        would hold the previous value across a full-range jump.  The
        true deltas are recoverable from the stream (reconstruct the
        samples, then difference them in plain arithmetic), so the cut
        happens there; surviving words are then re-based on the decoder
        state (:meth:`_rebase_kept`) so kept samples decode exactly and
        dropped ones err by at most the accumulated sub-threshold run.
        For streams with no dropped words this is the identity.
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        self._check_threshold(threshold)
        samples = self.inverse_blocks(coeffs)
        keep = np.abs(self._true_steps(samples)) >= threshold
        if np.all(keep):
            return coeffs.copy()
        return self._rebase_kept(samples, keep)

    def top_k_blocks(
        self, coeffs: np.ndarray, max_coefficients: int
    ) -> np.ndarray:
        """Top-k by un-wrapped delta magnitude, not by stored word.

        Ranking the wrapped words would drop a full-range jump stored
        as a tiny word -- the same aliasing hazard as thresholding --
        and the survivors are re-based just like
        :meth:`threshold_blocks` (a kept zero word and a dropped slot
        decode identically, so the non-zero cap still holds).
        """
        coeffs = self._require_2d(coeffs, "coefficients")
        samples = self.inverse_blocks(coeffs)
        pruned = top_k_blocks(
            coeffs, max_coefficients, rank=np.abs(self._true_steps(samples))
        )
        if np.array_equal(pruned, coeffs):
            return pruned
        return self._rebase_kept(samples, pruned != 0)
