"""Pluggable compression codecs and their registry.

Importing this package registers the five built-in codecs:

====  ============  ========  =========  ====================  ========
id    name          windowed  batchable  exact_rational_rows   lossless
====  ============  ========  =========  ====================  ========
0     DCT-N         no        yes        yes                   no
1     DCT-W         yes       yes        yes                   no
2     int-DCT-W     yes       yes        no                    no
3     delta         yes       yes        no                    yes
4     dictionary    yes       yes        no                    yes
====  ============  ========  =========  ====================  ========

Wire ids 0..2 are frozen: they are the v1 ``CQW1``/``CQL1`` variant ids
and existing bitstreams must keep parsing byte-for-byte.
"""

from repro.compression.codecs.base import Codec, wrap_int16
from repro.compression.codecs.registry import (
    codec_for_wire_id,
    ensure_registered,
    get_codec,
    list_codecs,
    register_codec,
    resolve_codec,
    resolve_codec_arg,
    unregister_codec,
)
from repro.compression.codecs.dct import FloatDctCodec, IntDctCodec
from repro.compression.codecs.delta import DeltaCodec
from repro.compression.codecs.dictionary import DictionaryCodec

__all__ = [
    "Codec",
    "wrap_int16",
    "register_codec",
    "unregister_codec",
    "get_codec",
    "resolve_codec",
    "resolve_codec_arg",
    "ensure_registered",
    "list_codecs",
    "codec_for_wire_id",
    "FloatDctCodec",
    "IntDctCodec",
    "DeltaCodec",
    "DictionaryCodec",
    "DCT_N",
    "DCT_W",
    "INT_DCT_W",
    "DELTA",
    "DICTIONARY",
]

#: The built-in codec instances, importable directly.
DCT_N = register_codec(FloatDctCodec("DCT-N", wire_id=0, windowed=False))
DCT_W = register_codec(FloatDctCodec("DCT-W", wire_id=1, windowed=True))
INT_DCT_W = register_codec(IntDctCodec())
DELTA = register_codec(DeltaCodec())
DICTIONARY = register_codec(DictionaryCodec())
