"""Overlapping-window compression (the paper's proposed WS=8 fix).

Section VII-B attributes the WS=8 fidelity losses to "distortions
introduced at the boundaries of consecutive windows" and notes they
"can be reduced by using overlapping windows to compress the waveform".
This module implements that extension:

- analysis windows advance by ``window_size / 2`` (50% overlap);
- each window is transformed / thresholded / RLE'd exactly like the
  plain pipeline;
- synthesis multiplies each reconstructed window by a triangular
  crossfade and overlap-adds.  Triangular weights at half-window stride
  sum to one, so a lossless window set reconstructs exactly; a lossy
  one blends boundary errors smoothly instead of stepping.

The cost is ~2x the stored windows, so overlap trades capacity for
boundary quality -- quantified by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs import ensure_registered, resolve_codec
from repro.compression.metrics import mean_squared_error
from repro.compression.pipeline import (
    VariantLike,
    forward_transform,
    inverse_transform,
)
from repro.pulses.waveform import Waveform
from repro.transforms.rle import EncodedWindow, rle_encode_window, rle_decode_window

__all__ = [
    "OverlappingChannel",
    "OverlappingCompressionResult",
    "compress_channel_overlapping",
    "decompress_channel_overlapping",
    "compress_waveform_overlapping",
]


@dataclass(frozen=True)
class OverlappingChannel:
    """One channel compressed with 50%-overlapping windows."""

    windows: Tuple[EncodedWindow, ...]
    variant: str
    window_size: int
    original_length: int

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def stored_words_variable(self) -> int:
        return sum(w.n_words for w in self.windows)

    @property
    def worst_case_words(self) -> int:
        return max(w.n_words for w in self.windows)


@dataclass(frozen=True)
class OverlappingCompressionResult:
    """Compressed waveform (both channels) with overlap-add synthesis."""

    name: str
    i_channel: OverlappingChannel
    q_channel: OverlappingChannel
    reconstructed: Waveform
    mse: float

    @property
    def stored_words(self) -> int:
        """Per-channel pair total under variable packing."""
        return (
            self.i_channel.stored_words_variable
            + self.q_channel.stored_words_variable
        )

    @property
    def compression_ratio(self) -> float:
        original = 2 * self.i_channel.original_length
        return original / max(1, self.stored_words)


def _window_starts(length: int, window_size: int) -> List[int]:
    stride = window_size // 2
    if length <= window_size:
        return [0]
    last = length - stride  # final window may extend past; it is padded
    return list(range(0, last, stride))


def _crossfade(window_size: int) -> np.ndarray:
    """Triangular synthesis weights; pairs at half-window stride sum to 1."""
    half = window_size // 2
    ramp = (np.arange(half) + 0.5) / half
    return np.concatenate([ramp, ramp[::-1]])


def compress_channel_overlapping(
    codes: np.ndarray,
    window_size: int,
    variant: VariantLike = "int-DCT-W",
    threshold: float = 128,
    max_coefficients: int = 0,
) -> OverlappingChannel:
    """Compress one integer channel with 50%-overlapping windows."""
    codec = ensure_registered(resolve_codec(variant))
    if not codec.windowed:
        raise CompressionError("overlap requires a windowed variant")
    if threshold < 0:
        raise CompressionError(f"threshold must be >= 0, got {threshold}")
    if max_coefficients < 0:
        raise CompressionError(
            f"max_coefficients must be >= 0, got {max_coefficients}"
        )
    variant = codec.name
    if window_size % 2:
        raise CompressionError(f"window size must be even, got {window_size}")
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 1 or codes.size == 0:
        raise CompressionError(f"expected non-empty 1-D codes, got {codes.shape}")
    encoded: List[EncodedWindow] = []
    for start in _window_starts(codes.size, window_size):
        block = np.zeros(window_size, dtype=np.int64)
        chunk = codes[start : start + window_size]
        block[: chunk.size] = chunk
        coeffs = forward_transform(block, codec)
        kept = codec.threshold_blocks(coeffs.reshape(1, -1), threshold)
        if max_coefficients:
            kept = codec.top_k_blocks(kept, max_coefficients)
        encoded.append(rle_encode_window(kept[0]))
    return OverlappingChannel(
        windows=tuple(encoded),
        variant=variant,
        window_size=window_size,
        original_length=int(codes.size),
    )


def decompress_channel_overlapping(channel: OverlappingChannel) -> np.ndarray:
    """Overlap-add reconstruction with triangular crossfade."""
    window_size = channel.window_size
    starts = _window_starts(channel.original_length, window_size)
    if len(starts) != channel.n_windows:
        raise CompressionError(
            f"window count mismatch: {len(starts)} starts vs "
            f"{channel.n_windows} stored"
        )
    length = max(channel.original_length, starts[-1] + window_size)
    accum = np.zeros(length, dtype=np.float64)
    weight = np.zeros(length, dtype=np.float64)
    fade = _crossfade(window_size)
    for start, window in zip(starts, channel.windows):
        coeffs = rle_decode_window(window)
        samples = inverse_transform(coeffs, channel.variant).astype(np.float64)
        accum[start : start + window_size] += samples * fade
        weight[start : start + window_size] += fade
    weight[weight == 0] = 1.0
    merged = accum / weight
    return np.rint(merged[: channel.original_length]).astype(np.int64)


def compress_waveform_overlapping(
    waveform: Waveform,
    window_size: int = 8,
    variant: VariantLike = "int-DCT-W",
    threshold: float = 128,
    max_coefficients: int = 0,
) -> OverlappingCompressionResult:
    """Compress a waveform with overlapping windows; returns quality
    metrics against the original."""
    i_codes, q_codes = waveform.to_fixed_point()
    i_channel = compress_channel_overlapping(
        i_codes.astype(np.int64), window_size, variant, threshold, max_coefficients
    )
    q_channel = compress_channel_overlapping(
        q_codes.astype(np.int64), window_size, variant, threshold, max_coefficients
    )
    i_back = decompress_channel_overlapping(i_channel)
    q_back = decompress_channel_overlapping(q_channel)
    reconstructed = Waveform.from_fixed_point(
        np.clip(i_back, -32768, 32767).astype(np.int16),
        np.clip(q_back, -32768, 32767).astype(np.int16),
        dt=waveform.dt,
        name=f"{waveform.name}~overlap",
        gate=waveform.gate,
        qubits=waveform.qubits,
    )
    return OverlappingCompressionResult(
        name=waveform.name,
        i_channel=i_channel,
        q_channel=q_channel,
        reconstructed=reconstructed,
        mse=mean_squared_error(waveform.samples, reconstructed.samples),
    )
