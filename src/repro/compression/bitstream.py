"""Wire-format bitstream for compressed waveform libraries.

The compiler's output so far lived only as Python objects; shipping a
compiled library to the microarchitecture simulator (or persisting it
across calibration cycles) needs the paper's actual storage layout: a
stream of uniform-width tagged memory words with per-window headers
(Section IV-C / Fig 12).  This module packs a
:class:`~repro.compression.pipeline.CompressedWaveform` into that layout
and parses it back losslessly.

Memory words are 32-bit little-endian integers::

    bits  0..15   payload: int16 coefficient (two's complement) or the
                  unsigned zero-run length
    bits 16..17   tag: 00 coefficient, 01 zero-run codeword
    bits 18..31   reserved, must be zero

(Real hardware packs the two signature bits inside an 18-bit BRAM word;
the file format rounds up to 32 bits so the stream is byte-addressable.)

A **waveform record** is::

    magic   b"CQW1"
    u8      codec id (the codec's registered wire id: 0 DCT-N, 1 DCT-W,
            2 int-DCT-W, 3 delta, 4 dictionary, ...)
    u8      flags (reserved, zero)
    u32     window size (full-frame codecs: the whole pulse length)
    u16+s   name (utf-8, length-prefixed)
    u16+s   gate
    u8      qubit count, then u16 per qubit index
    f64     dt (seconds)
    2x      channel block (I then Q):
              u32 original sample count
              u32 window count
              per window: u16 word-count header, then that many words

A window must decode to exactly ``codec.coeff_count(window_size)``
coefficient slots (``window_size`` for the DCT family and delta;
``window_size + 1`` for the dictionary codec, whose leading slot is the
per-window dictionary entry).

A **library container** (magic ``b"CQL1"``) carries the device name and
compile configuration, then one length-prefixed waveform record per
entry together with its gate/qubit binding, MSE and threshold.

**Versioning.**  The codec id byte is the registry's wire id
(:func:`repro.compression.codecs.codec_for_wire_id`); ids 0..2 are the
frozen v1 layout, so every pre-registry ``CQW1``/``CQL1`` blob parses
byte-for-byte identically (a golden-bytes test pins this).  New codecs
claim new ids; an id this build does not know raises
:class:`~repro.errors.CompressionError` instead of guessing.

Parsing is total: every malformed input -- truncation, bad magic, an
unknown tag, a zero-run overflowing its window, payload after the
codeword, trailing garbage -- raises
:class:`~repro.errors.CompressionError` rather than yielding garbage
samples.  Serialization is canonical, so ``serialize(parse(b)) == b``
for every stream this module produced.

**Fast path.**  :func:`parse_waveform` and :func:`parse_library`
dispatch to the vectorized zero-copy engine in
:mod:`repro.compression.fastpath` (numpy word gathers instead of
per-word ``struct`` loops); the original word-at-a-time reader is kept
as :func:`parse_waveform_scalar` / :func:`parse_library_scalar` -- the
conformance oracle the fuzz suite and the perf bench hold the fast
path equal to, byte for byte and error for error.  Serialization packs
each channel's word stream as one numpy array write
(:func:`_write_channel`); the scalar writer survives as
:func:`_write_channel_scalar` for the same oracle role.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs import Codec, codec_for_wire_id, get_codec
from repro.compression.pipeline import (
    CompressedChannel,
    CompressedWaveform,
)
from repro.compression.window import n_windows as expected_n_windows
from repro.transforms.rle import TAG_COEFF, TAG_ZERO_RUN, EncodedWindow

__all__ = [
    "WAVEFORM_MAGIC",
    "LIBRARY_MAGIC",
    "WORD_BYTES",
    "LibraryEntry",
    "LibraryBitstream",
    "RecordSpan",
    "serialize_waveform",
    "parse_waveform",
    "parse_waveform_scalar",
    "serialize_library",
    "serialize_library_indexed",
    "parse_library",
    "parse_library_scalar",
]

WAVEFORM_MAGIC = b"CQW1"
LIBRARY_MAGIC = b"CQL1"

#: Bytes per tagged memory word on the wire.
WORD_BYTES = 4

_TAG_SHIFT = 16
_PAYLOAD_MASK = 0xFFFF
_TAG_MASK = 0x3
_RESERVED_MASK = 0xFFFFFFFF ^ (_PAYLOAD_MASK | (_TAG_MASK << _TAG_SHIFT))


def _codec_for_name(name: str) -> Codec:
    """Resolve a codec name for serialization (must be registered)."""
    try:
        return get_codec(name)
    except CompressionError:
        raise CompressionError(f"unknown variant {name!r}") from None


def _codec_for_id(wire_id: int) -> Codec:
    """Resolve a parsed codec id (must be registered)."""
    try:
        return codec_for_wire_id(wire_id)
    except CompressionError:
        raise CompressionError(f"unknown variant id {wire_id}") from None


# ---------------------------------------------------------------------------
# Word packing.
# ---------------------------------------------------------------------------


def _pack_coeff_word(value: int) -> int:
    if not -32768 <= value <= 32767:
        raise CompressionError(
            f"coefficient {value} does not fit the 16-bit word payload"
        )
    return (TAG_COEFF << _TAG_SHIFT) | (value & _PAYLOAD_MASK)


def _pack_zero_run_word(run: int) -> int:
    if not 1 <= run <= _PAYLOAD_MASK:
        raise CompressionError(
            f"zero run {run} does not fit the 16-bit word payload"
        )
    return (TAG_ZERO_RUN << _TAG_SHIFT) | run


def _unpack_word(word: int) -> Tuple[int, int]:
    """Split a wire word into (tag, payload); payload sign depends on tag."""
    if word & _RESERVED_MASK:
        raise CompressionError(
            f"reserved bits set in memory word 0x{word:08x}"
        )
    tag = (word >> _TAG_SHIFT) & _TAG_MASK
    payload = word & _PAYLOAD_MASK
    if tag == TAG_COEFF and payload >= 0x8000:
        payload -= 0x10000  # two's complement coefficient
    return tag, payload


# ---------------------------------------------------------------------------
# Bounded little-endian reader/writer.
# ---------------------------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self._parts: List[bytes] = []
        self._n_bytes = 0

    def raw(self, data: bytes) -> None:
        self._parts.append(data)
        self._n_bytes += len(data)

    def tell(self) -> int:
        """Bytes written so far (the offset of the next write)."""
        return self._n_bytes

    def pack(self, fmt: str, *values) -> None:
        try:
            self.raw(struct.pack("<" + fmt, *values))
        except struct.error as exc:
            raise CompressionError(
                f"value {values!r} does not fit wire field {fmt!r}: {exc}"
            ) from None

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        if len(data) > 0xFFFF:
            raise CompressionError(f"string of {len(data)} bytes exceeds u16 length")
        self.pack("H", len(data))
        self.raw(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Bounds-checked cursor; every overrun raises CompressionError."""

    def __init__(self, data: bytes, offset: int = 0, end: int | None = None) -> None:
        self.data = data
        self.offset = offset
        self.end = len(data) if end is None else end

    def take(self, count: int, what: str) -> bytes:
        if self.offset + count > self.end:
            raise CompressionError(
                f"truncated bitstream: needed {count} bytes for {what}, "
                f"had {self.end - self.offset}"
            )
        out = self.data[self.offset : self.offset + count]
        self.offset += count
        return out

    def unpack(self, fmt: str, what: str):
        size = struct.calcsize("<" + fmt)
        values = struct.unpack("<" + fmt, self.take(size, what))
        return values[0] if len(values) == 1 else values

    def string(self, what: str) -> str:
        length = self.unpack("H", f"{what} length")
        try:
            return self.take(length, what).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CompressionError(f"invalid utf-8 in {what}: {exc}") from None

    def expect_end(self, what: str) -> None:
        if self.offset != self.end:
            raise CompressionError(
                f"{self.end - self.offset} trailing bytes after {what}"
            )


# ---------------------------------------------------------------------------
# Window and channel blocks.
# ---------------------------------------------------------------------------


def _write_window(writer: _Writer, window: EncodedWindow) -> None:
    words = [_pack_coeff_word(c) for c in window.coeffs]
    if window.zero_run > 0:
        words.append(_pack_zero_run_word(window.zero_run))
    if not words:
        raise CompressionError("cannot serialize an empty window")
    if len(words) > 0xFFFF:
        raise CompressionError(
            f"window of {len(words)} words exceeds the u16 header"
        )
    writer.pack("H", len(words))
    for word in words:
        writer.pack("I", word)


def _read_window(reader: _Reader, decoded_size: int) -> EncodedWindow:
    n_words = reader.unpack("H", "window header")
    if n_words < 1:
        raise CompressionError("window header declares zero words")
    coeffs: List[int] = []
    zero_run = 0
    for index in range(n_words):
        tag, payload = _unpack_word(reader.unpack("I", "memory word"))
        if tag == TAG_COEFF:
            coeffs.append(payload)
        elif tag == TAG_ZERO_RUN:
            if index != n_words - 1:
                raise CompressionError(
                    "zero-run codeword must be the last word of a window"
                )
            zero_run = payload  # _pack guarantees >= 1 on our own streams
            if zero_run < 1:
                raise CompressionError("zero-run codeword with empty run")
        else:
            raise CompressionError(f"unknown memory word tag {tag}")
    decoded = len(coeffs) + zero_run
    if decoded != decoded_size:
        raise CompressionError(
            f"window decodes to {decoded} samples, expected {decoded_size} "
            f"({len(coeffs)} coefficients + {zero_run}-zero run)"
        )
    return EncodedWindow(coeffs=tuple(coeffs), zero_run=zero_run)


def _write_channel_scalar(writer: _Writer, channel: CompressedChannel) -> None:
    """Word-at-a-time channel writer: the serialization oracle."""
    writer.pack("I", channel.original_length)
    writer.pack("I", channel.n_windows)
    for window in channel.windows:
        _write_window(writer, window)


def _channel_block_bytes(channel: CompressedChannel) -> bytes:
    """Pack a channel's window stream as one numpy array write.

    A channel block after its two u32s is, on the wire, a little-endian
    u16 stream: for each window the u16 word-count header, then each
    32-bit word as two u16s (payload low half, tag high half).  The
    whole stream is laid out with vectorized scatters and serialized
    with a single ``tobytes()`` -- byte-identical to the scalar writer
    (``tests/test_fastpath.py`` pins the equality).
    """
    windows = channel.windows
    n = len(windows)
    counts = np.fromiter((w.n_words for w in windows), dtype=np.int64, count=n)
    if n and int(counts.min()) < 1:
        raise CompressionError("cannot serialize an empty window")
    if n and int(counts.max()) > 0xFFFF:
        raise CompressionError(
            f"window of {int(counts.max())} words exceeds the u16 header"
        )
    runs = np.fromiter((w.zero_run for w in windows), dtype=np.int64, count=n)
    if n and int(runs.max()) > _PAYLOAD_MASK:
        bad = int(runs[runs > _PAYLOAD_MASK][0])
        raise CompressionError(
            f"zero run {bad} does not fit the 16-bit word payload"
        )
    n_coeffs = int((counts - (runs > 0)).sum())
    coeffs = np.fromiter(
        (c for w in windows for c in w.coeffs), dtype=np.int64, count=n_coeffs
    )
    if n_coeffs and (
        int(coeffs.min()) < -32768 or int(coeffs.max()) > 32767
    ):
        bad = int(coeffs[(coeffs < -32768) | (coeffs > 32767)][0])
        raise CompressionError(
            f"coefficient {bad} does not fit the 16-bit word payload"
        )

    total_words = int(counts.sum())
    word_payload = np.empty(total_words, dtype=np.int64)
    word_tag = np.zeros(total_words, dtype=np.int64)
    last = np.cumsum(counts) - 1
    has_run = runs > 0
    word_tag[last[has_run]] = TAG_ZERO_RUN
    word_payload[word_tag == TAG_COEFF] = coeffs & _PAYLOAD_MASK
    word_payload[last[has_run]] = runs[has_run]

    # u16 layout: window k owns slots [starts[k], starts[k] + 1 + 2*n_k).
    starts = np.cumsum(1 + 2 * counts) - (1 + 2 * counts)
    stream = np.empty(n + 2 * total_words, dtype="<u2")
    stream[starts] = counts
    within = np.arange(total_words, dtype=np.int64)
    within -= np.repeat(np.cumsum(counts) - counts, counts)
    slots = np.repeat(starts, counts) + 1 + 2 * within
    stream[slots] = word_payload
    stream[slots + 1] = word_tag
    return stream.tobytes()


def _write_channel(writer: _Writer, channel: CompressedChannel) -> None:
    writer.pack("I", channel.original_length)
    writer.pack("I", channel.n_windows)
    writer.raw(_channel_block_bytes(channel))


def _read_channel(
    reader: _Reader, codec: Codec, window_size: int
) -> CompressedChannel:
    original_length = reader.unpack("I", "channel length")
    count = reader.unpack("I", "window count")
    if original_length < 1:
        raise CompressionError("channel declares zero samples")
    if count != expected_n_windows(original_length, window_size):
        raise CompressionError(
            f"channel of {original_length} samples needs "
            f"{expected_n_windows(original_length, window_size)} windows "
            f"of {window_size}, stream declares {count}"
        )
    decoded_size = codec.coeff_count(window_size)
    windows = tuple(_read_window(reader, decoded_size) for _ in range(count))
    return CompressedChannel(
        windows=windows,
        variant=codec.name,
        window_size=window_size,
        original_length=original_length,
    )


# ---------------------------------------------------------------------------
# Waveform records.
# ---------------------------------------------------------------------------


def serialize_waveform(compressed: CompressedWaveform) -> bytes:
    """Pack one compressed waveform into its canonical wire record."""
    codec = _codec_for_name(compressed.variant)
    if compressed.i_channel.variant != compressed.q_channel.variant:
        raise CompressionError(
            f"I and Q channels disagree on variant: "
            f"{compressed.i_channel.variant!r} vs "
            f"{compressed.q_channel.variant!r}"
        )
    if compressed.i_channel.window_size != compressed.q_channel.window_size:
        raise CompressionError("I and Q channels disagree on window size")
    writer = _Writer()
    writer.raw(WAVEFORM_MAGIC)
    writer.pack("BB", codec.wire_id, 0)
    writer.pack("I", compressed.window_size)
    writer.string(compressed.name)
    writer.string(compressed.gate)
    if len(compressed.qubits) > 0xFF:
        raise CompressionError(f"{len(compressed.qubits)} qubits exceed the u8 count")
    writer.pack("B", len(compressed.qubits))
    for qubit in compressed.qubits:
        writer.pack("H", qubit)
    writer.pack("d", compressed.dt)
    _write_channel(writer, compressed.i_channel)
    _write_channel(writer, compressed.q_channel)
    return writer.getvalue()


def _read_waveform(reader: _Reader) -> CompressedWaveform:
    if reader.take(4, "waveform magic") != WAVEFORM_MAGIC:
        raise CompressionError("not a COMPAQT waveform bitstream (bad magic)")
    variant_id, flags = reader.unpack("BB", "waveform header")
    codec = _codec_for_id(variant_id)
    if flags != 0:
        raise CompressionError(f"reserved flags 0x{flags:02x} set")
    window_size = reader.unpack("I", "window size")
    if window_size < 1:
        raise CompressionError(f"window size must be >= 1, got {window_size}")
    name = reader.string("waveform name")
    gate = reader.string("gate name")
    n_qubits = reader.unpack("B", "qubit count")
    qubits = tuple(reader.unpack("H", "qubit index") for _ in range(n_qubits))
    dt = reader.unpack("d", "dt")
    if not dt > 0:
        raise CompressionError(f"dt must be positive, got {dt}")
    i_channel = _read_channel(reader, codec, window_size)
    q_channel = _read_channel(reader, codec, window_size)
    return CompressedWaveform(
        name=name,
        gate=gate,
        qubits=qubits,
        dt=dt,
        i_channel=i_channel,
        q_channel=q_channel,
    )


def parse_waveform_scalar(data: bytes) -> CompressedWaveform:
    """Word-at-a-time record parser: the conformance oracle.

    Functionally identical to :func:`parse_waveform` (which dispatches
    to the vectorized engine); kept as the reference the fuzz suite and
    the bench parity gates compare the fast path against.
    """
    reader = _Reader(bytes(data))
    compressed = _read_waveform(reader)
    reader.expect_end("waveform record")
    return compressed


def parse_waveform(data) -> CompressedWaveform:
    """Parse one standalone waveform record; rejects trailing bytes.

    Accepts any bytes-like buffer (``bytes``, ``memoryview``, mmap
    slices) and parses it through the zero-copy vectorized engine
    (:func:`repro.compression.fastpath.parse_waveform_fast`), which is
    held bit-identical to :func:`parse_waveform_scalar`.
    """
    from repro.compression.fastpath import parse_waveform_fast

    return parse_waveform_fast(data)


# ---------------------------------------------------------------------------
# Library containers.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LibraryEntry:
    """One library slot: a gate binding plus its compressed waveform."""

    gate: str
    qubits: Tuple[int, ...]
    mse: float
    threshold: float
    compressed: CompressedWaveform


@dataclass(frozen=True, slots=True)
class LibraryBitstream:
    """A parsed (or about-to-be-serialized) compressed library image."""

    device_name: str
    window_size: int
    variant: str
    entries: Tuple[LibraryEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        return len(serialize_library(self))


@dataclass(frozen=True, slots=True)
class RecordSpan:
    """Byte extent of one embedded ``CQW1`` record inside a container.

    The sharded store (:mod:`repro.store`) persists these spans in its
    manifest so a single pulse record can be read with one
    seek-and-read -- ``container[offset : offset + length]`` is a
    complete standalone record for :func:`parse_waveform` -- without
    parsing the rest of the shard.
    """

    gate: str
    qubits: Tuple[int, ...]
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


def serialize_library(library: LibraryBitstream) -> bytes:
    """Pack a whole compiled library into one canonical container."""
    return serialize_library_indexed(library)[0]


def serialize_library_indexed(
    library: LibraryBitstream,
) -> Tuple[bytes, Tuple[RecordSpan, ...]]:
    """Serialize a container and report each record's byte extent.

    Returns ``(blob, spans)`` where ``blob`` is exactly what
    :func:`serialize_library` produces and ``spans[i]`` locates entry
    ``i``'s embedded waveform record inside it.
    """
    codec = _codec_for_name(library.variant)
    writer = _Writer()
    writer.raw(LIBRARY_MAGIC)
    writer.pack("BB", codec.wire_id, 0)
    writer.pack("I", library.window_size)
    writer.string(library.device_name)
    writer.pack("I", len(library.entries))
    spans: List[RecordSpan] = []
    for entry in library.entries:
        # Fail at save time, not at a (possibly much later) load: the
        # container is single-variant, and the duplicated binding must
        # agree with the embedded record.
        if entry.compressed.variant != library.variant:
            raise CompressionError(
                f"entry variant {entry.compressed.variant!r} disagrees "
                f"with container variant {library.variant!r}"
            )
        if (entry.gate, entry.qubits) != (
            entry.compressed.gate,
            entry.compressed.qubits,
        ):
            raise CompressionError(
                f"entry binding ({entry.gate!r}, {entry.qubits}) disagrees "
                f"with its waveform record "
                f"({entry.compressed.gate!r}, {entry.compressed.qubits})"
            )
        writer.string(entry.gate)
        if len(entry.qubits) > 0xFF:
            raise CompressionError(
                f"{len(entry.qubits)} qubits exceed the u8 count"
            )
        writer.pack("B", len(entry.qubits))
        for qubit in entry.qubits:
            writer.pack("H", qubit)
        writer.pack("dd", entry.mse, entry.threshold)
        record = serialize_waveform(entry.compressed)
        writer.pack("I", len(record))
        spans.append(
            RecordSpan(
                gate=entry.gate,
                qubits=entry.qubits,
                offset=writer.tell(),
                length=len(record),
            )
        )
        writer.raw(record)
    return writer.getvalue(), tuple(spans)


def parse_library(data) -> LibraryBitstream:
    """Parse a library container back into entries, losslessly.

    Dispatches to the vectorized engine
    (:func:`repro.compression.fastpath.parse_library_fast`); the scalar
    oracle remains available as :func:`parse_library_scalar`.
    """
    from repro.compression.fastpath import parse_library_fast

    return parse_library_fast(data)


def parse_library_scalar(data: bytes) -> LibraryBitstream:
    """Word-at-a-time container parser: the conformance oracle."""
    reader = _Reader(bytes(data))
    if reader.take(4, "library magic") != LIBRARY_MAGIC:
        raise CompressionError("not a COMPAQT library bitstream (bad magic)")
    variant_id, flags = reader.unpack("BB", "library header")
    variant = _codec_for_id(variant_id).name
    if flags != 0:
        raise CompressionError(f"reserved flags 0x{flags:02x} set")
    window_size = reader.unpack("I", "window size")
    device_name = reader.string("device name")
    n_entries = reader.unpack("I", "entry count")
    entries: List[LibraryEntry] = []
    for _ in range(n_entries):
        gate = reader.string("gate name")
        n_qubits = reader.unpack("B", "qubit count")
        qubits = tuple(reader.unpack("H", "qubit index") for _ in range(n_qubits))
        mse, threshold = reader.unpack("dd", "entry metrics")
        record_len = reader.unpack("I", "record length")
        record = _Reader(
            reader.data, reader.offset, reader.offset + record_len
        )
        if record.end > reader.end:
            raise CompressionError(
                f"truncated bitstream: record of {record_len} bytes "
                f"overruns the container"
            )
        compressed = _read_waveform(record)
        record.expect_end("waveform record")
        reader.offset = record.end
        if compressed.variant != variant:
            raise CompressionError(
                f"entry variant {compressed.variant!r} disagrees with "
                f"container variant {variant!r}"
            )
        if (gate, qubits) != (compressed.gate, compressed.qubits):
            raise CompressionError(
                f"entry binding ({gate!r}, {qubits}) disagrees with its "
                f"waveform record ({compressed.gate!r}, {compressed.qubits})"
            )
        entries.append(
            LibraryEntry(
                gate=gate,
                qubits=qubits,
                mse=mse,
                threshold=threshold,
                compressed=compressed,
            )
        )
    reader.expect_end("library container")
    return LibraryBitstream(
        device_name=device_name,
        window_size=window_size,
        variant=variant,
        entries=tuple(entries),
    )
