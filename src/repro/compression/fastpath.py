"""Zero-copy vectorized wire-format engine and fused parse→decode.

The scalar reader in :mod:`repro.compression.bitstream` walks a
``CQW1``/``CQL1`` blob one 32-bit word at a time through ``struct`` --
total and easy to audit, but it is pure Python on the serving cold-miss
critical path, which is exactly where COMPAQT says latency matters
(decompression happens at gate-issue time).  This module re-implements
the read side as numpy array passes over the same bytes:

* only the per-**window** u16 headers are walked in Python (their
  positions are data-dependent: each header says where the next one
  lives), and that walk just records offsets -- it never touches words;
* every per-**word** operation -- gathering the tagged 32-bit stream
  out of the buffer, splitting tags from payloads, checking reserved
  bits, zero-run placement, run lengths, per-window decoded sizes and
  stream canonicality -- happens in **one** batched numpy pass per
  call, covering every channel of every record in the call at once
  (per-channel passes would drown tiny windows in numpy fixed costs);
* the **fused** decode path (:func:`decode_record_bytes`,
  :func:`decode_records`, :func:`decode_library_bytes`) goes straight
  from those tag/payload arrays to one dense coefficient matrix and
  one grouped inverse kernel call per ``(codec, window size)`` --
  without ever materializing per-window
  :class:`~repro.transforms.rle.EncodedWindow` objects.

The scalar reader remains the conformance oracle:
:func:`parse_waveform_fast` / :func:`parse_library_fast` must return
objects equal to
:func:`~repro.compression.bitstream.parse_waveform_scalar` /
``parse_library_scalar`` on every input -- and raise
:class:`~repro.errors.CompressionError` on exactly the inputs the
oracle rejects (the object path may bypass ``EncodedWindow.__init__``
only because the batched pass has already enforced every invariant the
constructor checks).  ``tests/test_fastpath.py`` fuzzes this
equivalence on random, golden and malformed bytes across all
registered codecs, and the perf bench enforces it together with the
>=10x cold-miss speedup gate.

All entry points accept any C-contiguous bytes-like object (``bytes``,
``bytearray``, ``memoryview``, mmap slices), so the sharded store can
feed mmap-backed shard views through without copies; every array the
engine returns owns its data (gathers copy), so no view outlives the
call.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.compression.codecs import Codec
from repro.compression.pipeline import (
    CompressedChannel,
    CompressedWaveform,
)
from repro.compression.window import n_windows as expected_n_windows
from repro.pulses.waveform import Waveform
from repro.transforms.rle import TAG_ZERO_RUN, EncodedWindow

__all__ = [
    "parse_waveform_fast",
    "parse_library_fast",
    "decode_record_bytes",
    "decode_records",
    "decode_library_bytes",
]

_TAG_SHIFT = 16
_PAYLOAD_MASK = 0xFFFF
_TAG_MASK = 0x3
_RESERVED_MASK = np.uint32(
    0xFFFFFFFF ^ (_PAYLOAD_MASK | (_TAG_MASK << _TAG_SHIFT))
)


_BITSTREAM = None


def _bitstream():
    """Late import: bitstream dispatches here, so import lazily."""
    global _BITSTREAM
    if _BITSTREAM is None:
        from repro.compression import bitstream

        _BITSTREAM = bitstream
    return _BITSTREAM


def _as_u8(data) -> np.ndarray:
    """Zero-copy uint8 view of any C-contiguous bytes-like buffer."""
    try:
        return np.frombuffer(data, dtype=np.uint8)
    except (ValueError, TypeError, BufferError) as exc:
        raise CompressionError(f"unreadable bitstream buffer: {exc}") from None


def _make_window(coeffs: tuple, zero_run: int) -> EncodedWindow:
    """Construct an EncodedWindow without re-running its validation.

    The batched word pass has already enforced the constructor's
    invariants (non-negative run, trailing zeros folded into the
    codeword), so the object path skips the dataclass ``__init__`` /
    ``__post_init__`` -- the dominant cost of materializing thousands
    of tiny windows.
    """
    window = object.__new__(EncodedWindow)
    object.__setattr__(window, "coeffs", coeffs)
    object.__setattr__(window, "zero_run", zero_run)
    return window


def _make_waveform(name, samples, dt, gate, qubits) -> Waveform:
    """Construct a Waveform without re-running its validation.

    Every constructor invariant already holds by construction here:
    samples are a non-empty 1-D complex128 slice of a read-only batch
    array with magnitude clamped to <= 1, and dt was validated at scan
    time -- so the fused path skips the per-record ``asarray`` /
    ``abs``/``max`` pass.
    """
    waveform = object.__new__(Waveform)
    set_ = object.__setattr__
    set_(waveform, "name", name)
    set_(waveform, "samples", samples)
    set_(waveform, "dt", dt)
    set_(waveform, "gate", gate)
    set_(waveform, "qubits", qubits)
    set_(waveform, "metadata", {})
    return waveform


# Precompiled wire structs (struct.calcsize per call is measurable on
# the per-record header path).
_S_H = struct.Struct("<H")
_S_B = struct.Struct("<B")
_S_I = struct.Struct("<I")
_S_II = struct.Struct("<II")
_S_D = struct.Struct("<d")
_S_DD = struct.Struct("<dd")
_S_RECORD_HEAD = struct.Struct("<4sBBI")
_S_QUBITS: Dict[int, struct.Struct] = {}

#: Column offsets of a wire word's four little-endian bytes.
_BYTE_LANES = np.arange(4, dtype=np.int64)


# ---------------------------------------------------------------------------
# Bounds-checked header cursor (the scalar part: magics, strings, dt).
# ---------------------------------------------------------------------------


class _Cursor:
    """Tiny bounds-checked reader over any bytes-like buffer.

    Mirrors the scalar ``_Reader`` error phrasing so the fast path is
    indistinguishable from the oracle on malformed headers, but works
    on memoryviews/mmaps without copying the underlying buffer.
    """

    __slots__ = ("data", "offset", "end")

    def __init__(self, data, offset: int = 0, end: int | None = None) -> None:
        self.data = data
        self.offset = offset
        self.end = len(data) if end is None else end

    def take(self, count: int, what: str) -> bytes:
        start = self.offset
        stop = start + count
        if stop > self.end:
            raise CompressionError(
                f"truncated bitstream: needed {count} bytes for {what}, "
                f"had {self.end - start}"
            )
        self.offset = stop
        return bytes(self.data[start:stop])

    def unpack(self, compiled: struct.Struct, what: str) -> tuple:
        """Read one precompiled struct; always returns the value tuple."""
        start = self.offset
        stop = start + compiled.size
        if stop > self.end:
            raise CompressionError(
                f"truncated bitstream: needed {compiled.size} bytes for "
                f"{what}, had {self.end - start}"
            )
        self.offset = stop
        return compiled.unpack_from(self.data, start)

    def string(self, what: str) -> str:
        start = self.offset
        if start + 2 > self.end:
            raise CompressionError(
                f"truncated bitstream: needed 2 bytes for {what} length, "
                f"had {self.end - start}"
            )
        (length,) = _S_H.unpack_from(self.data, start)
        stop = start + 2 + length
        if stop > self.end:
            raise CompressionError(
                f"truncated bitstream: needed {length} bytes for {what}, "
                f"had {self.end - start - 2}"
            )
        self.offset = stop
        try:
            return bytes(self.data[start + 2 : stop]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CompressionError(f"invalid utf-8 in {what}: {exc}") from None

    def expect_end(self, what: str) -> None:
        if self.offset != self.end:
            raise CompressionError(
                f"{self.end - self.offset} trailing bytes after {what}"
            )


# ---------------------------------------------------------------------------
# Batched channel scan.
#
# Phase 1 (Python, cheap): walk the u16 window-header chain of each
# channel, recording absolute word positions.  Phase 2 (numpy, once per
# call): gather and validate every word of every recorded channel.
# ---------------------------------------------------------------------------


class _ChannelRef:
    """One channel's slice of the batch: windows [start, end)."""

    __slots__ = ("start", "end", "original_length")

    def __init__(self, start: int, end: int, original_length: int) -> None:
        self.start = start
        self.end = end
        self.original_length = original_length


class _ScanBatch:
    """Accumulates window geometry across every channel of one call."""

    __slots__ = ("u8", "counts", "ch_base", "decoded_sizes", "ch_windows")

    def __init__(self, u8: np.ndarray) -> None:
        self.u8 = u8
        self.counts: List[int] = []  # stored words per window
        self.ch_base: List[int] = []  # first header's absolute offset, per channel
        self.decoded_sizes: List[int] = []  # expected decode size, per channel
        self.ch_windows: List[int] = []  # window count, per channel

    def scan_channel(
        self, cursor: _Cursor, codec: Codec, window_size: int
    ) -> _ChannelRef:
        """Walk one channel block's headers; words are handled later.

        The loop only collects word counts -- absolute header offsets
        are reconstructed vectorized in :meth:`finalize` from the
        channel's base offset (each window is ``2 + 4 * n_words`` bytes
        past the previous one).  The cursor's buffer must be the
        batch's gather buffer (multi-record callers join their blobs
        before scanning), so cursor offsets are already absolute.
        """
        original_length, count = cursor.unpack(
            _S_II, "channel length and window count"
        )
        if original_length < 1:
            raise CompressionError("channel declares zero samples")
        if count != expected_n_windows(original_length, window_size):
            raise CompressionError(
                f"channel of {original_length} samples needs "
                f"{expected_n_windows(original_length, window_size)} windows "
                f"of {window_size}, stream declares {count}"
            )
        data, end = cursor.data, cursor.end
        offset = cursor.offset
        counts = self.counts
        append = counts.append
        start = len(counts)
        self.ch_base.append(offset)
        try:
            for _ in range(count):
                # One bounds check per window: if even the 2-byte header
                # overruns, the combined bound below fails too (and a
                # read past the physical buffer raises IndexError).
                n_words = data[offset] | (data[offset + 1] << 8)
                if n_words < 1:
                    raise CompressionError("window header declares zero words")
                step = 2 + 4 * n_words
                if offset + step > end:
                    raise CompressionError(
                        f"truncated bitstream: needed {step} bytes for a "
                        f"{n_words}-word window, had {end - offset}"
                    )
                append(n_words)
                offset += step
        except IndexError:
            raise CompressionError(
                f"truncated bitstream: needed 2 bytes for window header, "
                f"had {end - offset}"
            ) from None
        cursor.offset = offset
        self.decoded_sizes.append(codec.coeff_count(window_size))
        self.ch_windows.append(count)
        return _ChannelRef(start, len(counts), int(original_length))

    def finalize(self) -> "_WordData":
        """One vectorized gather + validation pass over every word."""
        counts = np.asarray(self.counts, dtype=np.int64)
        n_windows = counts.size
        total = int(counts.sum()) if n_windows else 0
        if not total:
            return _WordData(
                counts=counts,
                coeff_counts=counts,
                zero_runs=counts,
                coeff_values=np.empty(0, dtype=np.int64),
                coeff_bounds=counts,
            )

        # Rebuild each window's absolute header offset: within a
        # channel, window k starts 2 + 4 * n_words past window k - 1.
        steps = 4 * counts + 2
        rel = np.cumsum(steps) - steps
        ch_nw = np.asarray(self.ch_windows, dtype=np.int64)
        ch_first = np.cumsum(ch_nw) - ch_nw
        headers = rel + np.repeat(
            np.asarray(self.ch_base, dtype=np.int64) - rel[ch_first], ch_nw
        )

        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        byte0 = np.repeat(headers + 2, counts) + 4 * within
        # One 2-D gather of each word's 4 bytes, reinterpreted as
        # little-endian u32 (fancy indexing yields a fresh contiguous
        # array, so the view is safe on any host endianness).
        words = self.u8[byte0[:, None] + _BYTE_LANES].view("<u4").ravel()

        reserved = words & _RESERVED_MASK
        if reserved.any():
            bad = int(words[np.flatnonzero(reserved)[0]])
            raise CompressionError(
                f"reserved bits set in memory word 0x{bad:08x}"
            )
        tags = (words >> _TAG_SHIFT) & _TAG_MASK
        if (tags > TAG_ZERO_RUN).any():
            bad_tag = int(tags[np.flatnonzero(tags > TAG_ZERO_RUN)[0]])
            raise CompressionError(f"unknown memory word tag {bad_tag}")

        payloads = (words & _PAYLOAD_MASK).astype(np.int64)
        is_run = tags == TAG_ZERO_RUN
        last_index = starts + counts - 1
        is_last = np.zeros(total, dtype=bool)
        is_last[last_index] = True
        if (is_run & ~is_last).any():
            raise CompressionError(
                "zero-run codeword must be the last word of a window"
            )
        run_last = is_run[last_index]
        zero_runs = np.where(run_last, payloads[last_index], 0)
        if (zero_runs[run_last] < 1).any():
            raise CompressionError("zero-run codeword with empty run")

        coeff_counts = counts - run_last
        decoded = coeff_counts + zero_runs
        expected = np.repeat(
            np.asarray(self.decoded_sizes, dtype=np.int64),
            np.asarray(self.ch_windows, dtype=np.int64),
        )
        if (decoded != expected).any():
            k = int(np.flatnonzero(decoded != expected)[0])
            raise CompressionError(
                f"window decodes to {int(decoded[k])} samples, expected "
                f"{int(expected[k])} ({int(coeff_counts[k])} coefficients "
                f"+ {int(zero_runs[k])}-zero run)"
            )
        # Canonicality: a window whose last explicit coefficient is
        # zero while a run codeword follows is one the serializer never
        # emits; the scalar oracle rejects it in
        # EncodedWindow.__post_init__, so both fast paths must too.
        check = run_last & (coeff_counts > 0)
        if check.any() and (payloads[last_index[check] - 1] == 0).any():
            raise CompressionError(
                "trailing zeros must be folded into the codeword"
            )

        is_coeff = ~is_run
        coeff_values = payloads[is_coeff]
        np.subtract(
            coeff_values,
            0x10000,
            out=coeff_values,
            where=coeff_values >= 0x8000,
        )  # two's complement int16
        return _WordData(
            counts=counts,
            coeff_counts=coeff_counts,
            zero_runs=zero_runs,
            coeff_values=coeff_values,
            coeff_bounds=np.cumsum(coeff_counts),
        )


class _WordData:
    """The batch's words, separated: per-window geometry + coefficients.

    ``coeff_values`` holds every explicit (sign-extended) coefficient
    of every window in stream order; window ``k`` owns
    ``coeff_values[coeff_bounds[k] - coeff_counts[k] : coeff_bounds[k]]``.
    """

    __slots__ = (
        "counts",
        "coeff_counts",
        "zero_runs",
        "coeff_values",
        "coeff_bounds",
        "_values_list",
    )

    def __init__(
        self, counts, coeff_counts, zero_runs, coeff_values, coeff_bounds
    ) -> None:
        self.counts = counts
        self.coeff_counts = coeff_counts
        self.zero_runs = zero_runs
        self.coeff_values = coeff_values
        self.coeff_bounds = coeff_bounds
        self._values_list = None

    # -- object path ---------------------------------------------------------

    def windows(self, ref: _ChannelRef) -> Tuple[EncodedWindow, ...]:
        """Materialize one channel's EncodedWindow objects."""
        if self._values_list is None:
            self._values_list = self.coeff_values.tolist()
        values = self._values_list
        bounds = self.coeff_bounds[ref.start : ref.end].tolist()
        runs = self.zero_runs[ref.start : ref.end].tolist()
        start = (
            int(self.coeff_bounds[ref.start] - self.coeff_counts[ref.start])
            if ref.end > ref.start
            else 0
        )
        out = []
        append = out.append
        for end, run in zip(bounds, runs):
            append(_make_window(tuple(values[start:end]), run))
            start = end
        return tuple(out)

    # -- fused path ----------------------------------------------------------

    def coeff_matrix(self, refs: Sequence[_ChannelRef], width: int) -> np.ndarray:
        """Dense coefficient matrix for the given channels, stacked.

        Bit-identical to ``rle_expand_blocks`` over the channels'
        window objects: one zero allocation, one fancy-indexed scatter.
        """
        n_refs = len(refs)
        lens = np.fromiter(
            (ref.end - ref.start for ref in refs), dtype=np.int64, count=n_refs
        )
        n = int(lens.sum()) if n_refs else 0
        if n:
            ref_starts = np.fromiter(
                (ref.start for ref in refs), dtype=np.int64, count=n_refs
            )
            window_ids = np.repeat(
                ref_starts - (np.cumsum(lens) - lens), lens
            ) + np.arange(n, dtype=np.int64)
        else:
            window_ids = np.empty(0, dtype=np.int64)
        out = np.zeros((n, width), dtype=np.int64)
        cc = self.coeff_counts[window_ids]
        total = int(cc.sum())
        if total:
            rows = np.repeat(np.arange(n, dtype=np.int64), cc)
            local = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(cc) - cc, cc
            )
            src = np.repeat(self.coeff_bounds[window_ids] - cc, cc) + local
            out[rows, local] = self.coeff_values[src]
        return out


# ---------------------------------------------------------------------------
# Record scan.
# ---------------------------------------------------------------------------


class _RecordScan:
    """One scanned ``CQW1`` record: binding metadata + channel refs."""

    __slots__ = ("name", "gate", "qubits", "dt", "codec", "window_size",
                 "i_ref", "q_ref")

    def __init__(self, name, gate, qubits, dt, codec, window_size,
                 i_ref, q_ref) -> None:
        self.name = name
        self.gate = gate
        self.qubits = qubits
        self.dt = dt
        self.codec = codec
        self.window_size = window_size
        self.i_ref = i_ref
        self.q_ref = q_ref


def _read_qubits(cursor: _Cursor) -> Tuple[int, ...]:
    (n_qubits,) = cursor.unpack(_S_B, "qubit count")
    if not n_qubits:
        return ()
    compiled = _S_QUBITS.get(n_qubits)
    if compiled is None:
        compiled = _S_QUBITS.setdefault(n_qubits, struct.Struct(f"<{n_qubits}H"))
    return cursor.unpack(compiled, "qubit indices")


def _scan_record(cursor: _Cursor, batch: _ScanBatch) -> _RecordScan:
    bitstream = _bitstream()
    magic, variant_id, flags, window_size = cursor.unpack(
        _S_RECORD_HEAD, "waveform header"
    )
    if magic != bitstream.WAVEFORM_MAGIC:
        raise CompressionError("not a COMPAQT waveform bitstream (bad magic)")
    codec = bitstream._codec_for_id(variant_id)
    if flags != 0:
        raise CompressionError(f"reserved flags 0x{flags:02x} set")
    if window_size < 1:
        raise CompressionError(f"window size must be >= 1, got {window_size}")
    name = cursor.string("waveform name")
    gate = cursor.string("gate name")
    qubits = _read_qubits(cursor)
    (dt,) = cursor.unpack(_S_D, "dt")
    if not dt > 0:
        raise CompressionError(f"dt must be positive, got {dt}")
    i_ref = batch.scan_channel(cursor, codec, window_size)
    q_ref = batch.scan_channel(cursor, codec, window_size)
    if i_ref.end - i_ref.start != q_ref.end - q_ref.start:
        raise CompressionError("I and Q channels must have equal window counts")
    return _RecordScan(
        name=name, gate=gate, qubits=qubits, dt=dt, codec=codec,
        window_size=window_size, i_ref=i_ref, q_ref=q_ref,
    )


def _record_to_waveform(scan: _RecordScan, words: _WordData) -> CompressedWaveform:
    def channel(ref: _ChannelRef) -> CompressedChannel:
        return CompressedChannel(
            windows=words.windows(ref),
            variant=scan.codec.name,
            window_size=scan.window_size,
            original_length=ref.original_length,
        )

    return CompressedWaveform(
        name=scan.name,
        gate=scan.gate,
        qubits=scan.qubits,
        dt=scan.dt,
        i_channel=channel(scan.i_ref),
        q_channel=channel(scan.q_ref),
    )


# ---------------------------------------------------------------------------
# Public object-parse fast paths.
# ---------------------------------------------------------------------------


def parse_waveform_fast(data) -> CompressedWaveform:
    """Vectorized :func:`~repro.compression.bitstream.parse_waveform`.

    Accepts any bytes-like buffer; returns objects equal to the scalar
    oracle's on every well-formed input and raises
    :class:`CompressionError` on every malformed one.
    """
    cursor = _Cursor(data)
    batch = _ScanBatch(_as_u8(data))
    scan = _scan_record(cursor, batch)
    cursor.expect_end("waveform record")
    return _record_to_waveform(scan, batch.finalize())


def _scan_library(cursor: _Cursor, batch: _ScanBatch):
    """Common library walk: yields (gate, qubits, mse, threshold, scan)."""
    bitstream = _bitstream()
    magic, variant_id, flags, window_size = cursor.unpack(
        _S_RECORD_HEAD, "library header"
    )
    if magic != bitstream.LIBRARY_MAGIC:
        raise CompressionError("not a COMPAQT library bitstream (bad magic)")
    variant = bitstream._codec_for_id(variant_id).name
    if flags != 0:
        raise CompressionError(f"reserved flags 0x{flags:02x} set")
    device_name = cursor.string("device name")
    (n_entries,) = cursor.unpack(_S_I, "entry count")
    rows = []
    for _ in range(n_entries):
        gate = cursor.string("gate name")
        qubits = _read_qubits(cursor)
        mse, threshold = cursor.unpack(_S_DD, "entry metrics")
        (record_len,) = cursor.unpack(_S_I, "record length")
        if cursor.offset + record_len > cursor.end:
            raise CompressionError(
                f"truncated bitstream: record of {record_len} bytes "
                f"overruns the container"
            )
        record = _Cursor(cursor.data, cursor.offset, cursor.offset + record_len)
        scan = _scan_record(record, batch)
        record.expect_end("waveform record")
        cursor.offset = record.end
        if scan.codec.name != variant:
            raise CompressionError(
                f"entry variant {scan.codec.name!r} disagrees with "
                f"container variant {variant!r}"
            )
        if (gate, qubits) != (scan.gate, scan.qubits):
            raise CompressionError(
                f"entry binding ({gate!r}, {qubits}) disagrees with its "
                f"waveform record ({scan.gate!r}, {scan.qubits})"
            )
        rows.append((gate, qubits, mse, threshold, scan))
    cursor.expect_end("library container")
    return device_name, window_size, variant, rows


def parse_library_fast(data):
    """Vectorized :func:`~repro.compression.bitstream.parse_library`."""
    bitstream = _bitstream()
    cursor = _Cursor(data)
    batch = _ScanBatch(_as_u8(data))
    device_name, window_size, variant, rows = _scan_library(cursor, batch)
    words = batch.finalize()
    entries = tuple(
        bitstream.LibraryEntry(
            gate=gate,
            qubits=qubits,
            mse=mse,
            threshold=threshold,
            compressed=_record_to_waveform(scan, words),
        )
        for gate, qubits, mse, threshold, scan in rows
    )
    return bitstream.LibraryBitstream(
        device_name=device_name,
        window_size=window_size,
        variant=variant,
        entries=entries,
    )


# ---------------------------------------------------------------------------
# Fused decode: bytes -> tag/payload arrays -> grouped inverse kernels.
# ---------------------------------------------------------------------------


def _decode_scans(
    scans: Sequence[_RecordScan], words: _WordData
) -> List[Waveform]:
    """Decode scanned records through one inverse kernel per group.

    The channel grouping mirrors
    :func:`repro.compression.batch.decompress_channels` -- group by
    ``(window_size, codec)``, expand, one ``inverse_blocks`` call per
    group -- so the output is bit-identical to the batched engine (and
    therefore to the scalar reference the PR 2 conformance suite pins).
    """
    channels: List[Tuple[_ChannelRef, Codec, int]] = []
    for scan in scans:
        channels.append((scan.i_ref, scan.codec, scan.window_size))
        channels.append((scan.q_ref, scan.codec, scan.window_size))

    groups: Dict[Tuple[int, str], List[int]] = {}
    for index, (_ref, codec, ws) in enumerate(channels):
        groups.setdefault((ws, codec.name), []).append(index)

    for scan in scans:
        if scan.i_ref.original_length != scan.q_ref.original_length:
            # The scalar decoder would fail this record at the I/Q
            # combine; the fused path rejects it as the corruption it
            # is (the serializer always writes equal-length channels).
            raise CompressionError(
                f"I channel decodes {scan.i_ref.original_length} samples "
                f"but Q decodes {scan.q_ref.original_length}"
            )

    codes: List[np.ndarray] = [None] * len(channels)
    for (ws, _name), indices in groups.items():
        codec = channels[indices[0]][1]
        refs = [channels[i][0] for i in indices]
        recon = codec.inverse_blocks(
            words.coeff_matrix(refs, codec.coeff_count(ws))
        )
        flat = recon.reshape(-1)
        width = recon.shape[1] if recon.ndim == 2 else ws
        offset = 0
        for i, ref in zip(indices, refs):
            count = ref.end - ref.start
            # Inline merge_windows: drop the tail window's zero padding.
            codes[i] = flat[
                offset * width : offset * width + ref.original_length
            ]
            offset += count

    # Finish in the sample domain once for the whole batch: clip,
    # dequantize and magnitude-clamp every record's channels in single
    # array passes (elementwise, so bit-identical to the per-record
    # Waveform.from_fixed_point sequence), then hand each record a
    # slice of the shared complex envelope.
    i_big = np.concatenate(codes[0::2]) if len(scans) > 1 else codes[0]
    q_big = np.concatenate(codes[1::2]) if len(scans) > 1 else codes[1]
    np.clip(i_big, -32768, 32767, out=i_big)
    np.clip(q_big, -32768, 32767, out=q_big)
    samples = i_big / np.float64(32767.0) + 1j * (
        q_big / np.float64(32767.0)
    )
    magnitude = np.abs(samples)
    over = magnitude > 1.0
    if over.any():
        samples[over] /= magnitude[over]

    waveforms: List[Waveform] = []
    start = 0
    for scan in scans:
        end = start + scan.i_ref.original_length
        # Each record owns its samples (a shared-base slice would let
        # one cached pulse pin the whole batch's decoded memory).
        owned = samples if len(scans) == 1 else samples[start:end].copy()
        owned.setflags(write=False)
        waveforms.append(
            _make_waveform(
                name=f"{scan.name}~{scan.codec.name}",
                samples=owned,
                dt=scan.dt,
                gate=scan.gate,
                qubits=scan.qubits,
            )
        )
        start = end
    return waveforms


def decode_record_bytes(data) -> Waveform:
    """Fused bytes -> decoded waveform for one ``CQW1`` record.

    Bit-identical to
    ``decompress_waveform(parse_waveform(data))`` without building the
    intermediate ``EncodedWindow`` objects -- the serving cold-miss
    fast path for a single pulse.
    """
    cursor = _Cursor(data)
    batch = _ScanBatch(_as_u8(data))
    scan = _scan_record(cursor, batch)
    cursor.expect_end("waveform record")
    return _decode_scans([scan], batch.finalize())[0]


def decode_records(blobs: Sequence) -> List[Waveform]:
    """Fused decode of many standalone ``CQW1`` records.

    The record blobs are packed into one gather buffer (one small copy
    of already-compressed bytes), scanned, and decoded through one
    grouped inverse kernel call per ``(codec, window size)``; entry
    ``i`` is bit-identical to
    ``decompress_waveform(parse_waveform(blobs[i]))``.
    """
    blobs = list(blobs)
    if not blobs:
        raise CompressionError("cannot decode an empty record list")
    if len(blobs) == 1:
        return [decode_record_bytes(blobs[0])]
    # Join once: the word gather becomes a single pass for all records,
    # per-record cursors are reused, and the header walk always indexes
    # plain bytes even when the caller handed us mmap views.
    sizes = [len(blob) for blob in blobs]
    joined = b"".join(blobs)  # bytes.join accepts any buffer objects
    batch = _ScanBatch(_as_u8(joined))
    cursor = _Cursor(joined)
    scans: List[_RecordScan] = []
    base = 0
    for size in sizes:
        base += size
        cursor.end = base
        scan = _scan_record(cursor, batch)
        cursor.expect_end("waveform record")
        scans.append(scan)
    return _decode_scans(scans, batch.finalize())


def decode_library_bytes(
    data,
) -> List[Tuple[str, Tuple[int, ...], Waveform]]:
    """Fused decode of a whole ``CQL1`` container.

    Returns ``(gate, qubits, waveform)`` per entry, in container order,
    each waveform bit-identical to the scalar decode of that entry --
    the engine behind :meth:`repro.store.sharded.ShardedStore.decode_shard`.
    """
    cursor = _Cursor(data)
    batch = _ScanBatch(_as_u8(data))
    _device, _ws, _variant, rows = _scan_library(cursor, batch)
    scans = [scan for _g, _q, _m, _t, scan in rows]
    waveforms = _decode_scans(scans, batch.finalize()) if scans else []
    return [
        (gate, qubits, waveform)
        for (gate, qubits, _m, _t, _s), waveform in zip(rows, waveforms)
    ]
