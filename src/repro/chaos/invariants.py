"""Continuously-checkable invariants for the serving stack under chaos.

The harness does not assert "no errors" -- injected faults *should*
error.  It asserts the properties that must hold anyway:

* **Bit identity.**  Every successfully served waveform equals the
  scalar oracle (``decompress_waveform`` over the clean store record)
  sample for sample.  A fault may fail a read; it may never corrupt
  one.
* **Typed failure.**  Everything an injected fault surfaces is a
  :class:`~repro.errors.ReproError` subclass (``StoreError`` /
  ``CompressionError`` / ``ProtocolError`` / overload).  A bare
  ``OSError`` or ``KeyError`` escaping the stack is a violation.
* **Cache counter laws.**  ``lookups == hits + misses``,
  ``size <= capacity``, ``insertions - evictions == size`` (no
  ``clear()`` in the workload), all monotone.
* **Single-flight insert-once.**  With capacity >= the key universe,
  every key is decoded and inserted at most once -- coalescing, not
  duplicated work.
* **Net accounting.**  After quiesce, every admitted fetch resolved
  exactly one way: ``fetches == fetches_ok + request_errors``
  (overload sheds are refused *before* admission and counted apart).
* **Metric consistency.**  The metrics registry and the legacy stats
  dataclasses are one set of books: after quiesce the registry
  counters must agree with the ``as_dict`` surfaces
  (``cache.hits + cache.misses == cache.lookups``, pool
  ``jobs_ok + jobs_failed == jobs_submitted``).  A registry that
  drifts from the stats it claims to back is a violation.

Violations accumulate (thread-safely) as human-readable strings;
:meth:`InvariantChecker.raise_if_violated` turns them into one
:class:`~repro.errors.ChaosError`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.errors import (
    ChaosError,
    ReproError,
    ServerOverloadedError,
)
from repro.pulses.waveform import Waveform
from repro.store.cache import CacheStats
from repro.store.server import ServerStats

__all__ = ["InvariantChecker"]

_Key = Tuple[str, Tuple[int, ...]]


class InvariantChecker:
    """Accumulating invariant monitor shared by all workload threads."""

    def __init__(self, reference: Mapping[_Key, np.ndarray]) -> None:
        self.reference: Dict[_Key, np.ndarray] = dict(reference)
        self._lock = threading.Lock()
        self.violations: List[str] = []
        self.checks = 0
        self.identity_checks = 0
        self.typed_errors = 0
        self.overloads = 0
        self.untyped_errors = 0

    # -- recording -----------------------------------------------------------

    def _fail(self, message: str) -> None:
        with self._lock:
            self.violations.append(message)

    def _pass(self) -> None:
        with self._lock:
            self.checks += 1

    # -- the invariants --------------------------------------------------------

    def check_identity(self, key: _Key, waveform: Waveform) -> bool:
        """A served waveform must be bit-identical to the scalar oracle."""
        with self._lock:
            self.identity_checks += 1
        expected = self.reference.get(key)
        if expected is None:
            self._fail(f"identity: served unknown key {key}")
            return False
        got = waveform.samples
        if got.shape != expected.shape or not np.array_equal(got, expected):
            self._fail(
                f"identity: key {key} diverges from the scalar oracle "
                f"(served {got.shape}, expected {expected.shape})"
            )
            return False
        self._pass()
        return True

    def check_versioned_identity(
        self, key: _Key, waveform: Waveform, candidates: List[np.ndarray]
    ) -> bool:
        """Under live writes, a served waveform must be *some committed version*.

        Snapshot-consistent readers may legitimately serve any version
        that was ever durably committed for ``key`` (a reader pinned to
        an older generation serves older samples); what they may never
        serve is a hybrid, a torn record, or bytes from an aborted
        commit.  ``candidates`` is the committed-version history the
        write storm maintains for ``key``.
        """
        with self._lock:
            self.identity_checks += 1
        if not candidates:
            self._fail(f"versioned-identity: served unknown key {key}")
            return False
        got = waveform.samples
        for expected in candidates:
            if got.shape == expected.shape and np.array_equal(got, expected):
                self._pass()
                return True
        self._fail(
            f"versioned-identity: key {key} matches none of "
            f"{len(candidates)} committed version(s)"
        )
        return False

    def note_error(self, key, exc: BaseException) -> None:
        """Classify a workload exception: typed is fine, anything else is not."""
        with self._lock:
            if isinstance(exc, ServerOverloadedError):
                self.overloads += 1
            elif isinstance(exc, ReproError):
                self.typed_errors += 1
            else:
                self.untyped_errors += 1
                self.violations.append(
                    f"typed-failure: {type(exc).__name__} escaped the stack "
                    f"for {key}: {exc}"
                )

    def check_cache(self, stats: CacheStats) -> None:
        """The counter laws every snapshot must satisfy."""
        if stats.hits + stats.misses != stats.lookups:
            self._fail(
                f"cache: hits {stats.hits} + misses {stats.misses} "
                f"!= lookups {stats.lookups}"
            )
        elif stats.size > stats.capacity:
            self._fail(
                f"cache: size {stats.size} exceeds capacity {stats.capacity}"
            )
        elif stats.insertions - stats.evictions != stats.size:
            self._fail(
                f"cache: insertions {stats.insertions} - evictions "
                f"{stats.evictions} != size {stats.size}"
            )
        elif min(stats.hits, stats.misses, stats.insertions, stats.evictions) < 0:
            self._fail("cache: a counter went negative")
        else:
            self._pass()

    def check_single_flight(self, stats: ServerStats, n_keys: int) -> None:
        """With capacity >= the key universe, each key decodes at most once."""
        cache = stats.cache
        if cache.capacity < n_keys:
            return  # evictions legitimately force re-decodes
        if cache.evictions != 0:
            self._fail(
                f"single-flight: {cache.evictions} evictions with capacity "
                f"{cache.capacity} >= {n_keys} keys"
            )
        elif cache.insertions > n_keys:
            self._fail(
                f"single-flight: {cache.insertions} insertions for "
                f"{n_keys} distinct keys"
            )
        else:
            self._pass()

    def check_net(self, stats) -> None:
        """Post-quiesce accounting: every admitted fetch resolved once."""
        if stats.fetches != stats.fetches_ok + stats.request_errors:
            self._fail(
                f"net: fetches {stats.fetches} != fetches_ok "
                f"{stats.fetches_ok} + request_errors {stats.request_errors}"
            )
        elif min(stats.overloads, stats.coalesced_keys, stats.protocol_errors) < 0:
            self._fail("net: a counter went negative")
        else:
            self._pass()

    def check_metrics(
        self,
        snapshot: Mapping,
        server_stats: ServerStats,
        net_stats=None,
    ) -> None:
        """The registry and the legacy stats must be one set of books.

        ``snapshot`` is a merged metrics-registry snapshot
        (:meth:`PulseServer.metrics_snapshot` or
        :meth:`NetPulseServer.metrics_snapshot`) taken at the same
        quiesced moment as the stats dataclasses.  Checks both the
        cross-surface agreement (registry counter == stats field) and
        the internal counter laws the registry must satisfy on its own.
        """
        counters = dict(snapshot.get("counters", {})) if snapshot else {}

        def _expect(name: str, stat_value: int, label: str) -> bool:
            got = counters.get(name, 0)
            if got != stat_value:
                self._fail(
                    f"metrics: registry {name}={got} disagrees with "
                    f"{label}={stat_value}"
                )
                return False
            return True

        cache = server_stats.cache
        ok = True
        ok &= _expect("cache.hits", cache.hits, "CacheStats.hits")
        ok &= _expect("cache.misses", cache.misses, "CacheStats.misses")
        ok &= _expect("cache.insertions", cache.insertions, "CacheStats.insertions")
        ok &= _expect("cache.evictions", cache.evictions, "CacheStats.evictions")
        if counters.get("cache.hits", 0) + counters.get("cache.misses", 0) != (
            cache.lookups
        ):
            self._fail(
                f"metrics: cache.hits {counters.get('cache.hits', 0)} + "
                f"cache.misses {counters.get('cache.misses', 0)} != "
                f"lookups {cache.lookups}"
            )
            ok = False
        ok &= _expect("server.requests", server_stats.requests, "ServerStats.requests")
        ok &= _expect(
            "server.shard_fills", server_stats.shard_fills, "ServerStats.shard_fills"
        )
        pool = server_stats.pool
        if pool is not None:
            submitted = counters.get("pool.jobs_submitted", 0)
            jobs_ok = counters.get("pool.jobs_ok", 0)
            jobs_failed = counters.get("pool.jobs_failed", 0)
            if jobs_ok + jobs_failed != submitted:
                self._fail(
                    f"metrics: pool jobs_ok {jobs_ok} + jobs_failed "
                    f"{jobs_failed} != jobs_submitted {submitted}"
                )
                ok = False
            ok &= _expect("pool.jobs_ok", pool["jobs_ok"], "PoolStats.jobs_ok")
            ok &= _expect(
                "pool.jobs_failed", pool["jobs_failed"], "PoolStats.jobs_failed"
            )
        if net_stats is not None:
            ok &= _expect("net.fetches", net_stats.fetches, "NetServerStats.fetches")
            ok &= _expect(
                "net.fetches_ok", net_stats.fetches_ok, "NetServerStats.fetches_ok"
            )
            ok &= _expect(
                "net.overloads", net_stats.overloads, "NetServerStats.overloads"
            )
            ok &= _expect(
                "net.request_errors",
                net_stats.request_errors,
                "NetServerStats.request_errors",
            )
        if ok:
            self._pass()

    # -- reporting -----------------------------------------------------------

    def raise_if_violated(self) -> None:
        with self._lock:
            if self.violations:
                summary = "; ".join(self.violations[:8])
                extra = len(self.violations) - 8
                if extra > 0:
                    summary += f"; ... {extra} more"
                raise ChaosError(
                    f"{len(self.violations)} invariant violation(s): {summary}"
                )
