"""Deterministic, seeded fault injection for the serving stack.

The serving tier's failure paths (corrupt records, failed maps, slow
disks, hostile thread interleavings) are exactly the paths example-based
tests never reach under healthy inputs.  This module makes them
routine: a :class:`FaultPlan` decides *when* to hurt a read and *how*,
and :class:`FaultyStore` wraps a live
:class:`~repro.store.sharded.ShardedStore` so the cache, the pulse
server, and the network tier above it exercise their error handling
without knowing they are under test.

Fault taxonomy (``FAULT_KINDS``):

``truncate``
    A record span loses its tail before decode -- the fused parser is
    total, so this must surface as :class:`~repro.errors.CompressionError`.
``bitflip``
    One bit of a record span flips.  The default target is the 4-byte
    ``CQW1`` magic (guaranteed detection); ``bitflip_target="payload"``
    flips deeper bytes that may *parse* into garbage samples -- the mode
    used to prove the harness's bit-identity oracle actually catches
    undetectable corruption.
``map_oserror``
    The next shard map on the injecting thread raises ``OSError``
    inside :class:`~repro.store.sharded._MmapPool`, taking the same
    translation path as a real mmap failure (typed ``StoreError``).
    Transient: the following read remaps cleanly.
``slow_io``
    The injecting thread's next pool read sleeps ``slow_io_delay``
    seconds first -- a degraded disk, not an error.

Scheduling is deterministic: batch decode number ``tick`` draws a fault
iff ``(tick + 1) % period == 0``, cycling through ``kinds`` in order,
and all victim/bit choices come from ``random.Random`` seeded by
``(seed, tick)``.  Two runs with the same plan and the same per-thread
operation sequence inject the same faults.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.compression.fastpath import decode_records
from repro.errors import StoreError
from repro.pulses.waveform import Waveform
from repro.store.sharded import ShardedStore, normalize_key

__all__ = [
    "FAULT_KINDS",
    "POOL_FAULT_KINDS",
    "WRITE_FAULT_KINDS",
    "FaultPlan",
    "FaultyStore",
]

_Key = Tuple[str, Tuple[int, ...]]

#: Every read-path fault kind a plan may schedule, in default rotation
#: order.
FAULT_KINDS = ("truncate", "bitflip", "map_oserror", "slow_io")

#: Fault kinds the runner injects at the :class:`DecodePool` level
#: rather than through :class:`FaultyStore` -- decode workers open the
#: store themselves in another process, out of a wrapper's reach, so
#: these are delivered as real SIGKILLs (``worker_kill``) and a slab
#: too small for any batch (``shm_exhaust``, forcing the pipe-fallback
#: path).  See :func:`repro.chaos.runner.run_chaos`.
POOL_FAULT_KINDS = ("worker_kill", "shm_exhaust")

#: Fault kinds the runner injects into the CQS2 *commit protocol*
#: (:class:`repro.store.writable.StoreWriter`) during the write-storm
#: phase: ``crash_commit`` aborts a commit at a seeded
#: :data:`~repro.store.writable.COMMIT_HOOK_POINTS` yield point,
#: ``torn_write`` truncates the tail of a just-published generation
#: manifest (simulating rename-durable-but-data-torn storage).  Both
#: must leave the store reopenable as exactly the previous or the new
#: generation.
WRITE_FAULT_KINDS = ("crash_commit", "torn_write")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Args:
        seed: Root of every random choice (victim record, bit index).
        period: One fault per ``period`` batch decodes (>= 1).
        kinds: Rotation of fault kinds; subset of :data:`FAULT_KINDS`.
        slow_io_delay: Sleep, in seconds, for ``slow_io`` faults.
        bitflip_target: ``"magic"`` flips a header bit (always detected
            as ``CompressionError``); ``"payload"`` flips body bits
            that can decode into silent garbage, for validating the
            identity oracle itself.
    """

    seed: int = 0
    period: int = 7
    kinds: Tuple[str, ...] = FAULT_KINDS
    slow_io_delay: float = 0.002
    bitflip_target: str = "magic"

    def __post_init__(self) -> None:
        if self.period < 1:
            raise StoreError(f"fault period must be >= 1, got {self.period}")
        if not self.kinds:
            raise StoreError("fault plan needs at least one kind")
        unknown = set(self.kinds) - set(FAULT_KINDS) - set(WRITE_FAULT_KINDS)
        if unknown:
            raise StoreError(f"unknown fault kinds: {sorted(unknown)}")
        if self.bitflip_target not in ("magic", "payload"):
            raise StoreError(
                f"bitflip_target must be 'magic' or 'payload', "
                f"got {self.bitflip_target!r}"
            )
        if self.slow_io_delay < 0:
            raise StoreError("slow_io_delay must be >= 0")

    def fault_for(self, tick: int) -> Optional[str]:
        """The fault kind for batch decode number ``tick``, if any."""
        if (tick + 1) % self.period:
            return None
        return self.kinds[((tick + 1) // self.period - 1) % len(self.kinds)]

    def rng_for(self, tick: int) -> random.Random:
        """The (deterministic) choice stream for one tick's fault."""
        return random.Random((self.seed << 24) ^ tick)


class FaultyStore:
    """A fault-injecting proxy with a ``ShardedStore``'s read surface.

    Duck-typed: :class:`~repro.store.cache.PulseCache`,
    :class:`~repro.store.server.PulseServer`, and the network tier
    accept one anywhere a real store goes (attribute access falls
    through to the wrapped store).  Only :meth:`decode_many` -- the
    serving cold-miss path -- draws corruption faults; ``map_oserror``
    and ``slow_io`` are armed per-thread and fire inside the wrapped
    store's mmap pool via its ``io_fault_hook``, so they hit *every*
    read path at the layer a real disk would.

    Injected-fault counts are kept per kind in ``faults_injected``
    (thread-safe).  Use :meth:`calm` to suspend injection (e.g. for
    post-fault recovery reads).
    """

    def __init__(self, store: ShardedStore, plan: FaultPlan) -> None:
        write_kinds = set(plan.kinds) & set(WRITE_FAULT_KINDS)
        if write_kinds:
            raise StoreError(
                "FaultyStore injects read-path faults only; "
                f"{sorted(write_kinds)} belong to the commit protocol "
                "(see repro.chaos.runner's write storm)"
            )
        self._store = store
        self.plan = plan
        self._lock = threading.Lock()
        self._tick = 0
        self._armed = threading.local()
        self.enabled = True
        self.faults_injected: "Counter[str]" = Counter()
        store.io_fault_hook = self._pool_hook

    # -- delegation ----------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key) -> bool:
        return key in self._store

    def __repr__(self) -> str:
        return f"FaultyStore({self._store!r}, plan={self.plan!r})"

    # -- control -------------------------------------------------------------

    @contextlib.contextmanager
    def calm(self) -> Iterator[None]:
        """Suspend fault injection inside the block (not thread-scoped)."""
        previous, self.enabled = self.enabled, False
        try:
            yield
        finally:
            self.enabled = previous

    def detach(self) -> None:
        """Unhook from the wrapped store's mmap pool."""
        self._store.io_fault_hook = None

    # -- the injection points --------------------------------------------------

    def _pool_hook(self, event: str, shard: int) -> None:
        armed = self._armed.__dict__
        if event == "view" and armed.pop("slow_io", False):
            time.sleep(self.plan.slow_io_delay)
        elif event == "map" and armed.pop("map_oserror", False):
            raise OSError("chaos: injected transient mmap failure")

    def _draw(self) -> Tuple[Optional[str], int]:
        with self._lock:
            tick = self._tick
            self._tick += 1
            if not self.enabled:
                return None, tick
            kind = self.plan.fault_for(tick)
            if kind is not None:
                self.faults_injected[kind] += 1
            return kind, tick

    def decode_many(
        self, requests: Iterable[Tuple[str, Sequence[int]]]
    ) -> List[Waveform]:
        """The wrapped fused decode, with this tick's fault applied."""
        requests = list(requests)
        kind, tick = self._draw()
        if kind is None or not requests:
            return self._store.decode_many(requests)
        if kind == "slow_io":
            self._armed.slow_io = True
            return self._store.decode_many(requests)
        if kind == "map_oserror":
            self._armed.map_oserror = True
            # Drop the pooled mappings so the next view *must* remap --
            # that map attempt trips the armed hook and surfaces as a
            # typed StoreError; the read after it remaps cleanly.
            self._store.close()
            try:
                return self._store.decode_many(requests)
            finally:
                self._armed.map_oserror = False
        return self._decode_with_corruption(kind, tick, requests)

    def _decode_with_corruption(
        self, kind: str, tick: int, requests: List[Tuple[str, Sequence[int]]]
    ) -> List[Waveform]:
        """Damage one record's bytes, decode the batch like the store would."""
        rng = self.plan.rng_for(tick)
        keys = [normalize_key(*request) for request in requests]
        unique = list(dict.fromkeys(keys))
        victim = rng.randrange(len(unique))
        views: List[memoryview] = []
        for position, key in enumerate(unique):
            blob = bytearray(self._store.read_record_bytes(*key))
            if position == victim:
                self._damage(kind, blob, rng)
            views.append(memoryview(bytes(blob)))
        # Same fused decoder the store uses: a detected fault raises
        # CompressionError for the batch; an undetectable payload flip
        # decodes to garbage the identity oracle must flag.
        waveforms = decode_records(views)
        decoded = dict(zip(unique, waveforms))
        return [decoded[key] for key in keys]

    def _damage(self, kind: str, blob: bytearray, rng: random.Random) -> None:
        if kind == "truncate":
            del blob[max(1, rng.randrange(1, max(2, len(blob)))):]
            return
        assert kind == "bitflip"
        if self.plan.bitflip_target == "magic":
            index = rng.randrange(min(4, len(blob)))
        else:
            index = rng.randrange(min(8, len(blob) - 1), len(blob))
        blob[index] ^= 1 << rng.randrange(8)
