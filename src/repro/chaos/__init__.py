"""Fault-injection chaos/soak harness for the concurrent serving stack.

The regression net for the serving tier's failure paths: seeded,
deterministic faults (:mod:`repro.chaos.faults`) injected under live
threaded and networked workloads (:mod:`repro.chaos.runner`) while
invariants -- bit identity against the scalar oracle, cache counter
laws, single-flight insert-once, net-server accounting, typed-failure
discipline -- are checked throughout
(:mod:`repro.chaos.invariants`).

Entry points: ``repro chaos`` on the CLI, :func:`run_chaos` from code,
:func:`repro.perf.serving_bench.run_serving_soak` for the bench-flavored
multi-device sweep.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    POOL_FAULT_KINDS,
    WRITE_FAULT_KINDS,
    FaultPlan,
    FaultyStore,
)
from repro.chaos.invariants import InvariantChecker
from repro.chaos.runner import CHAOS_SCHEMA, ChaosReport, run_chaos

__all__ = [
    "FAULT_KINDS",
    "POOL_FAULT_KINDS",
    "WRITE_FAULT_KINDS",
    "FaultPlan",
    "FaultyStore",
    "InvariantChecker",
    "CHAOS_SCHEMA",
    "ChaosReport",
    "run_chaos",
]
