"""The chaos/soak runner: seeded fault workloads over the live stack.

One :func:`run_chaos` call is four phases over a single store:

1. **Threaded.**  Worker threads hammer a
   :class:`~repro.store.PulseServer` with a seeded mix of ``fetch`` and
   ``fetch_batch`` while the :class:`~repro.chaos.faults.FaultPlan`
   injects truncations, bit flips, transient map failures, and slow
   reads, and a seeded preemption hook jitters the yield points around
   lock acquisitions.  Every successful read is checked bit-identical
   against the scalar oracle; every failure must be a typed
   :class:`~repro.errors.ReproError`.
2. **Networked.**  The same faulty store goes behind a real CQN1
   socket (:func:`~repro.serve_net.server.serve_in_thread`, small
   ``max_inflight`` so overload shedding runs too) and client threads
   repeat the exercise over the wire, mixing in requests for keys the
   store does not hold.
3. **Pool storm** (``decode_workers > 0``).  A server routes cold
   fills through a :class:`~repro.serve_net.workers.DecodePool` while
   a killer thread SIGKILLs live decode workers mid-job
   (``worker_kill``) and a deliberately tiny shared-memory slab forces
   the pipe-transport fallback (``shm_exhaust``).  Kills must surface
   only as typed :class:`~repro.errors.DecodeWorkerError` on the
   victim job's keys -- never a hang, never an untyped escape -- and a
   post-storm full-catalog read through the same (respawned) pool must
   be bit-identical.  This phase runs over the *clean* store: workers
   open the store themselves in child processes, where a
   :class:`~repro.chaos.faults.FaultyStore` wrapper cannot reach.
4. **Recovery.**  Injection pauses and every key is read once more --
   a store that took faults must still serve its whole catalog
   bit-identically.
5. **Write storm** (``write_commits > 0``).  A second copy of the
   store goes writable: a :class:`~repro.store.StoreWriter` commits
   seeded recalibrations (puts, deletes, re-adds) while reader threads
   fetch and periodically adopt new generations via
   :meth:`~repro.store.PulseServer.refresh`.  ``crash_commit`` ticks
   abort the commit protocol at a seeded
   :data:`~repro.store.COMMIT_HOOK_POINTS` yield point and
   ``torn_write`` ticks truncate the tail of a just-published
   generation manifest; after either, the directory must reopen as
   exactly the previous or the new generation -- never a hybrid --
   and a resynced writer heals it.  Served waveforms must match *some*
   durably committed version (snapshot consistency), and the storm
   ends with a compaction, a full :func:`~repro.store.verify_store`
   scrub, and a newest-version catalog sweep.

Counter laws are checked on every worker iteration and once after each
phase quiesces; see :class:`~repro.chaos.invariants.InvariantChecker`
for the exact invariants.  The returned :class:`ChaosReport` is
JSON-able; ``report.ok`` is the CI gate.
"""

from __future__ import annotations

import os
import pathlib
import random
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.faults import WRITE_FAULT_KINDS, FaultPlan, FaultyStore
from repro.chaos.invariants import InvariantChecker
from repro.compression.pipeline import decompress_waveform
from repro.core.compiler import CompaqtCompiler
from repro.errors import ChaosError, DecodeWorkerError, ReproError, StoreError
from repro.perf.compression_bench import resolve_device
from repro.pulses.waveform import Waveform
from repro.serve_net.client import PulseClient
from repro.serve_net.server import serve_in_thread
from repro.store import PulseServer, StoreWriter, open_store, save_store
from repro.store.hooks import preempt_hook, set_preempt_hook
from repro.store.sharded import ShardedStore, list_generation_manifests
from repro.store.verify import verify_store
from repro.store.writable import COMMIT_HOOK_POINTS

__all__ = ["ChaosReport", "run_chaos"]

_Key = Tuple[str, Tuple[int, ...]]

CHAOS_SCHEMA = "compaqt-chaos-soak/v2"


@dataclass
class ChaosReport:
    """The JSON-able outcome of one chaos/soak run."""

    schema: str
    device: str
    seed: int
    threads: int
    ops_per_thread: int
    duration_s: float
    faults_injected: Dict[str, int]
    requests_threaded: int
    requests_net: int
    typed_errors: int
    overloads: int
    untyped_errors: int
    identity_checks: int
    invariant_checks: int
    recovery_reads: int
    violations: List[str] = field(default_factory=list)
    server_stats: Dict = field(default_factory=dict)
    net_stats: Dict = field(default_factory=dict)
    decode_workers: int = 0
    requests_pool: int = 0
    pool_stats: Dict = field(default_factory=dict)
    write_commits: int = 0
    commits_done: int = 0
    requests_rw: int = 0
    rw_generation: int = 0
    rw_stats: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The CI gate: no violation, no untyped escape."""
        return not self.violations and self.untyped_errors == 0

    def as_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "device": self.device,
            "seed": self.seed,
            "threads": self.threads,
            "ops_per_thread": self.ops_per_thread,
            "duration_s": self.duration_s,
            "faults_injected": dict(self.faults_injected),
            "requests_threaded": self.requests_threaded,
            "requests_net": self.requests_net,
            "typed_errors": self.typed_errors,
            "overloads": self.overloads,
            "untyped_errors": self.untyped_errors,
            "identity_checks": self.identity_checks,
            "invariant_checks": self.invariant_checks,
            "recovery_reads": self.recovery_reads,
            "violations": list(self.violations),
            "server_stats": self.server_stats,
            "net_stats": self.net_stats,
            "decode_workers": self.decode_workers,
            "requests_pool": self.requests_pool,
            "pool_stats": self.pool_stats,
            "write_commits": self.write_commits,
            "commits_done": self.commits_done,
            "requests_rw": self.requests_rw,
            "rw_generation": self.rw_generation,
            "rw_stats": self.rw_stats,
            "ok": self.ok,
        }


def _build_oracle(store) -> Dict[_Key, np.ndarray]:
    """Scalar-path reference samples for every key, off the clean store."""
    return {
        key: decompress_waveform(store.read_record(*key)).samples
        for key in store.keys()
    }


def _seeded_preempt(seed: int):
    """A deterministic-ish jitter hook for the stack's yield points.

    Every Nth visit to a yield point sleeps a few hundred microseconds,
    widening the race windows around lock acquisitions; the rest cost a
    counter bump.  N and the sleep come from ``seed``.
    """
    rng = random.Random(seed ^ 0x5EED)
    stride = 5 + rng.randrange(7)
    delay = 0.0002 + rng.random() * 0.0006
    counter = [0]
    lock = threading.Lock()

    def hook(point: str) -> None:
        with lock:
            counter[0] += 1
            fire = counter[0] % stride == 0
        if fire:
            time.sleep(delay)

    return hook


def _threaded_phase(
    server: PulseServer,
    keys: List[_Key],
    checker: InvariantChecker,
    seed: int,
    threads: int,
    ops_per_thread: int,
    batch_size: int,
) -> int:
    """Seeded fetch/fetch_batch storm; returns requests issued."""
    requests = [0] * threads

    def worker(worker_id: int) -> None:
        rng = random.Random((seed << 8) ^ worker_id)
        for _ in range(ops_per_thread):
            if rng.random() < 0.35:
                batch = [
                    keys[rng.randrange(len(keys))]
                    for _ in range(1 + rng.randrange(batch_size))
                ]
                requests[worker_id] += len(batch)
                try:
                    waveforms = server.fetch_batch(batch)
                except Exception as exc:
                    checker.note_error(tuple(batch[:2]), exc)
                else:
                    for key, waveform in zip(batch, waveforms):
                        checker.check_identity(key, waveform)
            else:
                key = keys[rng.randrange(len(keys))]
                requests[worker_id] += 1
                try:
                    waveform = server.fetch(*key)
                except Exception as exc:
                    checker.note_error(key, exc)
                else:
                    checker.check_identity(key, waveform)
            checker.check_cache(server.cache.stats())

    workers = [
        threading.Thread(target=worker, args=(i,), name=f"chaos-{i}")
        for i in range(threads)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    return sum(requests)


def _net_phase(
    server: PulseServer,
    keys: List[_Key],
    checker: InvariantChecker,
    seed: int,
    clients: int,
    ops_per_client: int,
    batch_size: int,
    trace_sample_rate: float = 0.0,
) -> Tuple[int, Dict]:
    """The same storm over a real CQN1 socket; returns (requests, stats)."""
    bogus: _Key = ("chaos-no-such-gate", (0,))
    requests = [0] * clients

    with serve_in_thread(
        server,
        max_inflight=8,
        frame_timeout=5.0,
        trace_sample_rate=trace_sample_rate,
    ) as handle:
        host, port = handle.address

        def client_worker(client_id: int) -> None:
            rng = random.Random((seed << 16) ^ client_id)
            with PulseClient(host, port) as client:
                for _ in range(ops_per_client):
                    roll = rng.random()
                    try:
                        if roll < 0.25:
                            batch = [
                                keys[rng.randrange(len(keys))]
                                for _ in range(1 + rng.randrange(batch_size))
                            ]
                            if roll < 0.08:
                                # Mixed valid/invalid: the bad key must
                                # fail typed without poisoning the rest.
                                batch.append(bogus)
                            requests[client_id] += len(batch)
                            for key, waveform in zip(
                                batch, client.fetch_batch(batch)
                            ):
                                checker.check_identity(key, waveform)
                        else:
                            key = keys[rng.randrange(len(keys))]
                            requests[client_id] += 1
                            checker.check_identity(key, client.fetch(*key))
                    except Exception as exc:
                        checker.note_error("net", exc)

        workers = [
            threading.Thread(
                target=client_worker, args=(i,), name=f"chaos-client-{i}"
            )
            for i in range(clients)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stats = handle.stats()
        snapshot = handle.server.metrics_snapshot()
    checker.check_net(stats)
    checker.check_metrics(snapshot, server.stats(), net_stats=stats)
    return sum(requests), stats.as_dict()


def _pool_phase(
    store,
    keys: List[_Key],
    checker: InvariantChecker,
    seed: int,
    threads: int,
    ops_per_thread: int,
    batch_size: int,
    decode_workers: int,
) -> Tuple[int, int, Dict]:
    """SIGKILL storm on the decode pool; returns (requests, kills, stats).

    The cache is sized below the catalog so evictions keep sending cold
    fills through the pool, and the slab is sized below most batches so
    the ``shm_exhaust`` fallback path runs alongside the kills.
    """
    requests = [0] * threads
    kills = [0]
    done = threading.Event()

    with PulseServer(
        store,
        cache_capacity=max(2, len(keys) // 3),
        max_workers=4,
        workers=decode_workers,
        shm_limit=4096,
    ) as server:
        pool = server.pool
        assert pool is not None

        def killer() -> None:
            rng = random.Random((seed << 4) ^ 0xD1E)
            while not done.wait(0.03):
                pids = pool.pids
                if not pids:
                    continue
                try:
                    os.kill(pids[rng.randrange(len(pids))], signal.SIGKILL)
                    kills[0] += 1
                except OSError:
                    pass

        def worker(worker_id: int) -> None:
            rng = random.Random((seed << 12) ^ worker_id)
            for _ in range(ops_per_thread):
                batch = [
                    keys[rng.randrange(len(keys))]
                    for _ in range(1 + rng.randrange(batch_size))
                ]
                requests[worker_id] += len(batch)
                try:
                    waveforms = server.fetch_batch(batch)
                except Exception as exc:
                    checker.note_error(tuple(batch[:2]), exc)
                else:
                    for key, waveform in zip(batch, waveforms):
                        checker.check_identity(key, waveform)
                checker.check_cache(server.cache.stats())

        killer_thread = threading.Thread(target=killer, name="chaos-killer")
        workers = [
            threading.Thread(target=worker, args=(i,), name=f"chaos-pool-{i}")
            for i in range(threads)
        ]
        killer_thread.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        done.set()
        killer_thread.join()

        # Post-storm: the (respawned) pool must still serve the whole
        # catalog bit-identically.  A SIGKILL sent in the storm's last
        # instants can land *after* the killer thread is joined, so one
        # read may legitimately eat a trailing DecodeWorkerError while
        # the lane respawns -- retry past those; only repeated failure
        # is a violation.
        for attempt in range(3):
            try:
                waveforms = server.fetch_batch(keys)
            except DecodeWorkerError as exc:
                checker.note_error("pool-recovery", exc)
                if attempt == 2:
                    checker.violations.append(
                        f"pool storm: post-kill catalog read failed "
                        f"{attempt + 1} times: {type(exc).__name__}: {exc}"
                    )
            except Exception as exc:
                checker.note_error("pool-recovery", exc)
                checker.violations.append(
                    f"pool storm: post-kill catalog read failed: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            else:
                for key, waveform in zip(keys, waveforms):
                    checker.check_identity(key, waveform)
                break
        checker.check_metrics(server.metrics_snapshot(), server.stats())
        pool_stats = pool.stats().as_dict()
    return sum(requests), kills[0], pool_stats


class _VersionedOracle:
    """Committed-version history per key, shared writer -> readers.

    The write storm appends a key's reconstructed samples when the
    version is *staged* (a reader may adopt it the instant its
    manifest lands); readers assert each served waveform matches some
    recorded version (snapshot consistency allows serving any of
    them, never a hybrid).
    """

    def __init__(self, base: Dict[_Key, np.ndarray]) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[_Key, List[np.ndarray]] = {
            key: [samples] for key, samples in base.items()
        }

    def record(self, key: _Key, samples: np.ndarray) -> None:
        with self._lock:
            self._versions.setdefault(key, []).append(samples)

    def candidates(self, key: _Key) -> List[np.ndarray]:
        with self._lock:
            return list(self._versions.get(key, ()))


class _CrashAt:
    """Context manager: raise ChaosError at one named commit hook point.

    Chains to whatever preemption hook is already installed (the seeded
    jitter), so reader-side yield points keep their behavior while one
    writer-side point becomes a simulated crash.
    """

    def __init__(self, point: str) -> None:
        self.point = point
        self._previous = None

    def __enter__(self) -> "_CrashAt":
        previous = set_preempt_hook(None)
        self._previous = previous

        def hook(point: str) -> None:
            if previous is not None:
                previous(point)
            if point == self.point:
                raise ChaosError(f"chaos: injected crash at {point}")

        set_preempt_hook(hook)
        return self

    def __exit__(self, *exc_info) -> None:
        set_preempt_hook(self._previous)


def _perturb(waveform: Waveform, rng: random.Random) -> Waveform:
    """A deterministic 'recalibration': rolled, rescaled samples."""
    samples = np.roll(waveform.samples, 1 + rng.randrange(5))
    samples = samples * (0.70 + 0.25 * rng.random())
    return Waveform(
        name=waveform.name,
        samples=samples,
        dt=waveform.dt,
        gate=waveform.gate,
        qubits=waveform.qubits,
    )


def _write_phase(
    rw_dir: pathlib.Path,
    compiled,
    base_oracle: Dict[_Key, np.ndarray],
    checker: InvariantChecker,
    seed: int,
    threads: int,
    batch_size: int,
    write_commits: int,
    write_plan: FaultPlan,
    n_shards: int,
) -> Tuple[int, int, Dict[str, int], int, Dict]:
    """Mixed read/write storm with injected commit-protocol faults.

    A writer loop stages seeded recalibrations (puts, deletes, re-adds)
    and commits them while reader threads fetch and periodically adopt
    new generations.  ``crash_commit`` ticks abort the protocol at a
    seeded hook point; ``torn_write`` ticks truncate the just-published
    manifest's tail.  After every fault the directory must reopen as
    exactly the previous or the new generation -- then the storm heals
    by resyncing a fresh writer and repeating the commit.  Ends with a
    compaction, a full scrub, and a newest-version catalog sweep.

    Returns (reader requests, commits done, fault counts, final
    generation, server stats).
    """
    rw_store = save_store(compiled, rw_dir, n_shards=n_shards)
    keys = list(base_oracle)
    oracle = _VersionedOracle(base_oracle)
    current_wf: Dict[_Key, Waveform] = dict(
        zip(keys, rw_store.decode_many(keys))
    )
    rw_store.close()
    deleted: set = set()
    compiler = CompaqtCompiler()
    stop = threading.Event()
    requests = [0] * threads
    faults: Dict[str, int] = {kind: 0 for kind in WRITE_FAULT_KINDS}

    server = PulseServer(open_store(rw_dir), cache_capacity=len(keys), max_workers=4)

    def reader(worker_id: int) -> None:
        rng = random.Random((seed << 20) ^ worker_id)
        ops = 0
        while not stop.is_set():
            ops += 1
            if ops % 5 == 0:
                try:
                    server.refresh()
                except Exception as exc:
                    checker.note_error("rw-refresh", exc)
            try:
                if rng.random() < 0.3:
                    batch = [
                        keys[rng.randrange(len(keys))]
                        for _ in range(1 + rng.randrange(batch_size))
                    ]
                    requests[worker_id] += len(batch)
                    for key, waveform in zip(batch, server.fetch_batch(batch)):
                        checker.check_versioned_identity(
                            key, waveform, oracle.candidates(key)
                        )
                else:
                    key = keys[rng.randrange(len(keys))]
                    requests[worker_id] += 1
                    checker.check_versioned_identity(
                        key, server.fetch(*key), oracle.candidates(key)
                    )
            except Exception as exc:
                # Deleted keys legitimately fail typed after adoption.
                checker.note_error("rw-read", exc)
            checker.check_cache(server.cache.stats())

    readers = [
        threading.Thread(target=reader, args=(i,), name=f"chaos-rw-{i}")
        for i in range(threads)
    ]
    for thread in readers:
        thread.start()

    def stage(writer: StoreWriter, tick: int) -> List[Tuple[_Key, object, str]]:
        """Seeded mutations for one commit: puts, re-adds, deletes.

        Every staged put is recorded in the oracle *here*, before the
        commit is attempted: a reader may adopt the new generation the
        instant the manifest lands, ahead of the writer loop learning
        the commit's fate.  A candidate whose commit then aborts is
        slack in the check (it is never servable), not a false pass.
        """
        rng = write_plan.rng_for(tick ^ 0xA11CE)
        staged: List[Tuple[_Key, object, str]] = []
        live = [key for key in keys if key not in deleted]
        for _ in range(1 + rng.randrange(3)):
            key = live[rng.randrange(len(live))]
            result = compiler.compile_waveform(_perturb(current_wf[key], rng))
            writer.put(key[0], key[1], result)
            oracle.record(key, result.reconstructed.samples)
            staged.append((key, result, "put"))
        if deleted and rng.random() < 0.6:
            key = sorted(deleted)[rng.randrange(len(deleted))]
            result = compiler.compile_waveform(_perturb(current_wf[key], rng))
            writer.put(key[0], key[1], result)
            oracle.record(key, result.reconstructed.samples)
            staged.append((key, result, "readd"))
        staged_keys = {entry[0] for entry in staged}
        victims = [key for key in live if key not in staged_keys]
        if victims and len(deleted) < max(1, len(keys) // 4) and rng.random() < 0.4:
            key = victims[rng.randrange(len(victims))]
            writer.delete(*key)
            staged.append((key, None, "delete"))
        return staged

    def apply_committed(staged: List[Tuple[_Key, object, str]]) -> None:
        """Advance the confirmed-durable state the final sweep checks."""
        for key, result, action in staged:
            if action == "delete":
                deleted.add(key)
            else:
                deleted.discard(key)
                current_wf[key] = result.reconstructed

    commits_done = 0
    writer = StoreWriter(rw_dir)
    try:
        for tick in range(write_commits):
            kind = write_plan.fault_for(tick)
            rng = write_plan.rng_for(tick)
            if kind == "crash_commit":
                faults["crash_commit"] += 1
                previous_generation = writer.generation
                staged = stage(writer, tick)
                point = COMMIT_HOOK_POINTS[
                    rng.randrange(len(COMMIT_HOOK_POINTS))
                ]
                crashed = False
                try:
                    with _CrashAt(point):
                        writer.commit()
                except ChaosError:
                    crashed = True
                if not crashed:
                    checker.violations.append(
                        f"write storm: crash hook at {point!r} never fired"
                    )
                # Recovery-on-open: the directory must reopen as exactly
                # the previous or the new generation, and a fresh writer
                # must resync onto whichever survived.
                writer.close()
                try:
                    reopened = ShardedStore.open(rw_dir)
                except StoreError as exc:
                    checker.violations.append(
                        f"write storm: store unopenable after crash at "
                        f"{point!r}: {exc}"
                    )
                    writer = StoreWriter(rw_dir)  # may raise: harness bug
                    continue
                generation = reopened.generation
                reopened.close()
                if generation == previous_generation + 1:
                    # The manifest was durable before the abort: the
                    # commit counts.
                    apply_committed(staged)
                    commits_done += 1
                elif generation != previous_generation:
                    checker.violations.append(
                        f"write storm: crash at {point!r} left generation "
                        f"{generation}, expected {previous_generation} or "
                        f"{previous_generation + 1}"
                    )
                writer = StoreWriter(rw_dir)
            elif kind == "torn_write":
                staged = stage(writer, tick)
                previous_generation = writer.generation
                writer.commit()
                apply_committed(staged)
                commits_done += 1
                faults["torn_write"] += 1
                manifests = list_generation_manifests(rw_dir)
                newest = manifests[0][1]
                data = newest.read_bytes()
                newest.write_bytes(data[: -(1 + rng.randrange(64))])
                try:
                    reopened = ShardedStore.open(rw_dir)
                except StoreError as exc:
                    checker.violations.append(
                        f"write storm: store unopenable after torn manifest: "
                        f"{exc}"
                    )
                else:
                    if reopened.generation != previous_generation:
                        checker.violations.append(
                            "write storm: torn newest manifest should fall "
                            f"back to generation {previous_generation}, got "
                            f"{reopened.generation}"
                        )
                    reopened.close()
                # Heal: a resynced writer re-stages the same content and
                # republishes the same generation by rename-over.
                writer.close()
                writer = StoreWriter(rw_dir)
                for key, result, action in staged:
                    if action == "delete":
                        writer.delete(*key)
                    else:
                        writer.put(key[0], key[1], result)
                writer.commit()
            else:
                staged = stage(writer, tick)
                writer.commit()
                apply_committed(staged)
                commits_done += 1

        # End of storm: compact (drops tombstones and superseded
        # bytes), then scrub and sweep.
        writer.compact()
    finally:
        stop.set()
        for thread in readers:
            thread.join()

    try:
        server.refresh()
    except Exception as exc:
        checker.note_error("rw-final-refresh", exc)
        checker.violations.append(
            f"write storm: final refresh failed: {type(exc).__name__}: {exc}"
        )
    final_generation = server.store.generation
    live_keys = set(server.store.keys())
    expected_keys = {key for key in current_wf if key not in deleted}
    if live_keys != expected_keys:
        checker.violations.append(
            f"write storm: post-compaction catalog has {len(live_keys)} "
            f"key(s), expected {len(expected_keys)}"
        )
    for key in sorted(live_keys):
        expected = current_wf.get(key)
        try:
            waveform = server.fetch(*key)
        except Exception as exc:
            checker.note_error(key, exc)
            checker.violations.append(
                f"write storm: post-storm read of {key} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if expected is None or not (
            waveform.samples.shape == expected.samples.shape
            and np.array_equal(waveform.samples, expected.samples)
        ):
            checker.violations.append(
                f"write storm: {key} diverges from its newest committed "
                "version after compaction"
            )
    rw_stats = server.stats().as_dict()
    server.close()
    writer.close()

    scrub = verify_store(rw_dir)
    if not scrub.ok:
        checker.violations.append(
            "write storm: post-storm scrub found damage: "
            + (scrub.fatal or "; ".join(
                item for shard in scrub.shards for item in shard.damage
            ))
        )
    return sum(requests), commits_done, faults, final_generation, rw_stats


def run_chaos(
    device_spec: str = "bogota",
    seed: int = 0,
    threads: int = 4,
    ops_per_thread: int = 150,
    net_clients: int = 3,
    n_shards: int = 4,
    batch_size: int = 6,
    plan: Optional[FaultPlan] = None,
    store_dir: Optional[pathlib.Path] = None,
    decode_workers: int = 2,
    trace_sample_rate: float = 0.0,
    write_commits: int = 12,
    write_plan: Optional[FaultPlan] = None,
) -> ChaosReport:
    """Run the full chaos/soak harness; never raises on *found* faults.

    Violations land in the report (``report.ok``); only harness misuse
    (bad arguments, unbuildable device) raises.  ``decode_workers``
    sizes the pool-storm phase (0 skips it).  ``trace_sample_rate``
    turns on request tracing in the networked phase (1.0 = trace every
    fetch) -- the chaos CI job runs at full sampling so the tracing
    path itself soaks under faults.  ``write_commits`` sizes the
    write-storm phase (0 skips it); ``write_plan`` schedules its
    commit-protocol faults and defaults to one fault every third
    commit, cycling :data:`~repro.chaos.faults.WRITE_FAULT_KINDS`.
    """
    if threads < 1 or ops_per_thread < 1 or net_clients < 0 or batch_size < 1:
        raise ChaosError("threads, ops_per_thread and batch_size must be >= 1")
    if decode_workers < 0:
        raise ChaosError(f"decode_workers must be >= 0, got {decode_workers}")
    if write_commits < 0:
        raise ChaosError(f"write_commits must be >= 0, got {write_commits}")
    plan = plan if plan is not None else FaultPlan(seed=seed)
    if write_plan is None:
        write_plan = FaultPlan(seed=seed, period=3, kinds=WRITE_FAULT_KINDS)
    started = time.perf_counter()

    with tempfile.TemporaryDirectory(prefix="cqs1-chaos-") as tmp:
        root = store_dir if store_dir is not None else pathlib.Path(tmp)
        device = resolve_device(device_spec)
        compiled = CompaqtCompiler().compile_library(device.pulse_library())
        store = save_store(
            compiled, root / f"{device.name}.cqs", n_shards=n_shards
        )
        oracle = _build_oracle(store)
        keys = list(oracle)
        checker = InvariantChecker(oracle)
        faulty = FaultyStore(store, plan)

        with preempt_hook(_seeded_preempt(seed)):
            # Phase 1: threads on the in-process server.  Capacity covers
            # the whole catalog so the single-flight insert-once law is
            # checkable.
            with PulseServer(
                faulty, cache_capacity=len(keys), max_workers=4
            ) as server:
                requests_threaded = _threaded_phase(
                    server, keys, checker, seed, threads, ops_per_thread,
                    batch_size,
                )
                checker.check_single_flight(server.stats(), len(keys))
                checker.check_metrics(server.metrics_snapshot(), server.stats())
                server_stats = server.stats().as_dict()

            # Phase 2: the same faulty store behind a real socket.
            requests_net, net_stats = 0, {}
            if net_clients:
                with PulseServer(
                    faulty, cache_capacity=len(keys), max_workers=4
                ) as net_serving:
                    requests_net, net_stats = _net_phase(
                        net_serving, keys, checker, seed, net_clients,
                        max(1, ops_per_thread // 2), batch_size,
                        trace_sample_rate=trace_sample_rate,
                    )

            # Phase 3: SIGKILL storm on the decode-worker pool, over the
            # clean store (workers re-open it in child processes, where
            # the FaultyStore wrapper cannot reach).
            requests_pool, kills, pool_stats = 0, 0, {}
            if decode_workers:
                requests_pool, kills, pool_stats = _pool_phase(
                    store, keys, checker, seed, threads,
                    max(1, ops_per_thread // 2), batch_size, decode_workers,
                )

            # Phase 4: recovery -- injection off, every key must still
            # serve bit-identically.
            recovery_reads = 0
            with faulty.calm():
                with PulseServer(
                    faulty, cache_capacity=len(keys), max_workers=4
                ) as recovery_server:
                    for key in keys:
                        try:
                            waveform = recovery_server.fetch(*key)
                        except Exception as exc:
                            checker.note_error(key, exc)
                            checker.violations.append(
                                f"recovery: post-fault read of {key} failed: "
                                f"{type(exc).__name__}: {exc}"
                            )
                        else:
                            if checker.check_identity(key, waveform):
                                recovery_reads += 1
                    checker.check_metrics(
                        recovery_server.metrics_snapshot(),
                        recovery_server.stats(),
                    )

            # Phase 5: the write storm -- commit-protocol faults over a
            # separate writable copy while readers adopt generations.
            requests_rw, commits_done, rw_generation = 0, 0, 0
            write_faults: Dict[str, int] = {}
            rw_stats: Dict = {}
            if write_commits:
                requests_rw, commits_done, write_faults, rw_generation, \
                    rw_stats = _write_phase(
                        root / f"{device.name}-rw.cqs", compiled, oracle,
                        checker, seed, threads, batch_size, write_commits,
                        write_plan, n_shards,
                    )
        faulty.detach()

    faults_injected = dict(faulty.faults_injected)
    if decode_workers:
        faults_injected["worker_kill"] = kills
        faults_injected["shm_exhaust"] = int(pool_stats.get("fallback_jobs", 0))
    for kind, count in write_faults.items():
        faults_injected[kind] = count

    return ChaosReport(
        schema=CHAOS_SCHEMA,
        device=device.name,
        seed=seed,
        threads=threads,
        ops_per_thread=ops_per_thread,
        duration_s=time.perf_counter() - started,
        faults_injected=faults_injected,
        requests_threaded=requests_threaded,
        requests_net=requests_net,
        typed_errors=checker.typed_errors,
        overloads=checker.overloads,
        untyped_errors=checker.untyped_errors,
        identity_checks=checker.identity_checks,
        invariant_checks=checker.checks,
        recovery_reads=recovery_reads,
        violations=list(checker.violations),
        server_stats=server_stats,
        net_stats=net_stats,
        decode_workers=decode_workers,
        requests_pool=requests_pool,
        pool_stats=pool_stats,
        write_commits=write_commits,
        commits_done=commits_done,
        requests_rw=requests_rw,
        rw_generation=rw_generation,
        rw_stats=rw_stats,
    )
