"""The chaos/soak runner: seeded fault workloads over the live stack.

One :func:`run_chaos` call is four phases over a single store:

1. **Threaded.**  Worker threads hammer a
   :class:`~repro.store.PulseServer` with a seeded mix of ``fetch`` and
   ``fetch_batch`` while the :class:`~repro.chaos.faults.FaultPlan`
   injects truncations, bit flips, transient map failures, and slow
   reads, and a seeded preemption hook jitters the yield points around
   lock acquisitions.  Every successful read is checked bit-identical
   against the scalar oracle; every failure must be a typed
   :class:`~repro.errors.ReproError`.
2. **Networked.**  The same faulty store goes behind a real CQN1
   socket (:func:`~repro.serve_net.server.serve_in_thread`, small
   ``max_inflight`` so overload shedding runs too) and client threads
   repeat the exercise over the wire, mixing in requests for keys the
   store does not hold.
3. **Pool storm** (``decode_workers > 0``).  A server routes cold
   fills through a :class:`~repro.serve_net.workers.DecodePool` while
   a killer thread SIGKILLs live decode workers mid-job
   (``worker_kill``) and a deliberately tiny shared-memory slab forces
   the pipe-transport fallback (``shm_exhaust``).  Kills must surface
   only as typed :class:`~repro.errors.DecodeWorkerError` on the
   victim job's keys -- never a hang, never an untyped escape -- and a
   post-storm full-catalog read through the same (respawned) pool must
   be bit-identical.  This phase runs over the *clean* store: workers
   open the store themselves in child processes, where a
   :class:`~repro.chaos.faults.FaultyStore` wrapper cannot reach.
4. **Recovery.**  Injection pauses and every key is read once more --
   a store that took faults must still serve its whole catalog
   bit-identically.

Counter laws are checked on every worker iteration and once after each
phase quiesces; see :class:`~repro.chaos.invariants.InvariantChecker`
for the exact invariants.  The returned :class:`ChaosReport` is
JSON-able; ``report.ok`` is the CI gate.
"""

from __future__ import annotations

import os
import pathlib
import random
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.faults import FaultPlan, FaultyStore
from repro.chaos.invariants import InvariantChecker
from repro.compression.pipeline import decompress_waveform
from repro.core.compiler import CompaqtCompiler
from repro.errors import ChaosError, DecodeWorkerError, ReproError
from repro.perf.compression_bench import resolve_device
from repro.serve_net.client import PulseClient
from repro.serve_net.server import serve_in_thread
from repro.store import PulseServer, save_store
from repro.store.hooks import preempt_hook

__all__ = ["ChaosReport", "run_chaos"]

_Key = Tuple[str, Tuple[int, ...]]

CHAOS_SCHEMA = "compaqt-chaos-soak/v1"


@dataclass
class ChaosReport:
    """The JSON-able outcome of one chaos/soak run."""

    schema: str
    device: str
    seed: int
    threads: int
    ops_per_thread: int
    duration_s: float
    faults_injected: Dict[str, int]
    requests_threaded: int
    requests_net: int
    typed_errors: int
    overloads: int
    untyped_errors: int
    identity_checks: int
    invariant_checks: int
    recovery_reads: int
    violations: List[str] = field(default_factory=list)
    server_stats: Dict = field(default_factory=dict)
    net_stats: Dict = field(default_factory=dict)
    decode_workers: int = 0
    requests_pool: int = 0
    pool_stats: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The CI gate: no violation, no untyped escape."""
        return not self.violations and self.untyped_errors == 0

    def as_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "device": self.device,
            "seed": self.seed,
            "threads": self.threads,
            "ops_per_thread": self.ops_per_thread,
            "duration_s": self.duration_s,
            "faults_injected": dict(self.faults_injected),
            "requests_threaded": self.requests_threaded,
            "requests_net": self.requests_net,
            "typed_errors": self.typed_errors,
            "overloads": self.overloads,
            "untyped_errors": self.untyped_errors,
            "identity_checks": self.identity_checks,
            "invariant_checks": self.invariant_checks,
            "recovery_reads": self.recovery_reads,
            "violations": list(self.violations),
            "server_stats": self.server_stats,
            "net_stats": self.net_stats,
            "decode_workers": self.decode_workers,
            "requests_pool": self.requests_pool,
            "pool_stats": self.pool_stats,
            "ok": self.ok,
        }


def _build_oracle(store) -> Dict[_Key, np.ndarray]:
    """Scalar-path reference samples for every key, off the clean store."""
    return {
        key: decompress_waveform(store.read_record(*key)).samples
        for key in store.keys()
    }


def _seeded_preempt(seed: int):
    """A deterministic-ish jitter hook for the stack's yield points.

    Every Nth visit to a yield point sleeps a few hundred microseconds,
    widening the race windows around lock acquisitions; the rest cost a
    counter bump.  N and the sleep come from ``seed``.
    """
    rng = random.Random(seed ^ 0x5EED)
    stride = 5 + rng.randrange(7)
    delay = 0.0002 + rng.random() * 0.0006
    counter = [0]
    lock = threading.Lock()

    def hook(point: str) -> None:
        with lock:
            counter[0] += 1
            fire = counter[0] % stride == 0
        if fire:
            time.sleep(delay)

    return hook


def _threaded_phase(
    server: PulseServer,
    keys: List[_Key],
    checker: InvariantChecker,
    seed: int,
    threads: int,
    ops_per_thread: int,
    batch_size: int,
) -> int:
    """Seeded fetch/fetch_batch storm; returns requests issued."""
    requests = [0] * threads

    def worker(worker_id: int) -> None:
        rng = random.Random((seed << 8) ^ worker_id)
        for _ in range(ops_per_thread):
            if rng.random() < 0.35:
                batch = [
                    keys[rng.randrange(len(keys))]
                    for _ in range(1 + rng.randrange(batch_size))
                ]
                requests[worker_id] += len(batch)
                try:
                    waveforms = server.fetch_batch(batch)
                except Exception as exc:
                    checker.note_error(tuple(batch[:2]), exc)
                else:
                    for key, waveform in zip(batch, waveforms):
                        checker.check_identity(key, waveform)
            else:
                key = keys[rng.randrange(len(keys))]
                requests[worker_id] += 1
                try:
                    waveform = server.fetch(*key)
                except Exception as exc:
                    checker.note_error(key, exc)
                else:
                    checker.check_identity(key, waveform)
            checker.check_cache(server.cache.stats())

    workers = [
        threading.Thread(target=worker, args=(i,), name=f"chaos-{i}")
        for i in range(threads)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    return sum(requests)


def _net_phase(
    server: PulseServer,
    keys: List[_Key],
    checker: InvariantChecker,
    seed: int,
    clients: int,
    ops_per_client: int,
    batch_size: int,
    trace_sample_rate: float = 0.0,
) -> Tuple[int, Dict]:
    """The same storm over a real CQN1 socket; returns (requests, stats)."""
    bogus: _Key = ("chaos-no-such-gate", (0,))
    requests = [0] * clients

    with serve_in_thread(
        server,
        max_inflight=8,
        frame_timeout=5.0,
        trace_sample_rate=trace_sample_rate,
    ) as handle:
        host, port = handle.address

        def client_worker(client_id: int) -> None:
            rng = random.Random((seed << 16) ^ client_id)
            with PulseClient(host, port) as client:
                for _ in range(ops_per_client):
                    roll = rng.random()
                    try:
                        if roll < 0.25:
                            batch = [
                                keys[rng.randrange(len(keys))]
                                for _ in range(1 + rng.randrange(batch_size))
                            ]
                            if roll < 0.08:
                                # Mixed valid/invalid: the bad key must
                                # fail typed without poisoning the rest.
                                batch.append(bogus)
                            requests[client_id] += len(batch)
                            for key, waveform in zip(
                                batch, client.fetch_batch(batch)
                            ):
                                checker.check_identity(key, waveform)
                        else:
                            key = keys[rng.randrange(len(keys))]
                            requests[client_id] += 1
                            checker.check_identity(key, client.fetch(*key))
                    except Exception as exc:
                        checker.note_error("net", exc)

        workers = [
            threading.Thread(
                target=client_worker, args=(i,), name=f"chaos-client-{i}"
            )
            for i in range(clients)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stats = handle.stats()
        snapshot = handle.server.metrics_snapshot()
    checker.check_net(stats)
    checker.check_metrics(snapshot, server.stats(), net_stats=stats)
    return sum(requests), stats.as_dict()


def _pool_phase(
    store,
    keys: List[_Key],
    checker: InvariantChecker,
    seed: int,
    threads: int,
    ops_per_thread: int,
    batch_size: int,
    decode_workers: int,
) -> Tuple[int, int, Dict]:
    """SIGKILL storm on the decode pool; returns (requests, kills, stats).

    The cache is sized below the catalog so evictions keep sending cold
    fills through the pool, and the slab is sized below most batches so
    the ``shm_exhaust`` fallback path runs alongside the kills.
    """
    requests = [0] * threads
    kills = [0]
    done = threading.Event()

    with PulseServer(
        store,
        cache_capacity=max(2, len(keys) // 3),
        max_workers=4,
        workers=decode_workers,
        shm_limit=4096,
    ) as server:
        pool = server.pool
        assert pool is not None

        def killer() -> None:
            rng = random.Random((seed << 4) ^ 0xD1E)
            while not done.wait(0.03):
                pids = pool.pids
                if not pids:
                    continue
                try:
                    os.kill(pids[rng.randrange(len(pids))], signal.SIGKILL)
                    kills[0] += 1
                except OSError:
                    pass

        def worker(worker_id: int) -> None:
            rng = random.Random((seed << 12) ^ worker_id)
            for _ in range(ops_per_thread):
                batch = [
                    keys[rng.randrange(len(keys))]
                    for _ in range(1 + rng.randrange(batch_size))
                ]
                requests[worker_id] += len(batch)
                try:
                    waveforms = server.fetch_batch(batch)
                except Exception as exc:
                    checker.note_error(tuple(batch[:2]), exc)
                else:
                    for key, waveform in zip(batch, waveforms):
                        checker.check_identity(key, waveform)
                checker.check_cache(server.cache.stats())

        killer_thread = threading.Thread(target=killer, name="chaos-killer")
        workers = [
            threading.Thread(target=worker, args=(i,), name=f"chaos-pool-{i}")
            for i in range(threads)
        ]
        killer_thread.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        done.set()
        killer_thread.join()

        # Post-storm: the (respawned) pool must still serve the whole
        # catalog bit-identically.  A SIGKILL sent in the storm's last
        # instants can land *after* the killer thread is joined, so one
        # read may legitimately eat a trailing DecodeWorkerError while
        # the lane respawns -- retry past those; only repeated failure
        # is a violation.
        for attempt in range(3):
            try:
                waveforms = server.fetch_batch(keys)
            except DecodeWorkerError as exc:
                checker.note_error("pool-recovery", exc)
                if attempt == 2:
                    checker.violations.append(
                        f"pool storm: post-kill catalog read failed "
                        f"{attempt + 1} times: {type(exc).__name__}: {exc}"
                    )
            except Exception as exc:
                checker.note_error("pool-recovery", exc)
                checker.violations.append(
                    f"pool storm: post-kill catalog read failed: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            else:
                for key, waveform in zip(keys, waveforms):
                    checker.check_identity(key, waveform)
                break
        checker.check_metrics(server.metrics_snapshot(), server.stats())
        pool_stats = pool.stats().as_dict()
    return sum(requests), kills[0], pool_stats


def run_chaos(
    device_spec: str = "bogota",
    seed: int = 0,
    threads: int = 4,
    ops_per_thread: int = 150,
    net_clients: int = 3,
    n_shards: int = 4,
    batch_size: int = 6,
    plan: Optional[FaultPlan] = None,
    store_dir: Optional[pathlib.Path] = None,
    decode_workers: int = 2,
    trace_sample_rate: float = 0.0,
) -> ChaosReport:
    """Run the full chaos/soak harness; never raises on *found* faults.

    Violations land in the report (``report.ok``); only harness misuse
    (bad arguments, unbuildable device) raises.  ``decode_workers``
    sizes the pool-storm phase (0 skips it).  ``trace_sample_rate``
    turns on request tracing in the networked phase (1.0 = trace every
    fetch) -- the chaos CI job runs at full sampling so the tracing
    path itself soaks under faults.
    """
    if threads < 1 or ops_per_thread < 1 or net_clients < 0 or batch_size < 1:
        raise ChaosError("threads, ops_per_thread and batch_size must be >= 1")
    if decode_workers < 0:
        raise ChaosError(f"decode_workers must be >= 0, got {decode_workers}")
    plan = plan if plan is not None else FaultPlan(seed=seed)
    started = time.perf_counter()

    with tempfile.TemporaryDirectory(prefix="cqs1-chaos-") as tmp:
        root = store_dir if store_dir is not None else pathlib.Path(tmp)
        device = resolve_device(device_spec)
        compiled = CompaqtCompiler().compile_library(device.pulse_library())
        store = save_store(
            compiled, root / f"{device.name}.cqs", n_shards=n_shards
        )
        oracle = _build_oracle(store)
        keys = list(oracle)
        checker = InvariantChecker(oracle)
        faulty = FaultyStore(store, plan)

        with preempt_hook(_seeded_preempt(seed)):
            # Phase 1: threads on the in-process server.  Capacity covers
            # the whole catalog so the single-flight insert-once law is
            # checkable.
            with PulseServer(
                faulty, cache_capacity=len(keys), max_workers=4
            ) as server:
                requests_threaded = _threaded_phase(
                    server, keys, checker, seed, threads, ops_per_thread,
                    batch_size,
                )
                checker.check_single_flight(server.stats(), len(keys))
                checker.check_metrics(server.metrics_snapshot(), server.stats())
                server_stats = server.stats().as_dict()

            # Phase 2: the same faulty store behind a real socket.
            requests_net, net_stats = 0, {}
            if net_clients:
                with PulseServer(
                    faulty, cache_capacity=len(keys), max_workers=4
                ) as net_serving:
                    requests_net, net_stats = _net_phase(
                        net_serving, keys, checker, seed, net_clients,
                        max(1, ops_per_thread // 2), batch_size,
                        trace_sample_rate=trace_sample_rate,
                    )

            # Phase 3: SIGKILL storm on the decode-worker pool, over the
            # clean store (workers re-open it in child processes, where
            # the FaultyStore wrapper cannot reach).
            requests_pool, kills, pool_stats = 0, 0, {}
            if decode_workers:
                requests_pool, kills, pool_stats = _pool_phase(
                    store, keys, checker, seed, threads,
                    max(1, ops_per_thread // 2), batch_size, decode_workers,
                )

            # Phase 4: recovery -- injection off, every key must still
            # serve bit-identically.
            recovery_reads = 0
            with faulty.calm():
                with PulseServer(
                    faulty, cache_capacity=len(keys), max_workers=4
                ) as recovery_server:
                    for key in keys:
                        try:
                            waveform = recovery_server.fetch(*key)
                        except Exception as exc:
                            checker.note_error(key, exc)
                            checker.violations.append(
                                f"recovery: post-fault read of {key} failed: "
                                f"{type(exc).__name__}: {exc}"
                            )
                        else:
                            if checker.check_identity(key, waveform):
                                recovery_reads += 1
                    checker.check_metrics(
                        recovery_server.metrics_snapshot(),
                        recovery_server.stats(),
                    )
        faulty.detach()

    faults_injected = dict(faulty.faults_injected)
    if decode_workers:
        faults_injected["worker_kill"] = kills
        faults_injected["shm_exhaust"] = int(pool_stats.get("fallback_jobs", 0))

    return ChaosReport(
        schema=CHAOS_SCHEMA,
        device=device.name,
        seed=seed,
        threads=threads,
        ops_per_thread=ops_per_thread,
        duration_s=time.perf_counter() - started,
        faults_injected=faults_injected,
        requests_threaded=requests_threaded,
        requests_net=requests_net,
        typed_errors=checker.typed_errors,
        overloads=checker.overloads,
        untyped_errors=checker.untyped_errors,
        identity_checks=checker.identity_checks,
        invariant_checks=checker.checks,
        recovery_reads=recovery_reads,
        violations=list(checker.violations),
        server_stats=server_stats,
        net_stats=net_stats,
        decode_workers=decode_workers,
        requests_pool=requests_pool,
        pool_stats=pool_stats,
    )
