"""Tiny stdlib HTTP endpoint serving the metrics text exposition.

``repro serve-net --metrics-port`` starts one of these next to the
CQN1 listener so a Prometheus scraper (or ``curl``) can read the live
registry without speaking the binary protocol.  Routes:

- ``GET /metrics``       Prometheus text exposition v0.0.4
- ``GET /metrics.json``  the raw registry snapshot as JSON

The server runs a :class:`http.server.ThreadingHTTPServer` in a daemon
thread and pulls a fresh snapshot per request via the ``collect``
callable, so it never holds references into the serving stack's locks.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping, Tuple

from .registry import render_prometheus

__all__ = ["MetricsHTTPServer", "start_metrics_server"]


class _Handler(BaseHTTPRequestHandler):
    collect: Callable[[], Mapping[str, Any]]  # patched onto the subclass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(self.collect()).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = json.dumps(self.collect(), sort_keys=True).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /metrics.json)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # scrapes are high-frequency; stay quiet


class MetricsHTTPServer:
    """Handle for a running metrics endpoint; ``close()`` to stop."""

    def __init__(self, collect: Callable[[], Mapping[str, Any]], host: str, port: int) -> None:
        handler = type("_BoundHandler", (_Handler,), {"collect": staticmethod(collect)})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def start_metrics_server(
    collect: Callable[[], Mapping[str, Any]], host: str = "127.0.0.1", port: int = 0
) -> MetricsHTTPServer:
    """Start the exposition endpoint; ``port=0`` picks a free port."""
    return MetricsHTTPServer(collect, host, port)
